"""Contract monitoring and settlement bookkeeping.

Tracks every SLA outcome in a run: per-provider breach rates, money flows,
and the compliance signals forwarded to the reputation system.  "If the
vegetables are not as fresh as promised, in time, her trust is reduced" —
the monitor is where delivery quality turns into trust updates.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import SLOMonitor, SLOReport, SLOSpec
from repro.qos.sla import SLAContract, SLAOutcome
from repro.qos.vector import QoSVector

ComplianceListener = Callable[[str, float], None]

NowFn = Callable[[], float]


def default_qos_slos(window: float = 200.0) -> List[SLOSpec]:
    """The stock observe-only SLOs over the ``qos.*``/``net.*`` metrics.

    - ``qos-contract-success``: ≥90% of settled contracts unbreached
      (error-budget burn over ``qos.breaches`` / ``qos.contracts_settled``);
    - ``net-delivery-p95``: 95% of message deliveries within 5 virtual
      time units on ``net.delivery_delay``.
    """
    return [
        SLOSpec(
            name="qos-contract-success",
            kind="error_budget",
            objective=0.9,
            window=window,
            bad="qos.breaches",
            total="qos.contracts_settled",
        ),
        SLOSpec(
            name="net-delivery-p95",
            kind="latency_quantile",
            objective=0.95,
            window=window,
            metric="net.delivery_delay",
            threshold=5.0,
        ),
    ]


@dataclass
class ProviderLedger:
    """Aggregate settlement history for one provider."""

    contracts: int = 0
    breaches: int = 0
    revenue: float = 0.0
    compensation_paid: float = 0.0

    @property
    def breach_rate(self) -> float:
        """Fraction of this provider's contracts that breached."""
        return self.breaches / self.contracts if self.contracts else 0.0


class ContractMonitor:
    """Settles contracts and aggregates outcomes.

    Register compliance listeners (typically
    ``reputation_system.observe``) to propagate delivery quality into
    trust scores.  With a metrics registry attached, every settlement
    additionally lands in ``qos.*`` counters and the ``qos.compliance``
    distribution, so breach rates show up on run dashboards and in
    manifest diffs.

    With an :class:`~repro.obs.slo.SLOMonitor` attached (see
    :meth:`attach_slos`), every settlement additionally samples the SLO
    windows at the current sim time, and :meth:`slo_report` evaluates
    the burn rates — strictly observe-only: no run behaviour depends on
    a report.
    """

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        slos: Optional[SLOMonitor] = None,
        now_fn: Optional[NowFn] = None,
    ) -> None:
        self._ledgers: Dict[str, ProviderLedger] = defaultdict(ProviderLedger)
        self._outcomes: List[SLAOutcome] = []
        self._listeners: List[ComplianceListener] = []
        self._metrics = metrics
        self._slos = slos
        self._now_fn = now_fn

    def on_compliance(self, listener: ComplianceListener) -> None:
        """Register ``listener(provider_id, compliance in [0,1])``."""
        self._listeners.append(listener)

    def attach_slos(
        self, slos: SLOMonitor, now_fn: Optional[NowFn] = None
    ) -> None:
        """Attach an observe-only SLO monitor sampled at each settlement."""
        self._slos = slos
        if now_fn is not None:
            self._now_fn = now_fn

    def slo_report(self, now: Optional[float] = None) -> Optional[SLOReport]:
        """Evaluate the attached SLOs (``None`` when none are attached)."""
        if self._slos is None:
            return None
        if now is None and self._now_fn is not None:
            now = self._now_fn()
        return self._slos.evaluate(now)

    # ------------------------------------------------------------------
    def settle(self, contract: SLAContract, delivered: QoSVector) -> SLAOutcome:
        """Settle ``contract`` against ``delivered`` and record the outcome."""
        outcome = contract.settle(delivered)
        self._record(outcome)
        return outcome

    def record_cancellation(self, contract: SLAContract, by_provider: bool) -> SLAOutcome:
        """Cancel ``contract`` and record the outcome."""
        outcome = contract.cancel(by_provider)
        self._record(outcome)
        return outcome

    def _record(self, outcome: SLAOutcome) -> None:
        self._outcomes.append(outcome)
        ledger = self._ledgers[outcome.contract.provider_id]
        ledger.contracts += 1
        if outcome.breached:
            ledger.breaches += 1
        ledger.revenue += outcome.provider_revenue
        ledger.compensation_paid += max(0.0, outcome.compensation_paid)
        if self._metrics is not None:
            self._metrics.counter("qos.contracts_settled").inc()
            if outcome.breached:
                self._metrics.counter("qos.breaches").inc()
            if outcome.delivered is None:
                self._metrics.counter("qos.cancellations").inc()
            self._metrics.counter(
                "qos.compensation_paid"
            ).inc(max(0.0, outcome.compensation_paid))
            self._metrics.histogram("qos.compliance").observe(outcome.compliance)
        if self._slos is not None:
            self._slos.sample(self._now_fn() if self._now_fn is not None else 0.0)
        for listener in self._listeners:
            listener(outcome.contract.provider_id, outcome.compliance)

    # ------------------------------------------------------------------
    def ledger(self, provider_id: str) -> ProviderLedger:
        """The aggregate ledger of ``provider_id``."""
        return self._ledgers[provider_id]

    def outcomes(self, provider_id: Optional[str] = None) -> List[SLAOutcome]:
        """Settled outcomes, optionally filtered by provider."""
        if provider_id is None:
            return list(self._outcomes)
        return [
            o for o in self._outcomes if o.contract.provider_id == provider_id
        ]

    @property
    def total_contracts(self) -> int:
        """Number of settlements recorded."""
        return len(self._outcomes)

    @property
    def overall_breach_rate(self) -> float:
        """Breach fraction across all recorded settlements."""
        if not self._outcomes:
            return 0.0
        return sum(1 for o in self._outcomes if o.breached) / len(self._outcomes)

    def consumer_spend(self, consumer_id: str) -> float:
        """Net amount ``consumer_id`` paid across all its contracts."""
        return sum(
            o.consumer_net_cost
            for o in self._outcomes
            if o.contract.consumer_id == consumer_id
        )
