"""Sorted, bucketed collection index backing information sources.

The legacy source stored ``(item, visible_at)`` pairs in one flat list and
answered every question — "what is visible at ``now``?", "how many museum
items do I hold?" — with a full O(N) scan, three times per subquery.  The
index keeps items in per-domain buckets sorted by ``(visible_at, seq)``,
so visibility questions become a bisect: every item visible at ``now`` is
a *prefix* of its bucket.  That prefix property is also what lets sources
cache prepared :class:`~repro.uncertainty.matching.CandidateBlock` batch
state per domain and reuse it across queries at different virtual times.

Invalidation contract: ``dirty_from(domain)`` reports the smallest bucket
position touched since the caller's last ``checkpoint(domain)``.  Appends
past a cached block's length mean the cache can be *extended* in place;
an insertion inside the cached prefix forces a rebuild.  Buckets are only
ever accessed by explicit key — no hash-ordered iteration with effects —
keeping the determinism lint happy.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from typing import Dict, List, Optional, Tuple

from repro.data.items import InformationItem

#: sentinel sequence number larger than any real one, for bisect probes
_MAX_SEQ = 1 << 62

#: bucket entries are (visible_at, ingest sequence number, item); the
#: sequence number is unique, so tuple comparison never reaches the item
_Entry = Tuple[float, int, InformationItem]


class CollectionIndex:
    """Items bucketed by domain and sorted by visibility time."""

    #: bucket key holding every item regardless of domain
    ALL = None

    def __init__(self) -> None:
        self._seq = 0
        self._buckets: Dict[Optional[str], List[_Entry]] = {self.ALL: []}
        # Smallest position touched per bucket since its last checkpoint;
        # absent key = untouched.
        self._dirty_from: Dict[Optional[str], int] = {}
        # Derived per-bucket statistics (score ceilings, bound aggregates).
        # Any mutation of a bucket drops its stats wholesale: aggregates
        # like per-term maxima only grow under appends, so even an append
        # can invalidate a cached ceiling and the safe rule is "one write,
        # zero stats".
        self._stats: Dict[Optional[str], Dict[str, object]] = {}

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, item: InformationItem, visible_at: float) -> None:
        """Index ``item``, visible to queries from ``visible_at`` on."""
        entry: _Entry = (visible_at, self._seq, item)
        self._seq += 1
        self._insert(self.ALL, entry)
        self._insert(item.domain, entry)

    def _insert(self, key: Optional[str], entry: _Entry) -> None:
        bucket = self._buckets.setdefault(key, [])
        # Probing with the (visible_at, seq) prefix compares strictly
        # before the full entry, so the item itself is never compared.
        position = bisect_right(bucket, entry[:2])  # type: ignore[arg-type]
        insort(bucket, entry)
        previous = self._dirty_from.get(key)
        if previous is None or position < previous:
            self._dirty_from[key] = position
        self._stats.pop(key, None)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    # agora: shard-safe
    def bucket_items(self, domain: Optional[str] = None) -> List[InformationItem]:
        """All items of a bucket in ``(visible_at, seq)`` order."""
        return [item for __, __, item in self._buckets.get(domain, [])]

    # agora: shard-safe
    def visible_count(self, now: float, domain: Optional[str] = None) -> int:
        """How many items of the bucket are visible at ``now`` (bisect)."""
        bucket = self._buckets.get(domain, [])
        return bisect_right(bucket, (now, _MAX_SEQ))  # type: ignore[arg-type]

    # agora: shard-safe
    def visible_items(
        self, now: float, domain: Optional[str] = None
    ) -> List[InformationItem]:
        """Visible items in *ingestion* order (legacy-compatible)."""
        bucket = self._buckets.get(domain, [])
        prefix = bucket[: self.visible_count(now, domain)]
        return [item for __, __, item in sorted(prefix, key=lambda e: e[1])]

    # agora: shard-safe
    def domain_size(self, domain: Optional[str] = None) -> int:
        """Total number of indexed items in the bucket (visible or not)."""
        return len(self._buckets.get(domain, []))

    # agora: shard-safe
    @property
    def size(self) -> int:
        """Total number of indexed items."""
        return len(self._buckets[self.ALL])

    # ------------------------------------------------------------------
    # Cache-coherence protocol
    # ------------------------------------------------------------------
    # agora: shard-safe
    def dirty_from(self, domain: Optional[str] = None) -> Optional[int]:
        """Smallest bucket position modified since the last checkpoint.

        ``None`` means the bucket is untouched: any cache built at the
        last checkpoint is still position-for-position valid.
        """
        return self._dirty_from.get(domain)

    def checkpoint(self, domain: Optional[str] = None) -> None:
        """Mark the caller's cache as synchronised with the bucket."""
        self._dirty_from.pop(domain, None)

    # ------------------------------------------------------------------
    # Derived per-bucket statistics
    # ------------------------------------------------------------------
    # agora: shard-safe
    def cached_stat(self, name: str, domain: Optional[str] = None) -> Optional[object]:
        """A stored per-bucket statistic, or ``None`` when (in)validated.

        Stats share the bucket's write-invalidation: *any* ``add`` that
        touches the bucket clears every stat stored for it, so a non-None
        return is guaranteed to describe the bucket's current contents.
        """
        bucket_stats = self._stats.get(domain)
        if bucket_stats is None:
            return None
        return bucket_stats.get(name)

    def store_stat(self, name: str, value: object, domain: Optional[str] = None) -> None:
        """Store a statistic derived from the bucket's current contents."""
        self._stats.setdefault(domain, {})[name] = value
