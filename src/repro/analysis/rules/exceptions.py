"""AGR007 — bare / overbroad exception handlers in recovery paths.

Resilience and execution code is exactly where a swallowed
``KeyboardInterrupt`` or an accidentally-caught programming error turns
into a silent wrong answer: a breaker that "handles" a TypeError records
it as a source failure and the run diverges instead of crashing.  Bare
``except:`` is banned everywhere in the library; ``except Exception`` /
``except BaseException`` is banned in the resilience/execution paths
unless the handler re-raises.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.rules.base import Rule, RuleContext
from repro.analysis.violations import Violation

#: Dotted prefixes where broad handlers are disallowed outright.
_STRICT_PACKAGES = (
    "repro.resilience",
    "repro.query.execution",
    "repro.core",
    "repro.net",
)

_BROAD = frozenset({"Exception", "BaseException"})


def _reraises(handler: ast.ExceptHandler) -> bool:
    return any(isinstance(node, ast.Raise) for node in ast.walk(handler))


def _broad_names(node: ast.expr) -> Iterator[str]:
    exprs = node.elts if isinstance(node, ast.Tuple) else [node]
    for expr in exprs:
        if isinstance(expr, ast.Name) and expr.id in _BROAD:
            yield expr.id


class OverbroadExceptRule(Rule):
    """Flag bare excepts and non-re-raising broad handlers."""

    rule_id = "AGR007"
    title = "bare/overbroad except"
    rationale = (
        "Broad handlers in recovery paths convert programming errors into "
        "fake source failures and silently divergent runs."
    )

    def check(self, ctx: RuleContext) -> Iterator[Violation]:
        if not ctx.in_package("repro", "benchmarks", "examples"):
            return
        strict = ctx.in_package(*_STRICT_PACKAGES)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.violation(
                    ctx,
                    node,
                    "bare `except:` catches SystemExit/KeyboardInterrupt; "
                    "name the exceptions this path can actually recover from",
                )
                continue
            if not strict or _reraises(node):
                continue
            for name in _broad_names(node.type):
                yield self.violation(
                    ctx,
                    node,
                    f"`except {name}` in a resilience/execution path without "
                    "re-raise; catch the specific recoverable exceptions",
                )
