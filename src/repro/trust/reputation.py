"""Beta reputation system.

Trust in the agora is earned: each settled contract produces a compliance
signal in [0, 1] that updates the provider's Beta-distributed reputation.
The classic beta reputation model (Jøsang & Ismail) with exponential
forgetting: old evidence decays so that a reformed (or degraded) provider's
score tracks its recent behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple


@dataclass
class BetaReputation:
    """Reputation of one subject as Beta(alpha, beta) pseudo-counts.

    ``alpha`` accumulates positive evidence, ``beta`` negative evidence.
    The neutral prior Beta(1, 1) gives an uninformed score of 0.5.
    """

    alpha: float = 1.0
    beta: float = 1.0
    decay: float = 0.98

    def __post_init__(self) -> None:
        if self.alpha <= 0 or self.beta <= 0:
            raise ValueError("alpha and beta must be positive")
        if not 0.0 < self.decay <= 1.0:
            raise ValueError("decay must be in (0, 1]")

    def observe(self, outcome: float) -> None:
        """Update with an outcome in [0, 1] (1 = fully compliant)."""
        if not 0.0 <= outcome <= 1.0:
            raise ValueError("outcome must be in [0, 1]")
        self.alpha = self.alpha * self.decay + outcome
        self.beta = self.beta * self.decay + (1.0 - outcome)

    @property
    def score(self) -> float:
        """Expected compliance probability."""
        return self.alpha / (self.alpha + self.beta)

    @property
    def evidence(self) -> float:
        """Effective number of observations behind the score."""
        return self.alpha + self.beta - 2.0

    @property
    def variance(self) -> float:
        """Variance of the Beta posterior."""
        total = self.alpha + self.beta
        return (self.alpha * self.beta) / (total**2 * (total + 1.0))

    def pessimistic_score(self, caution: float = 1.0) -> float:
        """Score minus ``caution`` standard deviations (risk-averse view)."""
        return max(0.0, self.score - caution * self.variance**0.5)


class ReputationSystem:
    """Reputation scores for all providers in an agora."""

    def __init__(self, decay: float = 0.98, prior: Tuple[float, float] = (1.0, 1.0)):
        self._decay = decay
        self._prior = prior
        self._subjects: Dict[str, BetaReputation] = {}

    def _get(self, subject_id: str) -> BetaReputation:
        if subject_id not in self._subjects:
            alpha, beta = self._prior
            self._subjects[subject_id] = BetaReputation(alpha, beta, self._decay)
        return self._subjects[subject_id]

    def observe(self, subject_id: str, outcome: float) -> None:
        """Record a compliance outcome for ``subject_id``."""
        self._get(subject_id).observe(outcome)

    def score(self, subject_id: str) -> float:
        """Current trust score; unknown subjects get the neutral prior."""
        return self._get(subject_id).score

    def pessimistic_score(self, subject_id: str, caution: float = 1.0) -> float:
        """Score minus ``caution`` standard deviations."""
        return self._get(subject_id).pessimistic_score(caution)

    def evidence(self, subject_id: str) -> float:
        """Effective number of observations behind the score."""
        return self._get(subject_id).evidence

    def ranked(self, subject_ids: Optional[Iterable[str]] = None) -> List[Tuple[str, float]]:
        """Subjects sorted by descending score."""
        ids = list(subject_ids) if subject_ids is not None else sorted(self._subjects)
        pairs = [(subject_id, self.score(subject_id)) for subject_id in ids]
        return sorted(pairs, key=lambda pair: (-pair[1], pair[0]))

    def known_subjects(self) -> List[str]:
        """Sorted ids of subjects with any record."""
        return sorted(self._subjects)
