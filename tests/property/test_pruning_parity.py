"""Property tests: bound-pruned ranking is *exactly* the exhaustive path.

The pruning layer promises exactness, not approximation: every result a
``rank_topk``/pruned source answer/pruned plan execution produces must be
bitwise-identical (ids, order, floats) to the one the exhaustive
``rank_pairwise`` oracle produces — pruning may only skip work that
provably cannot change the answer.

The worlds generated here are deliberately adversarial: zero-term
documents (zero bag vectors), cloned documents (exact duplicate scores),
term-disjoint pools under a high floor (every chunk pruned), cutoffs
placed exactly on an achieved score (ties at the threshold), and live
ingest interleaved between queries (bound caches extended and rebuilt
mid-sequence).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    CorpusGenerator,
    DomainSpec,
    FeatureExtractor,
    TextDocument,
    TopicSpace,
    Vocabulary,
)
from repro.query import (
    ExecutionContext,
    PruneHint,
    Query,
    QueryExecutor,
    QueryKind,
    RelevanceOracle,
    Retrieve,
    standard_plan,
)
from repro.sim import RngStreams
from repro.sources import InformationSource, SourceQuality, SourceRegistry

pytestmark = [pytest.mark.property, pytest.mark.slow]

POOL_SIZE = 48


@pytest.fixture(scope="module")
def pruning_world():
    """A fixed mixed-type item pool plus a fitted engine."""
    from repro.uncertainty import build_matching_engine

    streams = RngStreams(seed=606).spawn("pruning")
    space = TopicSpace(8)
    vocabulary = Vocabulary(
        space, streams.spawn("v"), vocabulary_size=400, terms_per_topic=50
    )
    corpus = CorpusGenerator(
        space, vocabulary, streams.spawn("c"), feature_dimensions=16
    )
    extractor = FeatureExtractor(16, streams.spawn("f"))

    def spec(name, mix, prior=None):
        return DomainSpec(
            name=name,
            topic_prior=prior or {"folk-jewelry": 0.6, "dance-forms": 0.4},
            type_mix=mix,
            concentration=0.4,
        )

    sample = corpus.generate(
        spec("sample", {"text": 0.0, "media": 1.0, "compound": 0.0}), 40
    )
    engine = build_matching_engine(vocabulary, extractor, lifter_sample=sample)
    pool = corpus.generate(
        spec("pool", {"text": 0.4, "media": 0.4, "compound": 0.2}), POOL_SIZE
    )
    off_topic = corpus.generate(
        spec(
            "pool",
            {"text": 1.0, "media": 0.0, "compound": 0.0},
            prior={"tourism": 1.0},
        ),
        24,
    )
    queries = corpus.generate(
        spec("query", {"text": 0.5, "media": 0.3, "compound": 0.2}), 8
    )
    return engine, pool, off_topic, queries, vocabulary, space


def _clone(doc: TextDocument, index: int) -> TextDocument:
    """Same content under a fresh id — guarantees exact duplicate scores."""
    return TextDocument(
        item_id=f"dup-{index}-{doc.item_id}",
        domain=doc.domain,
        latent=doc.latent,
        terms=dict(doc.terms),
    )


def _zero_doc(index: int) -> TextDocument:
    """A document with an empty term bag (zero text vector)."""
    return TextDocument(
        item_id=f"zero-{index}", domain="pool", latent=np.zeros(2), terms={}
    )


def _probe_query(space, vocabulary, tag, seed, k, length=50, threshold=0.0):
    """A topic-style query with a *stable* evidence item.

    ``Query.evidence_item()`` normally mints a fresh item id per call;
    the autouse ``_reset_ids`` fixture resets that counter per test while
    the module-scoped engine caches per item id — pinning a uniquely
    prefixed reference item keeps ids collision-free across examples.
    """
    rng = np.random.default_rng(seed)
    intent = space.basis("folk-jewelry", weight=0.9)
    terms = vocabulary.sample_terms(intent, rng, length=length)
    probe = TextDocument(
        item_id=f"probe-{tag}", domain="query", latent=intent, terms=terms
    )
    return Query(
        kind=QueryKind.SIMILARITY,
        reference_item=probe,
        k=k,
        threshold=threshold,
        intent_latent=intent,
    )


def _expected(engine, query, candidates, k, floor):
    """The oracle: exhaustive pairwise rank, cut at k, floor-filtered."""
    top = engine.rank_pairwise(query, candidates)[:k]
    if floor > 0.0:
        top = [(item, s) for item, s in top if s >= floor]
    return top


def _assert_bitwise(actual, expected):
    assert [i.item_id for i, __ in actual] == [i.item_id for i, __ in expected]
    assert [s for __, s in actual] == [s for __, s in expected]  # bitwise


class TestTopkPairwiseParity:
    @settings(max_examples=80, deadline=None)
    @given(
        indices=st.lists(
            st.integers(min_value=0, max_value=POOL_SIZE - 1),
            min_size=0, max_size=36,
        ),
        clones=st.lists(
            st.integers(min_value=0, max_value=POOL_SIZE - 1),
            min_size=0, max_size=6,
        ),
        zeros=st.integers(min_value=0, max_value=3),
        query_index=st.integers(min_value=0, max_value=7),
        k=st.integers(min_value=1, max_value=14),
        floor=st.sampled_from([0.0, 0.3, 0.6, 0.97]),
    )
    def test_topk_matches_pairwise_exactly(
        self, pruning_world, indices, clones, zeros, query_index, k, floor
    ):
        """Pruned top-k == pairwise oracle on pools with duplicates/zeros."""
        engine, pool, __, queries, *_ = pruning_world
        candidates = [pool[i] for i in indices]
        candidates += [
            _clone(pool[i], j)
            for j, i in enumerate(clones)
            if isinstance(pool[i], TextDocument)
        ]
        candidates += [_zero_doc(j) for j in range(zeros)]
        query = queries[query_index]
        actual = engine.rank_topk(query, candidates, k, score_floor=floor)
        _assert_bitwise(actual, _expected(engine, query, candidates, k, floor))

    @settings(max_examples=50, deadline=None)
    @given(
        query_index=st.integers(min_value=0, max_value=7),
        cut_position=st.integers(min_value=0, max_value=POOL_SIZE - 1),
        k_offset=st.integers(min_value=-2, max_value=2),
    )
    def test_cutoff_exactly_on_achieved_score(
        self, pruning_world, query_index, cut_position, k_offset
    ):
        """Floor and k placed exactly on an achieved (possibly tied) score."""
        engine, pool, __, queries, *_ = pruning_world
        query = queries[query_index]
        full = engine.rank_pairwise(query, pool)
        floor = full[cut_position][1]  # cutoff lands exactly on a score
        k = max(1, cut_position + 1 + k_offset)
        actual = engine.rank_topk(query, pool, k, score_floor=floor)
        _assert_bitwise(actual, _expected(engine, query, pool, k, floor))

    @settings(max_examples=30, deadline=None)
    @given(
        n_candidates=st.integers(min_value=1, max_value=24),
        k=st.integers(min_value=1, max_value=8),
        query_index=st.integers(min_value=0, max_value=7),
    )
    def test_all_pruned_block_returns_empty(
        self, pruning_world, n_candidates, k, query_index
    ):
        """Term-disjoint pools under a high floor prune every chunk."""
        engine, __, off_topic, ___, vocabulary, space = pruning_world
        query = _probe_query(
            space, vocabulary, f"ap-{query_index}", seed=100 + query_index,
            k=k, length=40,
        ).evidence_item()
        candidates = off_topic[:n_candidates]
        ranked, stats = engine.rank_block_topk(
            query, engine.prepare(candidates), k, score_floor=0.995
        )
        _assert_bitwise(ranked, _expected(engine, query, candidates, k, 0.995))
        # Off-topic text shares few terms with the query; the bound must
        # prune at least the disjoint chunks, and whatever it scored must
        # still produce the oracle answer (asserted above).
        assert stats.candidates_scored <= stats.candidates_total
        if stats.candidates_scored == 0:
            assert ranked == []


class TestSourceLiveIngestParity:
    @settings(max_examples=25, deadline=None)
    @given(
        batches=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=10),  # ingest batch size
                st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
                st.floats(min_value=0.0, max_value=80.0, allow_nan=False),
                st.sampled_from([0.0, 0.4, 0.7]),        # pushed-down floor
            ),
            min_size=1, max_size=5,
        ),
        seed=st.integers(min_value=0, max_value=2**16),
        error_rate=st.sampled_from([0.0, 0.25]),
    )
    def test_twin_sources_agree_over_ingest_sequences(
        self, pruning_world, batches, seed, error_rate
    ):
        """Pruning-on and pruning-off twins answer identically, always.

        The twins share content, seeds and engine; the only difference is
        the rank path.  Every answer must match bitwise *and* match the
        pairwise oracle over the visible items — across cache extends,
        rebuilds, and floors arriving mid-sequence.
        """
        engine, pool, __, ___, vocabulary, space = pruning_world
        query = _probe_query(space, vocabulary, f"twin-{seed}", seed=seed, k=5)
        subquery = query.restricted_to("pool")
        twins = {}
        for pruning in (True, False):
            # Same source_id on purpose: the source RNG scope keys on it,
            # so the twins draw identical coverage/lag/corruption streams.
            twins[pruning] = InformationSource(
                source_id=f"twin-{seed}",
                node_id="n0",
                domains=["pool"],
                quality=SourceQuality(
                    coverage=1.0, freshness_lag=10.0, error_rate=error_rate,
                ),
                engine=engine,
                streams=RngStreams(seed=seed).spawn("twin"),
                pruning=pruning,
            )
        cursor = 0
        for size, ingest_now, probe_now, floor in batches:
            chunk = pool[cursor:cursor + size]
            cursor += size
            hint = PruneHint(score_floor=floor, k_cap=subquery.k)
            answers = {}
            for pruning, source in sorted(twins.items()):
                source.ingest(chunk, now=ingest_now)
                answers[pruning] = source.answer(
                    subquery, now=probe_now, prune=hint
                )
            _assert_bitwise(answers[True].matches, answers[False].matches)
            assert (
                answers[True].candidates_scored
                <= answers[True].candidates_scanned
            )
            assert answers[True].service_time == answers[False].service_time
            if error_rate == 0.0:
                visible = twins[True].visible_items(probe_now, "pool")
                expected = _expected(
                    engine, subquery.evidence_item(), visible, subquery.k, floor
                )
                _assert_bitwise(answers[True].matches, expected)


class TestPlanExecutionParity:
    @settings(max_examples=25, deadline=None)
    @given(
        k=st.integers(min_value=1, max_value=8),
        tau_choice=st.sampled_from(["zero", "mid", "achieved"]),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_pruned_plan_equals_exhaustive_plan(
        self, pruning_world, k, tau_choice, seed
    ):
        """Full Threshold+TopK plans deliver bitwise-identical results."""
        engine, pool, off_topic, __, vocabulary, space = pruning_world
        if tau_choice == "achieved":
            base = _probe_query(space, vocabulary, f"plan-{seed}", seed=seed, k=k)
            ranked = engine.rank_pairwise(base.evidence_item(), pool)
            tau = float(np.clip(ranked[min(k, len(ranked) - 1)][1], 0.0, 1.0))
        else:
            tau = {"zero": 0.0, "mid": 0.5}[tau_choice]
        results = {}
        for pruning in (True, False):
            query = _probe_query(
                space, vocabulary, f"plan-{seed}", seed=seed, k=k, threshold=tau
            )
            registry = SourceRegistry()
            leaves = []
            for domain, items in (("pool", pool), ("thesis", off_topic)):
                source = InformationSource(
                    source_id=f"exec-{domain}-{pruning}",
                    node_id=f"n-{domain}",
                    domains=[domain],
                    quality=SourceQuality(
                        coverage=1.0, freshness_lag=0.0, error_rate=0.0,
                    ),
                    engine=engine,
                    streams=RngStreams(seed=seed).spawn(f"exec-{domain}"),
                    pruning=pruning,
                )
                source.ingest(items, now=0.0, immediate=True)
                registry.register(source)
                leaves.append(
                    Retrieve(
                        subquery=query.restricted_to(domain),
                        source_id=source.source_id,
                    )
                )
            plan = standard_plan(leaves, k=query.k, tau=query.threshold)
            executor = QueryExecutor(
                ExecutionContext(
                    registry=registry, oracle=RelevanceOracle(space), now=5.0
                )
            )
            results[pruning] = executor.execute(plan, query)
        pruned, exhaustive = results[True], results[False]
        a = [
            (m.item.item_id, m.score, m.probability)
            for m in pruned.results.matches
        ]
        b = [
            (m.item.item_id, m.score, m.probability)
            for m in exhaustive.results.matches
        ]
        assert a == b  # ids, order, floats — bitwise
        assert pruned.response_time == exhaustive.response_time
        assert all(
            ans.candidates_scored <= ans.candidates_scanned
            for ans in pruned.answers
        )
