"""Matching engines for heterogeneous objects.

Section 2 of the paper asks three escalating questions: how to match two
images (feature-set uncertainty), how to match *compound* objects ("a web
page of a fashion magazine with an auction catalog"), and how to match
objects *of different types* ("an image of a jewel matching an article").
This module answers all three:

- :class:`TextMatcher` — cosine over sublinear-TF term bags.
- :class:`MediaMatcher` — cosine over one observable feature set.
- :class:`ConceptLifter` — a learned linear map from observable features
  into the shared topic (concept) space, fit by least squares on a labelled
  sample; enables cross-type comparison.
- :class:`CrossTypeMatcher` — lifts both objects into concept space.
- :class:`CompoundMatcher` — recursive best-part alignment with weights.
- :class:`MatchingEngine` — dispatches on item types.

Every matcher exposes both a pairwise ``score`` and a batched
``score_many``.  The batch path computes query-side state (TF bag, lift,
feature vector) once per call instead of once per pair, scores candidates
through the einsum kernels of :mod:`repro.uncertainty.similarity`, and
memoizes per-item derived state in bounded LRU caches.  The contract —
enforced by property tests — is *exact* float parity: ``score_many(q,
cs)[i]`` is bitwise equal to ``score(q, cs[i])``, so ``rank`` and
``rank_pairwise`` return identical lists.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left
from collections import OrderedDict
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.data.features import FeatureExtractor
from repro.data.items import (
    CompoundObject,
    InformationItem,
    MediaObject,
    TextDocument,
)
from repro.data.vocabulary import Vocabulary
from repro.uncertainty.pruning import BlockBounds, PruneStats
from repro.uncertainty.similarity import (
    bag_cosine,
    bag_norm,
    batch_bag_cosine,
    batch_dot_kernel,
    batch_nonnegative_cosine,
    dot_kernel,
    nonnegative_cosine,
    sublinear_tf,
)

if TYPE_CHECKING:
    from repro.obs.metrics import MetricsRegistry

#: default bound for per-item derived-state caches (vectors are tiny, so
#: this is a few MB at most; long simulations stop leaking memory)
DEFAULT_CACHE_SIZE = 8192

#: histogram buckets for the fraction of candidates a pruned rank scored
PRUNE_FRACTION_BUCKETS = (
    0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0,
)


class LruCache:
    """A bounded mapping with LRU eviction and hit/miss counters.

    Keys are item ids: derived state (TF bags, features, concept lifts) is
    deterministic per item, so entries never go stale — the bound exists
    to cap memory, not to expire values.  When a metrics registry is
    bound, hits/misses/evictions are mirrored into
    ``matching.cache.<name>.*`` counters.
    """

    def __init__(self, name: str, maxsize: int = DEFAULT_CACHE_SIZE):
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.name = name
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._data: "OrderedDict[object, object]" = OrderedDict()
        self._metrics: Optional["MetricsRegistry"] = None

    def bind_metrics(self, metrics: Optional["MetricsRegistry"]) -> None:
        """Mirror this cache's counters into ``metrics`` from now on."""
        self._metrics = metrics

    def _count(self, event: str) -> None:
        if self._metrics is not None:
            self._metrics.counter(f"matching.cache.{self.name}.{event}").inc()

    # agora: worker-local cache instance and its bound metrics registry are
    # per-worker; entries are deterministic per item id, so workers converge
    def get_or_compute(self, key: object, compute: Callable[[], object]) -> object:
        """Cached value for ``key``, computing and inserting on miss."""
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            self._count("misses")
            value = compute()
            self._data[key] = value
            if len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self.evictions += 1
                self._count("evictions")
            return value
        self._data.move_to_end(key)
        self.hits += 1
        self._count("hits")
        return value

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        self._data.clear()

    def __len__(self) -> int:
        return len(self._data)


class TextMatcher:
    """Scores text/text pairs by term overlap."""

    def __init__(self, cache_size: int = DEFAULT_CACHE_SIZE):
        self._bags = LruCache("text_tf", cache_size)

    def _bag(self, doc: TextDocument) -> Tuple[Dict[str, float], float]:
        """The document's sublinear-TF bag and its norm (cached)."""
        return self._bags.get_or_compute(  # type: ignore[return-value]
            doc.item_id,
            lambda: (lambda bag: (bag, bag_norm(bag)))(sublinear_tf(doc.terms)),
        )

    def score(self, query: TextDocument, candidate: TextDocument) -> float:
        """Similarity score for one pair, in [0, 1]."""
        return bag_cosine(self._bag(query)[0], self._bag(candidate)[0])

    def score_many(
        self, query: TextDocument, candidates: Sequence[TextDocument]
    ) -> np.ndarray:
        """Scores of ``query`` against each candidate (TF computed once)."""
        query_bag, __ = self._bag(query)
        prepared = [self._bag(candidate) for candidate in candidates]
        return batch_bag_cosine(
            query_bag,
            [bag for bag, __ in prepared],
            [norm for __, norm in prepared],
        )


class MediaMatcher:
    """Scores media/media pairs over one observable feature set."""

    def __init__(
        self,
        extractor: FeatureExtractor,
        feature_set: str,
        cache_size: int = DEFAULT_CACHE_SIZE,
    ):
        self.extractor = extractor
        self.feature_set = feature_set
        self._cache = LruCache("media_features", cache_size)

    def _features(self, obj: MediaObject) -> np.ndarray:
        return self._cache.get_or_compute(  # type: ignore[return-value]
            obj.item_id, lambda: self.extractor.extract(obj, self.feature_set)
        )

    def score(self, query: MediaObject, candidate: MediaObject) -> float:
        """Similarity score for one pair, in [0, 1]."""
        a = self._features(query)
        b = self._features(candidate)
        return float((1.0 + dot_kernel(a, b)) / 2.0)

    def score_many(
        self, query: MediaObject, candidates: Sequence[MediaObject]
    ) -> np.ndarray:
        """Scores of ``query`` against each candidate (one batched dot)."""
        if not candidates:
            return np.zeros(0)
        query_features = self._features(query)
        matrix = np.stack([self._features(candidate) for candidate in candidates])
        return (1.0 + batch_dot_kernel(matrix, query_features)) / 2.0


class ConceptLifter:
    """Learned linear lift from observable evidence into concept space.

    For media objects: ridge regression from extracted features to latent
    topic vectors, trained on a labelled sample (in a real deployment this
    would be a hand-annotated calibration set; here the generator supplies
    labels).  For text: the vocabulary's topic posterior, which needs no
    training.  Lifts are memoized per item id — an item's lift is
    deterministic — so repeated ranks over the same collection pay the
    posterior / regression cost once.
    """

    def __init__(
        self,
        vocabulary: Vocabulary,
        extractor: FeatureExtractor,
        feature_set: str = "content_metadata",
        ridge: float = 1.0,
        cache_size: int = DEFAULT_CACHE_SIZE,
    ):
        self.vocabulary = vocabulary
        self.extractor = extractor
        self.feature_set = feature_set
        self.ridge = ridge
        self._weights: Optional[np.ndarray] = None
        self._lifts = LruCache("concept_lifts", cache_size)

    @property
    def is_fitted(self) -> bool:
        """Whether the media lift has been trained."""
        return self._weights is not None

    def fit(self, sample: Sequence[MediaObject]) -> "ConceptLifter":
        """Fit the media lift on a labelled sample of media objects."""
        if not sample:
            raise ValueError("need a non-empty training sample")
        features = self.extractor.extract_many(sample, self.feature_set)
        targets = np.stack([obj.latent for obj in sample])
        dims = features.shape[1]
        gram = features.T @ features + self.ridge * np.eye(dims)
        self._weights = np.linalg.solve(gram, features.T @ targets)
        self._lifts.clear()  # lifts depend on the weights
        return self

    def _uniform(self, dimensions: int) -> np.ndarray:
        return np.full(dimensions, 1.0 / dimensions)

    def _lift_uncached(self, item: InformationItem) -> np.ndarray:
        if isinstance(item, TextDocument):
            return self.vocabulary.topic_posterior(item.terms)
        if isinstance(item, MediaObject):
            if self._weights is None:
                raise RuntimeError("ConceptLifter must be fit before lifting media")
            features = self.extractor.extract(item, self.feature_set)
            raw = features @ self._weights
            raw = np.clip(raw, 0.0, None)
            total = raw.sum()
            if total <= 0:
                return self._uniform(raw.shape[0])
            return raw / total
        if isinstance(item, CompoundObject):
            parts = item.flat_parts()
            dimensions = self.vocabulary.topic_space.n_topics
            if not parts:
                return self._uniform(dimensions)
            total = sum(weight for __, weight in parts)
            if total <= 0:
                # All-zero part weights would otherwise produce 0/0 = NaN.
                return self._uniform(dimensions)
            lifted = np.stack([self.lift(part) * weight for part, weight in parts])
            vector = lifted.sum(axis=0) / total
            vector_total = vector.sum()
            if vector_total <= 0 or not np.isfinite(vector_total):
                return self._uniform(dimensions)
            return vector / vector_total
        raise TypeError(f"cannot lift item of type {type(item).__name__}")

    def lift(self, item: InformationItem) -> np.ndarray:
        """Map ``item`` to a (normalised, non-negative) concept vector."""
        return self.lift_with_norm(item)[0]

    def lift_with_norm(self, item: InformationItem) -> Tuple[np.ndarray, float]:
        """The concept vector and its Euclidean norm (both cached)."""
        return self._lifts.get_or_compute(  # type: ignore[return-value]
            item.item_id,
            lambda: (lambda v: (v, float(np.linalg.norm(v))))(
                self._lift_uncached(item)
            ),
        )

    def lift_many(
        self, items: Sequence[InformationItem]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Stacked concept vectors and norms for many items (cached)."""
        if not items:
            n_topics = self.vocabulary.topic_space.n_topics
            return np.zeros((0, n_topics)), np.zeros(0)
        pairs = [self.lift_with_norm(item) for item in items]
        matrix = np.stack([vector for vector, __ in pairs])
        norms = np.array([norm for __, norm in pairs])
        return matrix, norms


class CrossTypeMatcher:
    """Scores any pair of items by concept-space cosine."""

    def __init__(self, lifter: ConceptLifter):
        self.lifter = lifter

    def score(self, query: InformationItem, candidate: InformationItem) -> float:
        """Similarity score for one pair, in [0, 1]."""
        return nonnegative_cosine(self.lifter.lift(query), self.lifter.lift(candidate))

    def score_many(
        self, query: InformationItem, candidates: Sequence[InformationItem]
    ) -> np.ndarray:
        """Scores of ``query`` against each candidate (query lifted once)."""
        if not candidates:
            return np.zeros(0)
        query_lift, query_norm = self.lifter.lift_with_norm(query)
        matrix, norms = self.lifter.lift_many(candidates)
        return batch_nonnegative_cosine(matrix, norms, query_lift, query_norm)


class CompoundMatcher:
    """Aligns compound objects part-by-part.

    Score = weighted mean over query parts of the best match among
    candidate parts, where part/part scores come from a base engine.  This
    is the "matching strategies for compound objects ... each with its own
    semantics and rules for matching" design.
    """

    def __init__(self, base_engine: "MatchingEngine"):
        self.base = base_engine

    def score(self, query: InformationItem, candidate: InformationItem) -> float:
        """Similarity score for one pair, in [0, 1]."""
        query_parts = self._parts(query)
        candidate_parts = self._parts(candidate)
        if not query_parts or not candidate_parts:
            return 0.0
        total_weight = sum(weight for __, weight in query_parts)
        aggregate = 0.0
        for query_part, weight in query_parts:
            best = max(
                self.base.score(query_part, candidate_part)
                for candidate_part, __ in candidate_parts
            )
            aggregate += weight * best
        return aggregate / total_weight

    def score_many(
        self, query: InformationItem, candidates: Sequence[InformationItem]
    ) -> np.ndarray:
        """Scores against each candidate; each query part batched once.

        All candidates' leaf parts are scored in one ``score_many`` per
        query part, then the best-part/weighted-mean aggregation runs on
        the resulting rows — the same arithmetic, in the same order, as
        the pairwise path.
        """
        n = len(candidates)
        scores = np.zeros(n)
        if n == 0:
            return scores
        query_parts = self._parts(query)
        if not query_parts:
            return scores
        total_weight = sum(weight for __, weight in query_parts)
        parts_per_candidate = [self._parts(candidate) for candidate in candidates]
        flat_parts: List[InformationItem] = [
            part for parts in parts_per_candidate for part, __ in parts
        ]
        if not flat_parts:
            return scores
        rows = [self.base.score_many(part, flat_parts) for part, __ in query_parts]
        offset = 0
        for i, candidate_parts in enumerate(parts_per_candidate):
            width = len(candidate_parts)
            if width == 0:
                continue
            aggregate = 0.0
            for row, (__, weight) in zip(rows, query_parts):
                aggregate += weight * float(row[offset:offset + width].max())
            scores[i] = aggregate / total_weight
            offset += width
        return scores

    @staticmethod
    def _parts(item: InformationItem) -> List[Tuple[InformationItem, float]]:
        if isinstance(item, CompoundObject):
            return item.flat_parts()
        return [(item, 1.0)]


# Candidate kind tags used by CandidateBlock partitions.
_KIND_TEXT = 0
_KIND_MEDIA = 1
_KIND_COMPOUND = 2
_KIND_OTHER = 3


class CandidateBlock:
    """Prepared batch-scoring state over an ordered candidate pool.

    A block partitions candidates by type, stacks their cached derived
    vectors into matrices, and scores any query against a *prefix* of the
    pool in one pass.  Sources keep blocks per domain (candidates sorted
    by visibility time, so "the items visible at ``now``" is always a
    prefix) and extend them incrementally as items are ingested.

    Scores are bitwise-identical to the pairwise path; candidate order
    only affects the order of the returned array, never a value.
    """

    def __init__(self, engine: "MatchingEngine", items: Sequence[InformationItem]):
        self.engine = engine
        self.items: List[InformationItem] = []
        self._kinds: List[int] = []
        # Ascending positions per partition, aligned with per-kind state.
        self._text_positions: List[int] = []
        self._text_bags: List[Dict[str, float]] = []
        self._text_norms: List[float] = []
        self._media_positions: List[int] = []
        self._compound_positions: List[int] = []
        self._noncompound_positions: List[int] = []
        self._noncompound_kinds: List[int] = []
        # Lazily stacked matrices (rebuilt from per-item caches on demand).
        self._media_matrix: Optional[np.ndarray] = None
        self._lift_matrix: Optional[np.ndarray] = None
        self._lift_norms: Optional[np.ndarray] = None
        # Lazily built chunked score upper bounds (synced in bounds()).
        self._bounds: Optional[BlockBounds] = None
        self.extend(items)

    def __len__(self) -> int:
        return len(self.items)

    def extend(self, new_items: Sequence[InformationItem]) -> None:
        """Append candidates, invalidating only the stacked matrices.

        Per-item derived state (TF bags, features, lifts) stays cached in
        the engine's LRU caches, so re-stacking after an extend re-derives
        nothing — it only rebuilds the dense views.
        """
        if not new_items:
            return
        text = self.engine.text
        for item in new_items:
            position = len(self.items)
            self.items.append(item)
            if isinstance(item, CompoundObject):
                kind = _KIND_COMPOUND
                self._compound_positions.append(position)
            elif isinstance(item, TextDocument):
                kind = _KIND_TEXT
                self._text_positions.append(position)
                bag, norm = text._bag(item)
                self._text_bags.append(bag)
                self._text_norms.append(norm)
            elif isinstance(item, MediaObject):
                kind = _KIND_MEDIA
                self._media_positions.append(position)
            else:
                kind = _KIND_OTHER
            self._kinds.append(kind)
            if kind != _KIND_COMPOUND:
                self._noncompound_positions.append(position)
                self._noncompound_kinds.append(kind)
        self._media_matrix = None
        self._lift_matrix = None
        self._lift_norms = None

    # agora: worker-local bound state is derived deterministically from
    # per-worker caches; each worker's lazily built copy is identical
    def bounds(self) -> BlockBounds:
        """Chunked score upper bounds over the pool (built lazily).

        The bounds object is extended in place to cover candidates
        appended since the last call, so repeated ranks over a growing
        block never re-derive per-item state.
        """
        if self._bounds is None:
            self._bounds = BlockBounds(self.engine)
        if len(self._bounds) < len(self.items):
            self._bounds.extend(self.items[len(self._bounds):])
        return self._bounds

    # -- lazily stacked matrices ----------------------------------------
    # agora: worker-local dense view over per-worker feature caches,
    # rebuilt identically by every worker on first use
    def _media_rows(self) -> np.ndarray:
        if self._media_matrix is None:
            media = self.engine.media
            if self._media_positions:
                rows = [
                    media._features(self.items[p])  # type: ignore[arg-type]
                    for p in self._media_positions
                ]
                self._media_matrix = np.stack(rows)
            else:
                self._media_matrix = np.zeros((0, 0))
        return self._media_matrix

    # agora: worker-local dense view over the per-worker lift cache,
    # rebuilt identically by every worker on first use
    def _lift_rows(self) -> Tuple[np.ndarray, np.ndarray]:
        if self._lift_matrix is None or self._lift_norms is None:
            lifter = self.engine.cross.lifter
            self._lift_matrix, self._lift_norms = lifter.lift_many(
                [self.items[p] for p in self._noncompound_positions]
            )
        return self._lift_matrix, self._lift_norms

    # -- dense-view sharing (repro.parallel) -----------------------------
    def dense_stack(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Force-build and return the stacked dense matrices.

        Returns ``(media_matrix, lift_matrix, lift_norms)`` aligned with
        :meth:`media_positions` / :meth:`noncompound_positions`.  The
        parallel layer copies these into shared memory so worker
        processes can score without re-deriving per-item state.
        """
        media = self._media_rows()
        lift_matrix, lift_norms = self._lift_rows()
        return media, lift_matrix, lift_norms

    def media_positions(self) -> List[int]:
        """Pool positions of the media partition (ascending)."""
        return list(self._media_positions)

    def noncompound_positions(self) -> List[int]:
        """Pool positions of the non-compound partition (ascending)."""
        return list(self._noncompound_positions)

    def install_dense(
        self,
        media_matrix: Optional[np.ndarray],
        lift_matrix: Optional[np.ndarray],
        lift_norms: Optional[np.ndarray],
    ) -> None:
        """Install precomputed dense matrices (e.g. shared-memory views).

        Rows must be bitwise what :meth:`dense_stack` would build for this
        block — guaranteed when they are row slices of a parent block over
        a pool this block's items form a contiguous run of, because every
        per-item derived vector is a pure function of the item.  A later
        :meth:`extend` drops the installed views and the block falls back
        to rebuilding locally, which re-derives the identical floats.
        """
        if media_matrix is not None:
            if media_matrix.shape[0] != len(self._media_positions):
                raise ValueError("media matrix row count mismatch")
            self._media_matrix = media_matrix
        if lift_matrix is not None or lift_norms is not None:
            if lift_matrix is None or lift_norms is None:
                raise ValueError("lift matrix and norms must be installed together")
            if (
                lift_matrix.shape[0] != len(self._noncompound_positions)
                or lift_norms.shape[0] != len(self._noncompound_positions)
            ):
                raise ValueError("lift matrix row count mismatch")
            self._lift_matrix = lift_matrix
            self._lift_norms = lift_norms

    # -- scoring ---------------------------------------------------------
    # agora: shard-safe
    def score(
        self, query: InformationItem, limit: Optional[int] = None
    ) -> np.ndarray:
        """Scores of ``query`` against the first ``limit`` candidates.

        ``scores[i]`` is bitwise equal to
        ``engine.score(query, self.items[i])``.
        """
        n = len(self.items) if limit is None else min(limit, len(self.items))
        return self.score_range(query, 0, n)

    # agora: shard-safe
    def score_range(
        self, query: InformationItem, start: int, stop: int
    ) -> np.ndarray:
        """Scores against candidates at positions ``[start, stop)``.

        ``scores[i]`` is bitwise equal to
        ``engine.score(query, self.items[start + i])`` — the einsum
        kernels compute each candidate's score with one fixed reduction,
        so slicing the pool never changes a float.  This is what lets the
        pruning rank path score surviving chunks in isolation and still
        match the exhaustive path exactly.
        """
        start = max(0, start)
        stop = min(stop, len(self.items))
        if stop <= start:
            return np.zeros(0)
        if isinstance(query, CompoundObject):
            return self.engine.compound.score_many(query, self.items[start:stop])
        scores = np.zeros(stop - start)
        self._score_native(query, start, stop, scores)
        self._score_cross(query, start, stop, scores)
        lo = bisect_left(self._compound_positions, start)
        hi = bisect_left(self._compound_positions, stop)
        if hi > lo:
            positions = self._compound_positions[lo:hi]
            scores[[p - start for p in positions]] = self.engine.compound.score_many(
                query, [self.items[p] for p in positions]
            )
        return scores

    def _score_native(
        self, query: InformationItem, start: int, stop: int, scores: np.ndarray
    ) -> None:
        """Same-type scores (text/text term overlap, media/media features)."""
        if isinstance(query, TextDocument):
            lo = bisect_left(self._text_positions, start)
            hi = bisect_left(self._text_positions, stop)
            if hi > lo:
                query_bag, __ = self.engine.text._bag(query)
                positions = [p - start for p in self._text_positions[lo:hi]]
                scores[positions] = batch_bag_cosine(
                    query_bag,
                    self._text_bags[lo:hi],
                    self._text_norms[lo:hi],
                )
        elif isinstance(query, MediaObject):
            lo = bisect_left(self._media_positions, start)
            hi = bisect_left(self._media_positions, stop)
            if hi > lo:
                media = self.engine.media
                query_features = media._features(query)
                positions = [p - start for p in self._media_positions[lo:hi]]
                scores[positions] = (
                    1.0 + batch_dot_kernel(self._media_rows()[lo:hi], query_features)
                ) / 2.0

    def _score_cross(
        self, query: InformationItem, start: int, stop: int, scores: np.ndarray
    ) -> None:
        """Concept-space scores for mixed-type (non-compound) pairs."""
        if isinstance(query, TextDocument):
            native = _KIND_TEXT
        elif isinstance(query, MediaObject):
            native = _KIND_MEDIA
        else:
            native = -1  # plain base items always lift (and may TypeError)
        lo = bisect_left(self._noncompound_positions, start)
        hi = bisect_left(self._noncompound_positions, stop)
        rows = [
            j for j in range(lo, hi) if self._noncompound_kinds[j] != native
        ]
        if not rows:
            return
        lifter = self.engine.cross.lifter
        query_lift, query_norm = lifter.lift_with_norm(query)
        matrix, norms = self._lift_rows()
        positions = [self._noncompound_positions[j] - start for j in rows]
        scores[positions] = batch_nonnegative_cosine(
            matrix[rows], norms[rows], query_lift, query_norm
        )


class MatchingEngine:
    """Type-dispatching entry point for scoring item pairs.

    Uses the most specific matcher available: text/text → term overlap,
    media/media → the configured feature set, anything involving a
    compound → part alignment, and mixed plain types → concept-space lift.

    ``rank``/``score_many`` run the batched kernels; ``rank_pairwise``
    retains the one-pair-at-a-time reference path the parity property
    tests compare against.
    """

    def __init__(
        self,
        text_matcher: TextMatcher,
        media_matcher: MediaMatcher,
        cross_matcher: CrossTypeMatcher,
        metrics: Optional["MetricsRegistry"] = None,
    ):
        self.text = text_matcher
        self.media = media_matcher
        self.cross = cross_matcher
        self.compound = CompoundMatcher(self)
        self._metrics: Optional["MetricsRegistry"] = None
        self.attach_metrics(metrics)

    def attach_metrics(self, metrics: Optional["MetricsRegistry"]) -> None:
        """Record rank batch sizes and cache traffic into ``metrics``."""
        self._metrics = metrics
        for cache in self.caches().values():
            cache.bind_metrics(metrics)

    def caches(self) -> Dict[str, LruCache]:
        """The engine's derived-state caches, by name."""
        return {
            "text_tf": self.text._bags,
            "media_features": self.media._cache,
            "concept_lifts": self.cross.lifter._lifts,
        }

    # agora: shard-safe
    def score(self, query: InformationItem, candidate: InformationItem) -> float:
        """Return a similarity score in [0, 1] for any item pair."""
        if isinstance(query, CompoundObject) or isinstance(candidate, CompoundObject):
            return self.compound.score(query, candidate)
        if isinstance(query, TextDocument) and isinstance(candidate, TextDocument):
            return self.text.score(query, candidate)
        if isinstance(query, MediaObject) and isinstance(candidate, MediaObject):
            return self.media.score(query, candidate)
        return self.cross.score(query, candidate)

    # agora: shard-safe
    def prepare(self, candidates: Sequence[InformationItem]) -> CandidateBlock:
        """Build reusable batch-scoring state over ``candidates``."""
        return CandidateBlock(self, candidates)

    # agora: shard-safe
    def score_many(
        self, query: InformationItem, candidates: Sequence[InformationItem]
    ) -> np.ndarray:
        """Scores of ``query`` against each candidate, batched.

        ``score_many(q, cs)[i] == score(q, cs[i])`` exactly.
        """
        return self.prepare(candidates).score(query)

    # agora: shard-safe
    def rank(
        self, query: InformationItem, candidates: Sequence[InformationItem]
    ) -> List[Tuple[InformationItem, float]]:
        """Candidates with scores, best first (ties broken by item id)."""
        return self.rank_block(query, self.prepare(candidates))

    # agora: shard-safe
    def rank_block(
        self,
        query: InformationItem,
        block: CandidateBlock,
        limit: Optional[int] = None,
    ) -> List[Tuple[InformationItem, float]]:
        """Rank the first ``limit`` candidates of a prepared block."""
        n = len(block) if limit is None else min(limit, len(block))
        self._observe_rank(n)
        scores = block.score(query, limit=n)
        scored = [
            (item, float(score)) for item, score in zip(block.items[:n], scores)
        ]
        return sorted(scored, key=lambda pair: (-pair[1], pair[0].item_id))

    # agora: shard-safe
    def rank_topk(
        self,
        query: InformationItem,
        candidates: Sequence[InformationItem],
        k: int,
        score_floor: float = 0.0,
    ) -> List[Tuple[InformationItem, float]]:
        """Top-``k`` of :meth:`rank` without scoring hopeless candidates.

        Returns exactly ``rank(query, candidates)[:k]`` (ids, order and
        floats), minus entries under ``score_floor`` when one is given.
        """
        ranked, __ = self.rank_block_topk(
            query, self.prepare(candidates), k, score_floor=score_floor
        )
        return ranked

    # agora: shard-safe
    def rank_block_topk(
        self,
        query: InformationItem,
        block: CandidateBlock,
        k: int,
        limit: Optional[int] = None,
        score_floor: float = 0.0,
    ) -> Tuple[List[Tuple[InformationItem, float]], PruneStats]:
        """Exactness-preserving pruned top-k over a prepared block.

        Candidate chunks whose padded score ceiling falls strictly below
        the running cutoff — the k-th best score seen so far, or the
        pushed-down ``score_floor`` — are skipped outright; survivors are
        scored by the same einsum kernels as :meth:`rank_block`.  The
        result is bitwise identical to
        ``rank_block(query, block, limit)[:k]`` with sub-floor entries
        removed (the plan's ``Threshold`` would drop them anyway).

        Chunks are visited in descending-ceiling order so the cutoff
        tightens as early as possible; visit order cannot affect any
        returned float because survivors' scores are exact.
        """
        if k < 0:
            raise ValueError("k must be non-negative")
        n = len(block) if limit is None else min(limit, len(block))
        self._observe_rank(max(n, 0))
        stats = PruneStats(candidates_total=max(n, 0))
        if n <= 0 or k == 0:
            self._observe_prune(stats)
            return [], stats
        bounds = block.bounds()
        state = bounds.query_state(query)
        stats.prunable = state is not None
        ranges = bounds.chunk_ranges(n)
        stats.chunks_total = len(ranges)
        ceilings = [chunk.ceiling(state) for __, __, chunk in ranges]
        order = sorted(range(len(ranges)), key=lambda c: (-ceilings[c], c))
        heap: List[float] = []  # min-heap of the k best scores so far
        scored: List[Tuple[int, float]] = []
        for index in order:
            ceiling = ceilings[index]
            if (score_floor > 0.0 and ceiling < score_floor) or (
                len(heap) == k and ceiling < heap[0]
            ):
                stats.chunks_skipped += 1
                continue
            start, stop, __ = ranges[index]
            row = block.score_range(query, start, stop)
            for offset, value in enumerate(row):
                score = float(value)
                scored.append((start + offset, score))
                if len(heap) < k:
                    heapq.heappush(heap, score)
                elif score > heap[0]:
                    heapq.heapreplace(heap, score)
        stats.candidates_scored = len(scored)
        pairs = [(block.items[p], s) for p, s in scored]
        pairs.sort(key=lambda pair: (-pair[1], pair[0].item_id))
        top = pairs[:k]
        if score_floor > 0.0:
            top = [(item, s) for item, s in top if s >= score_floor]
        self._observe_prune(stats)
        return top, stats

    # agora: shard-safe
    def rank_pairwise(
        self, query: InformationItem, candidates: Sequence[InformationItem]
    ) -> List[Tuple[InformationItem, float]]:
        """Reference ranking via one ``score`` call per candidate.

        Kept as the ground truth the batch path is property-tested
        against (and as a micro-benchmark baseline).
        """
        scored = [(item, self.score(query, item)) for item in candidates]
        return sorted(scored, key=lambda pair: (-pair[1], pair[0].item_id))

    # agora: worker-local per-worker metrics registry, merged after the run
    def observe_domain_skip(self, n_candidates: int) -> PruneStats:
        """Record a whole-domain ceiling skip (no chunk even inspected).

        Sources call this when their cached per-domain
        :class:`~repro.uncertainty.pruning.BoundStats` ceiling already
        proves no visible candidate can reach the pushed-down floor.
        """
        stats = PruneStats(
            candidates_total=n_candidates,
            candidates_scored=0,
            chunks_total=0,
            chunks_skipped=0,
            prunable=True,
            domain_skipped=True,
        )
        self._observe_prune(stats)
        if self._metrics is not None:
            self._metrics.counter("matching.prune.domain_skips").inc()
        return stats

    # agora: worker-local per-worker metrics registry, merged after the run
    def _observe_rank(self, batch_size: int) -> None:
        if self._metrics is not None:
            self._metrics.counter("matching.rank_calls").inc()
            self._metrics.histogram("matching.rank_batch_size").observe(
                float(batch_size)
            )

    # agora: worker-local per-worker metrics registry, merged after the run
    def _observe_prune(self, stats: PruneStats) -> None:
        """Mirror one pruned rank call's pruning ratios into metrics."""
        if self._metrics is None:
            return
        self._metrics.counter("matching.prune.calls").inc()
        if not stats.prunable:
            self._metrics.counter("matching.prune.fallback_calls").inc()
        self._metrics.counter("matching.prune.candidates_total").inc(
            float(stats.candidates_total)
        )
        self._metrics.counter("matching.prune.candidates_scored").inc(
            float(stats.candidates_scored)
        )
        self._metrics.counter("matching.prune.chunks_total").inc(
            float(stats.chunks_total)
        )
        self._metrics.counter("matching.prune.chunks_skipped").inc(
            float(stats.chunks_skipped)
        )
        self._metrics.histogram(
            "matching.prune.scored_fraction", buckets=PRUNE_FRACTION_BUCKETS
        ).observe(stats.scored_fraction)


def build_matching_engine(
    vocabulary: Vocabulary,
    extractor: FeatureExtractor,
    feature_set: str = "content_metadata",
    lifter_sample: Optional[Sequence[MediaObject]] = None,
    metrics: Optional["MetricsRegistry"] = None,
) -> MatchingEngine:
    """Convenience constructor wiring the standard matchers together."""
    lifter = ConceptLifter(vocabulary, extractor, feature_set=feature_set)
    if lifter_sample:
        lifter.fit(lifter_sample)
    return MatchingEngine(
        text_matcher=TextMatcher(),
        media_matcher=MediaMatcher(extractor, feature_set),
        cross_matcher=CrossTypeMatcher(lifter),
        metrics=metrics,
    )
