"""Ablations of the design decisions called out in DESIGN.md §2.

A1  calibrated probabilities vs raw scores for confidence filtering;
A2  multi-issue negotiation vs price-only haggling;
A3  Pareto-front search vs single weighted-sum scalarization;
A4  affinity-weighted vs uniform social fusion;
A5  risk-aware plan choice vs risk-blind (per risk attitude);
A6  shared MQO execution vs independent execution;
A7  trust-discounted candidate beliefs vs taking advertisements at face
    value (repeat business with an overpromising source);
A8  adaptive re-execution on source declines vs static plans (§2's
    "dynamic query optimization").
"""

import numpy as np
import pytest

from repro.experiments import ExperimentResult, summarize

SEED = 73


# ----------------------------------------------------------------------
# A1: calibration ablation
# ----------------------------------------------------------------------
def run_a1() -> ExperimentResult:
    from repro.data import (
        CorpusGenerator, DomainSpec, FeatureExtractor, TopicSpace, Vocabulary,
    )
    from repro.sim import RngStreams
    from repro.uncertainty import BinnedCalibrator
    from repro.uncertainty.matching import MediaMatcher

    streams = RngStreams(SEED).spawn("a1")
    space = TopicSpace(10)
    vocabulary = Vocabulary(space, streams.spawn("v"), vocabulary_size=400)
    corpus = CorpusGenerator(space, vocabulary, streams.spawn("c"),
                             feature_dimensions=32)
    extractor = FeatureExtractor(32, streams.spawn("f"))
    items = []
    for i in range(4):
        spec = DomainSpec(name=f"d{i}", topic_prior={space.names[i]: 1.0},
                          type_mix={"text": 0.0, "media": 1.0, "compound": 0.0},
                          concentration=0.4)
        items.extend(corpus.generate(spec, 50))
    matcher = MediaMatcher(extractor, "content_metadata")
    rng = np.random.default_rng(SEED)
    pairs = rng.integers(0, len(items), size=(2000, 2))
    scores = np.array([matcher.score(items[i], items[j]) for i, j in pairs])
    labels = np.array([
        int(space.relevance(items[i].latent, items[j].latent) >= 0.75)
        for i, j in pairs
    ])
    half = len(scores) // 2
    calibrator = BinnedCalibrator().fit(scores[:half], labels[:half])

    # Top-k retrieval framing: for query items, rank the pool, take the
    # top 10, and compare the *claimed* expected precision (mean of the
    # confidence values) against the actual precision.
    result = ExperimentResult(
        "A1", "Expected-precision estimates: calibrated vs raw confidences",
        ["confidence", "claimed_precision", "actual_precision", "gap"],
    )
    claimed_raw, claimed_cal, actual_list = [], [], []
    for query_item in items[:40]:
        ranked = sorted(
            (other for other in items if other.item_id != query_item.item_id),
            key=lambda other: -matcher.score(query_item, other),
        )[:10]
        raw = np.array([matcher.score(query_item, other) for other in ranked])
        calibrated = calibrator.predict_many(raw)
        actual = np.array([
            int(space.relevance(query_item.latent, other.latent) >= 0.75)
            for other in ranked
        ])
        claimed_raw.append(float(raw.mean()))
        claimed_cal.append(float(calibrated.mean()))
        actual_list.append(float(actual.mean()))
    actual_mean = float(np.mean(actual_list))
    for name, claims in [("raw scores", claimed_raw),
                         ("calibrated probabilities", claimed_cal)]:
        claimed = float(np.mean(claims))
        result.add_row(name, claimed, actual_mean, abs(claimed - actual_mean))
    result.add_note("calibrated confidences mean what they say; raw scores lie")
    return result


# ----------------------------------------------------------------------
# A2: multi-issue vs price-only negotiation
# ----------------------------------------------------------------------
def run_a2(encounters=60) -> ExperimentResult:
    from repro.negotiation import (
        AlternatingOffersProtocol, Issue, IssueSpace, NegotiationPreferences,
        Negotiator, buyer_utility, linear, seller_utility,
        standard_qos_issue_space,
    )

    rng = np.random.default_rng(SEED)
    protocol = AlternatingOffersProtocol(max_rounds=40)
    from repro.negotiation import Mediator
    from repro.sim import RngStreams

    result = ExperimentResult(
        "A2", "Multi-issue vs price-only negotiation",
        ["deal_space", "deal_rate", "integrative_potential",
         "negotiated_joint_utility", "mediated_joint_utility"],
    )
    spaces = {
        "multi-issue (price+QoS)": standard_qos_issue_space(max_price=10.0),
        "price-only": IssueSpace([Issue("price", 0.0, 10.0)]),
    }
    for label, space in sorted(spaces.items()):
        mediator = Mediator(space, RngStreams(SEED).spawn(f"a2-{label}"),
                            proposals=150)
        deals, joints, mediated, potentials = [], [], [], []
        for __ in range(encounters):
            buyer_weights = {n: float(rng.uniform(0.2, 3.0)) for n in space.names}
            seller_weights = {n: float(rng.uniform(0.2, 3.0)) for n in space.names}
            buyer_u = buyer_utility(space, buyer_weights)
            seller_u = seller_utility(space, seller_weights)
            buyer = Negotiator(
                "b", NegotiationPreferences(buyer_u, 0.25), linear(),
            )
            seller = Negotiator(
                "s", NegotiationPreferences(seller_u, 0.25), linear(),
            )
            # Integrative potential: for additive opposed utilities the max
            # joint utility is at a corner — each issue goes to whoever
            # weights it more.  Price-only is zero-sum (potential = 1).
            best_corner = {}
            for issue in space.issues:
                if buyer_u.weights[issue.name] >= seller_u.weights[issue.name]:
                    best_corner[issue.name] = buyer_u.ideal()[issue.name]
                else:
                    best_corner[issue.name] = seller_u.ideal()[issue.name]
            potentials.append(buyer_u(best_corner) + seller_u(best_corner))
            outcome = protocol.run(buyer, seller)
            deals.append(1.0 if outcome.agreed else 0.0)
            if outcome.agreed:
                joints.append(outcome.joint_utility)
                improved = mediator.improve(outcome.deal, buyer_u, seller_u)
                mediated.append(
                    buyer_u(improved.improved) + seller_u(improved.improved)
                )
        result.add_row(label, summarize(deals).mean,
                       summarize(potentials).mean, summarize(joints).mean,
                       summarize(mediated).mean)
    result.add_note(
        "multi-issue deal spaces have integrative potential > 1; bilateral "
        "bargaining lands on the zero-sum diagonal, and the post-settlement "
        "mediator recovers part of the surplus — price haggling has none"
    )
    return result


# ----------------------------------------------------------------------
# A3: Pareto front vs single scalarization
# ----------------------------------------------------------------------
def run_a3(trials=12) -> ExperimentResult:
    import importlib.util
    from pathlib import Path

    spec = importlib.util.spec_from_file_location(
        "bench_t5", Path(__file__).parent / "bench_t5_optimizer.py",
    )
    bench_t5 = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(bench_t5)

    from repro.optimizer import ExhaustiveSearch, make_evaluator, pareto_front
    from repro.qos import QoSWeights

    rng = np.random.default_rng(SEED)
    planning_weights = QoSWeights()  # what the system assumes at plan time
    evaluator = make_evaluator(planning_weights, price_sensitivity=0.02)
    regret_scalar, regret_front = [], []
    front_sizes = []
    for __ in range(trials):
        table = bench_t5._random_table(rng, n_jobs=3, n_sources=6)
        search = ExhaustiveSearch().search(table, evaluator)
        front = pareto_front(search.front)
        front_sizes.append(len(front))
        # The user's *true* weights differ from the planning assumption.
        true_weights = QoSWeights(
            response_time=float(rng.uniform(0.2, 3.0)),
            completeness=float(rng.uniform(0.2, 3.0)),
            freshness=float(rng.uniform(0.2, 3.0)),
            correctness=float(rng.uniform(0.2, 3.0)),
            trust=float(rng.uniform(0.2, 3.0)),
        )
        true_evaluator = make_evaluator(true_weights, price_sensitivity=0.02)
        true_utilities = {
            evaluation.plan.signature(): true_evaluator(evaluation.plan).utility
            for evaluation in search.front
        }
        best_true = max(true_utilities.values())
        # Scalarized choice: the single plan optimal under assumed weights.
        regret_scalar.append(
            best_true - true_utilities[search.best.plan.signature()]
        )
        # Front choice: the user picks their favourite from the Pareto menu.
        front_best = max(
            true_utilities[evaluation.plan.signature()] for evaluation in front
        )
        regret_front.append(best_true - front_best)
    result = ExperimentResult(
        "A3", "Pareto menu vs single scalarized plan (user weights unknown)",
        ["strategy", "mean_true_regret"],
    )
    result.add_row("single scalarized plan", summarize(regret_scalar).mean)
    result.add_row("choose from Pareto front", summarize(regret_front).mean)
    result.add_note(
        f"mean front size {np.mean(front_sizes):.1f}; offering the front "
        "lets users with unknown weights recover most of the regret"
    )
    return result


# ----------------------------------------------------------------------
# A4: affinity-weighted vs uniform social fusion
# ----------------------------------------------------------------------
def run_a4() -> ExperimentResult:
    from repro.data import TopicSpace
    from repro.personalization import PersonalizedRanker, UserProfile
    from repro.social import AffineNeighbour, SocialRanker
    from repro.uncertainty import UncertainMatch, UncertainResultSet
    from repro.data.items import InformationItem

    space = TopicSpace(6)
    rng = np.random.default_rng(SEED)
    me = UserProfile(user_id="me", interests=space.basis(space.names[0], 0.9))
    soulmate = UserProfile(user_id="soulmate",
                           interests=space.basis(space.names[0], 0.85))
    stranger = UserProfile(user_id="stranger",
                           interests=space.basis(space.names[4], 0.9))

    def ndcg_for(neighbours):
        ndcgs = []
        for trial in range(30):
            matches = []
            for index in range(10):
                latent = space.sample(rng, concentration=0.4)
                item = InformationItem(item_id=f"i{trial}-{index}",
                                       domain="d", latent=latent)
                matches.append(UncertainMatch(
                    item=item, score=0.5, probability=float(rng.uniform(0.3, 0.9)),
                ))
            results = UncertainResultSet(matches)
            personal = PersonalizedRanker(me, lambda item: item.latent, 0.5)
            ranker = SocialRanker(personal, neighbours, social_weight=0.5)
            ranked = ranker.rerank_items(results)
            gains = [space.relevance(me.interests, item.latent)
                     for item in ranked]
            discounts = 1.0 / np.log2(np.arange(2, len(gains) + 2))
            ideal = sorted(gains, reverse=True)
            denom = float(np.dot(ideal, discounts))
            ndcgs.append(float(np.dot(gains, discounts)) / denom if denom else 0.0)
        return float(np.mean(ndcgs))

    true_affinities = [
        AffineNeighbour("soulmate", 0.9, soulmate),
        AffineNeighbour("stranger", 0.1, stranger),
    ]
    uniform = [
        AffineNeighbour("soulmate", 0.5, soulmate),
        AffineNeighbour("stranger", 0.5, stranger),
    ]
    result = ExperimentResult(
        "A4", "Affinity-weighted vs uniform neighbour fusion",
        ["fusion_weighting", "ndcg_vs_own_taste"],
    )
    result.add_row("affinity-weighted", ndcg_for(true_affinities))
    result.add_row("uniform", ndcg_for(uniform))
    result.add_note("down-weighting low-affinity voices protects relevance")
    return result


# ----------------------------------------------------------------------
# A5: risk-aware vs risk-blind plan choice
# ----------------------------------------------------------------------
def run_a5(trials=300) -> ExperimentResult:
    from repro.uncertainty import risk_averse, risk_neutral

    rng = np.random.default_rng(SEED)
    result = ExperimentResult(
        "A5", "Risk-aware plan choice (averse user, risky vs safe plan)",
        ["chooser", "mean_utility", "p5_utility", "chose_safe_fraction"],
    )
    # Two plans: safe (utility .6 always) vs risky (.95 or .35, 50/50 —
    # higher expected value, much worse downside).
    safe_u, risky_hi, risky_lo = 0.6, 0.95, 0.35
    for label, profile in [("risk-blind (expected value)", risk_neutral()),
                           ("risk-aware (CARA averse)", risk_averse(5.0))]:
        realised, chose_safe = [], 0
        for __ in range(trials):
            safe_value = profile.certainty_equivalent([safe_u], [1.0])
            risky_value = profile.certainty_equivalent(
                [risky_hi, risky_lo], [0.5, 0.5],
            )
            if safe_value >= risky_value:
                chose_safe += 1
                realised.append(safe_u)
            else:
                realised.append(risky_hi if rng.random() < 0.5 else risky_lo)
        realised = np.asarray(realised)
        result.add_row(label, float(realised.mean()),
                       float(np.percentile(realised, 5)), chose_safe / trials)
    result.add_note(
        "the averse chooser gives up a little mean for a far better worst case"
    )
    return result


# ----------------------------------------------------------------------
# A6: MQO sharing vs independent execution
# ----------------------------------------------------------------------
def run_a6() -> ExperimentResult:
    from repro import Consumer, UserProfile, build_agora
    from repro.collaboration import SharedJobExecutor
    from repro.query import ExecutionContext
    from repro.workloads import QueryWorkloadGenerator

    agora = build_agora(seed=SEED, n_sources=8, items_per_source=20,
                        calibration_pairs=150)
    workload = QueryWorkloadGenerator(
        agora.topic_space, agora.vocabulary, agora.sim.rng.spawn("a6"),
    )
    goal = workload.topic_query("regional-history", k=10)
    plans, queries = {}, {}
    for index in range(4):
        profile = UserProfile(
            user_id=f"m{index}",
            interests=agora.topic_space.basis("regional-history", 0.8),
        )
        consumer = Consumer(agora, profile, planner="greedy")
        plan, __, __u = consumer.plan_query(goal)
        plans[f"m{index}"] = plan
        queries[f"m{index}"] = goal
    context = ExecutionContext(registry=agora.registry, oracle=agora.oracle,
                               consumer_id="group")
    shared = SharedJobExecutor(context).execute(plans, queries)
    report = shared.report
    result = ExperimentResult(
        "A6", "Shared MQO execution vs independent execution",
        ["mode", "source_evaluations"],
    )
    result.add_row("independent", report.total_jobs)
    result.add_row("shared (MQO)", report.distinct_jobs)
    result.add_note(
        f"savings ratio {report.savings_ratio:.0%} on a 4-member common goal"
    )
    return result


# ----------------------------------------------------------------------
# A7: trust-discounted beliefs vs face-value advertisements
# ----------------------------------------------------------------------
def run_a7(interactions=15) -> ExperimentResult:
    from repro.optimizer import discount_by_trust
    from repro.qos import QoSVector, QoSWeights, scalarize
    from repro.trust import ReputationSystem

    weights = QoSWeights()
    # Two sources: an honest one and a chronic overpromiser.
    honest_truth = QoSVector(response_time=1.0, completeness=0.7,
                             correctness=0.9, freshness=0.8, trust=1.0)
    liar_truth = QoSVector(response_time=1.5, completeness=0.35,
                           correctness=0.55, freshness=0.5, trust=1.0)
    ads = {
        "honest": honest_truth,
        "liar": QoSVector(response_time=0.8, completeness=0.9,
                          correctness=0.95, freshness=0.9, trust=1.0),
    }
    truths = {"honest": honest_truth, "liar": liar_truth}

    def run_policy(use_reputation):
        reputation = ReputationSystem(decay=0.9)
        utilities = []
        for __ in range(interactions):
            beliefs = {}
            for name, advertised in ads.items():
                trust = reputation.score(name) if use_reputation else 1.0
                beliefs[name] = scalarize(
                    discount_by_trust(advertised, trust), weights,
                )
            chosen = max(sorted(beliefs), key=lambda name: beliefs[name])
            delivered = truths[chosen]
            utilities.append(scalarize(delivered, weights))
            # Compliance signal: how close delivery came to the claim.
            claim = ads[chosen]
            gap = max(0.0, claim.completeness - delivered.completeness) + max(
                0.0, claim.correctness - delivered.correctness,
            )
            reputation.observe(chosen, float(np.clip(1.0 - 2.0 * gap, 0, 1)))
        return utilities

    result = ExperimentResult(
        "A7", "Trust-discounted beliefs vs face-value advertisements",
        ["belief_policy", "utility_first_5", "utility_last_5"],
    )
    for label, use_reputation in [("face value", False),
                                  ("trust-discounted", True)]:
        utilities = run_policy(use_reputation)
        result.add_row(label, float(np.mean(utilities[:5])),
                       float(np.mean(utilities[-5:])))
    result.add_note(
        "reputation lets the consumer escape the overpromiser after a few burns"
    )
    return result


# ----------------------------------------------------------------------
# A8: adaptive re-execution vs static plans under unavailability
# ----------------------------------------------------------------------
def run_a8(queries=10, down_fraction=0.5) -> ExperimentResult:
    from repro import Consumer, UserProfile, build_agora
    from repro.query import (
        AdaptiveExecutor, ExecutionContext, QueryExecutor,
        fallbacks_from_registry,
    )
    from repro.workloads import QueryWorkloadGenerator

    agora = build_agora(seed=SEED, n_sources=10, items_per_source=20,
                        calibration_pairs=150)
    workload = QueryWorkloadGenerator(
        agora.topic_space, agora.vocabulary, agora.sim.rng.spawn("a8"),
    )
    profile = UserProfile(
        user_id="u", interests=agora.topic_space.basis("folk-jewelry", 0.9),
    )
    consumer = Consumer(agora, profile, planner="greedy")
    rng = np.random.default_rng(SEED)
    context = ExecutionContext(
        registry=agora.registry, oracle=agora.oracle,
        calibrator=agora.calibrator if agora.calibrator.is_fitted else None,
        consumer_id="u",
    )
    adaptive = AdaptiveExecutor(
        context, fallbacks_from_registry(agora.registry), max_attempts=4,
    )
    static_sizes, adaptive_sizes, recoveries = [], [], 0
    for index in range(queries):
        topic = agora.topic_space.names[index % 5]
        query = workload.topic_query(topic, k=8)
        plan, __, __u = consumer.plan_query(query)
        # Half the planned sources go dark between planning and execution.
        darkened = []
        for leaf in plan.leaves():
            if rng.random() < down_fraction:
                node = agora.registry.source(leaf.source_id).node_id
                agora.health.set_state(node, False)
                darkened.append(node)
        static = QueryExecutor(context).execute(plan, query)
        static_sizes.append(static.delivered.completeness)
        result = adaptive.execute(plan, query)
        adaptive_sizes.append(result.final.delivered.completeness)
        if result.recovered:
            recoveries += 1
        for node in darkened:
            agora.health.set_state(node, True)
    result = ExperimentResult(
        "A8", "Adaptive re-execution vs static plans (50% planned sources dark)",
        ["executor", "mean_completeness", "recovery_rate"],
    )
    result.add_row("static plan", summarize(static_sizes).mean, "-")
    result.add_row("adaptive re-execution", summarize(adaptive_sizes).mean,
                   recoveries / queries)
    result.add_note(
        "dynamic re-optimization (§2) recovers results a static plan loses"
    )
    return result


ALL_ABLATIONS = [run_a1, run_a2, run_a3, run_a4, run_a5, run_a6, run_a7, run_a8]


@pytest.mark.benchmark(group="ablations")
def test_ablations(benchmark):
    def run_all():
        return [fn() for fn in ALL_ABLATIONS]

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    for result in results:
        result.print()
    by_id = {result.experiment_id: result for result in results}
    # A1: calibration closes the claimed/actual gap.
    a1 = {row[0]: row for row in by_id["A1"].rows}
    assert a1["calibrated probabilities"][3] < a1["raw scores"][3]
    # A2: multi-issue bargaining has (and mediation captures) surplus.
    a2 = {row[0]: row for row in by_id["A2"].rows}
    assert a2["multi-issue (price+QoS)"][2] > a2["price-only"][2]
    assert a2["price-only"][2] == pytest.approx(1.0)
    assert (a2["multi-issue (price+QoS)"][4]
            > a2["multi-issue (price+QoS)"][3])
    # A3: the Pareto menu reduces true regret.
    a3 = {row[0]: row for row in by_id["A3"].rows}
    assert (a3["choose from Pareto front"][1]
            <= a3["single scalarized plan"][1] + 1e-9)
    # A4: affinity weighting protects relevance.
    a4 = {row[0]: row for row in by_id["A4"].rows}
    assert a4["affinity-weighted"][1] >= a4["uniform"][1]
    # A5: the risk-aware chooser has a better worst case.
    a5 = {row[0]: row for row in by_id["A5"].rows}
    assert (a5["risk-aware (CARA averse)"][2]
            > a5["risk-blind (expected value)"][2])
    # A6: sharing strictly reduces evaluations.
    a6 = {row[0]: row for row in by_id["A6"].rows}
    assert a6["shared (MQO)"][1] < a6["independent"][1]
    # A7: reputation recovers utility over time.
    a7 = {row[0]: row for row in by_id["A7"].rows}
    assert a7["trust-discounted"][2] >= a7["face value"][2]
    # A8: adaptation returns more results under unavailability.
    a8 = {row[0]: row for row in by_id["A8"].rows}
    assert a8["adaptive re-execution"][1] > a8["static plan"][1]


if __name__ == "__main__":
    for fn in ALL_ABLATIONS:
        fn().print()
