"""Tests for the contract monitor."""

import pytest

from repro.qos import ContractMonitor, QoSRequirement, QoSVector, SLAContract


def _contract(provider="p1", consumer="c1"):
    return SLAContract(
        provider_id=provider,
        consumer_id=consumer,
        requirement=QoSRequirement(min_completeness=0.8),
        base_price=10.0,
        premium=1.0,
        compensation=20.0,
    )


class TestMonitor:
    def test_settle_records_ledger(self):
        monitor = ContractMonitor()
        monitor.settle(_contract(), QoSVector(completeness=0.9))
        ledger = monitor.ledger("p1")
        assert ledger.contracts == 1
        assert ledger.breaches == 0
        assert ledger.revenue == pytest.approx(11.0)

    def test_breach_recorded(self):
        monitor = ContractMonitor()
        monitor.settle(_contract(), QoSVector(completeness=0.5))
        ledger = monitor.ledger("p1")
        assert ledger.breaches == 1
        assert ledger.breach_rate == 1.0
        assert ledger.revenue == pytest.approx(11.0 - 20.0)
        assert ledger.compensation_paid == 20.0

    def test_overall_breach_rate(self):
        monitor = ContractMonitor()
        monitor.settle(_contract(), QoSVector(completeness=0.9))
        monitor.settle(_contract(), QoSVector(completeness=0.5))
        assert monitor.overall_breach_rate == 0.5
        assert monitor.total_contracts == 2

    def test_compliance_listener_invoked(self):
        monitor = ContractMonitor()
        signals = []
        monitor.on_compliance(lambda provider, value: signals.append((provider, value)))
        monitor.settle(_contract(), QoSVector(completeness=0.9))
        assert signals == [("p1", 1.0)]

    def test_outcomes_filter_by_provider(self):
        monitor = ContractMonitor()
        monitor.settle(_contract(provider="a"), QoSVector())
        monitor.settle(_contract(provider="b"), QoSVector())
        assert len(monitor.outcomes("a")) == 1
        assert len(monitor.outcomes()) == 2

    def test_consumer_spend(self):
        monitor = ContractMonitor()
        monitor.settle(_contract(consumer="iris"), QoSVector(completeness=0.9))
        monitor.settle(_contract(consumer="iris"), QoSVector(completeness=0.5))
        # 11 (clean) + 11 - 20 (breached) = 2
        assert monitor.consumer_spend("iris") == pytest.approx(2.0)

    def test_cancellation_recorded(self):
        monitor = ContractMonitor()
        outcome = monitor.record_cancellation(_contract(), by_provider=True)
        assert outcome.breached
        assert monitor.ledger("p1").breaches == 1

    def test_empty_monitor(self):
        monitor = ContractMonitor()
        assert monitor.overall_breach_rate == 0.0
        assert monitor.ledger("nobody").contracts == 0
