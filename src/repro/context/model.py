"""Context model.

"Context is a rather complicated concept with several dimensions,
including time, location, general task performed, other people's presence,
and immediately preceding activity" (§8, citing Dey & Abowd).  We model
exactly those five dimensions as a flat record with discrete values —
enough structure to condition profiles on, simple enough to infer.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple

CONTEXT_DIMENSIONS = (
    "time_of_day",
    "location",
    "task",
    "companions",
    "previous_activity",
)

TIMES_OF_DAY = ("morning", "afternoon", "evening")
TASKS = ("project-start", "deep-research", "paper-writing", "leisure")
ACTIVITIES = ("query", "browse", "feed", "idle")


@dataclass(frozen=True)
class Context:
    """One snapshot of a user's situation.

    ``companions`` is a sorted tuple of user ids present (empty = alone).
    """

    time_of_day: str = "morning"
    location: str = "office"
    task: str = "deep-research"
    companions: Tuple[str, ...] = ()
    previous_activity: str = "idle"

    def __post_init__(self) -> None:
        if self.time_of_day not in TIMES_OF_DAY:
            raise ValueError(f"unknown time_of_day {self.time_of_day!r}")
        if self.task not in TASKS:
            raise ValueError(f"unknown task {self.task!r}")
        if self.previous_activity not in ACTIVITIES:
            raise ValueError(f"unknown previous_activity {self.previous_activity!r}")
        object.__setattr__(self, "companions", tuple(sorted(self.companions)))

    # ------------------------------------------------------------------
    @property
    def alone(self) -> bool:
        """Whether no companions are present."""
        return not self.companions

    def value(self, dimension: str) -> object:
        """The value of one context dimension."""
        if dimension not in CONTEXT_DIMENSIONS:
            raise KeyError(f"unknown context dimension {dimension!r}")
        return getattr(self, dimension)

    def with_(self, **changes) -> "Context":
        """A copy with the given dimensions replaced."""
        return replace(self, **changes)

    def as_dict(self) -> Dict[str, object]:
        """All dimensions as a plain dictionary."""
        return {dim: self.value(dim) for dim in CONTEXT_DIMENSIONS}


def context_similarity(a: Context, b: Context) -> float:
    """Fraction of matching dimensions (companions match on overlap)."""
    matches = 0.0
    for dimension in CONTEXT_DIMENSIONS:
        va, vb = a.value(dimension), b.value(dimension)
        if dimension == "companions":
            set_a, set_b = set(va), set(vb)
            if not set_a and not set_b:
                matches += 1.0
            elif set_a or set_b:
                union = set_a | set_b
                matches += len(set_a & set_b) / len(union) if union else 1.0
        elif va == vb:
            matches += 1.0
    return matches / len(CONTEXT_DIMENSIONS)
