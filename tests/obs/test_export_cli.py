"""Tests for the JSONL exporters and the ``python -m repro.obs`` CLI."""

from repro.obs import (
    MetricsRegistry,
    RunManifest,
    SpanTracer,
    export_run,
    load_manifest,
    load_metrics_jsonl,
    load_spans_jsonl,
    write_manifest,
    write_metrics_jsonl,
    write_spans_jsonl,
)
from repro.obs.cli import main, render_span_tree


def make_tracer():
    tracer = SpanTracer()
    with tracer.span("query", user="iris") as root:
        with tracer.span("retrieve", source="m1"):
            pass
        root.annotate(outcome="served")
    return tracer


def make_registry():
    registry = MetricsRegistry()
    registry.counter("sim.events").inc(4)
    registry.histogram("query.latency").observe(0.25)
    return registry


def make_manifest(registry, tracer, seed=11):
    return RunManifest(
        seed=seed,
        config_digest=f"cfg-{seed}",
        event_count=4,
        span_count=tracer.span_count,
        metrics=registry.snapshot(),
        labels={"scenario": "unit"},
    )


class TestExporters:
    def test_span_round_trip(self, tmp_path):
        tracer = make_tracer()
        path = tmp_path / "spans.jsonl"
        assert write_spans_jsonl(tracer.spans(), path) == 2
        assert load_spans_jsonl(path) == tracer.spans()

    def test_metrics_round_trip(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        assert write_metrics_jsonl(make_registry(), path) == 2
        rows = load_metrics_jsonl(path)
        assert rows[0] == {"kind": "counter", "name": "sim.events", "value": 4.0}
        assert rows[1]["kind"] == "histogram"
        assert rows[1]["summary"]["count"] == 1.0

    def test_manifest_round_trip(self, tmp_path):
        registry, tracer = make_registry(), make_tracer()
        manifest = make_manifest(registry, tracer)
        path = tmp_path / "manifest.json"
        write_manifest(manifest, path)
        assert load_manifest(path) == manifest

    def test_export_run_writes_full_artifact_set(self, tmp_path):
        registry, tracer = make_registry(), make_tracer()
        written = export_run(
            tmp_path / "run", make_manifest(registry, tracer),
            registry=registry, tracer=tracer,
        )
        assert sorted(written) == ["manifest", "metrics", "spans"]
        assert (tmp_path / "run" / "manifest.json").exists()
        assert (tmp_path / "run" / "metrics.jsonl").exists()
        assert (tmp_path / "run" / "spans.jsonl").exists()

    def test_same_inputs_export_byte_identical(self, tmp_path):
        for name in ("a", "b"):
            registry, tracer = make_registry(), make_tracer()
            export_run(tmp_path / name, make_manifest(registry, tracer),
                       registry=registry, tracer=tracer)
        for artifact in ("manifest.json", "metrics.jsonl", "spans.jsonl"):
            left = (tmp_path / "a" / artifact).read_bytes()
            right = (tmp_path / "b" / artifact).read_bytes()
            assert left == right, artifact


class TestSpanTreeRendering:
    def test_tree_is_indented_and_annotated(self):
        text = render_span_tree(make_tracer().spans())
        lines = text.splitlines()
        assert lines[0].startswith("#0 query")
        assert "{'user'" not in lines[0]  # attrs render as key=value
        assert "user='iris'" in lines[0]
        assert lines[1].startswith("  #1 retrieve")

    def test_limit_reports_remainder(self):
        text = render_span_tree(make_tracer().spans(), limit=1)
        assert text.splitlines()[-1] == "… (1 more spans)"


class TestCli:
    def _export(self, tmp_path, name, seed):
        registry, tracer = make_registry(), make_tracer()
        return export_run(
            tmp_path / name, make_manifest(registry, tracer, seed=seed),
            registry=registry, tracer=tracer,
        )

    def test_summary_prints_provenance(self, tmp_path, capsys):
        written = self._export(tmp_path, "run", seed=11)
        assert main(["summary", written["manifest"]]) == 0
        out = capsys.readouterr().out
        assert "seed:           11" in out
        assert "sim.events = 4" in out
        assert "query.latency" in out

    def test_spans_renders_tree(self, tmp_path, capsys):
        written = self._export(tmp_path, "run", seed=11)
        assert main(["spans", written["spans"]]) == 0
        assert "#0 query" in capsys.readouterr().out

    def test_diff_clean_exits_zero(self, tmp_path, capsys):
        left = self._export(tmp_path, "a", seed=11)
        right = self._export(tmp_path, "b", seed=11)
        assert main(["diff", left["manifest"], right["manifest"]]) == 0
        assert "zero drift" in capsys.readouterr().out

    def test_diff_drift_exits_one(self, tmp_path, capsys):
        left = self._export(tmp_path, "a", seed=11)
        right = self._export(tmp_path, "b", seed=12)
        assert main(["diff", left["manifest"], right["manifest"]]) == 1
        out = capsys.readouterr().out
        assert "drifted field(s)" in out
        assert "seed" in out


class TestCliExitCodes:
    """Usage errors and bad artifact files exit 2, never a traceback."""

    def test_unknown_subcommand_exits_two(self, capsys):
        assert main(["frobnicate"]) == 2
        capsys.readouterr()

    def test_no_arguments_exits_two(self, capsys):
        assert main([]) == 2
        capsys.readouterr()

    def test_missing_file_exits_two_with_stderr_message(self, capsys):
        assert main(["summary", "/nonexistent/manifest.json"]) == 2
        captured = capsys.readouterr()
        assert "error:" in captured.err
        assert "Traceback" not in captured.err

    def test_invalid_json_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "manifest.json"
        bad.write_text("{not json")
        assert main(["summary", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_wrong_schema_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "manifest.json"
        bad.write_text('{"unexpected": true}')
        assert main(["summary", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_malformed_folded_file_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "profile.folded"
        bad.write_text("stack notanumber\n")
        assert main(["flame", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err


class TestCliShardAndProfileCommands:
    def make_merged_manifest(self, tmp_path):
        from repro.obs import (
            MetricsRegistry as Registry,
            TraceContext,
            merge_snapshots,
            merged_manifest,
            snapshot_shard,
        )
        from repro.obs.export import write_manifest

        snapshots = []
        for shard_id in (0, 1):
            registry = Registry()
            registry.counter("ops").inc(5 + shard_id)
            tracer = SpanTracer()
            tracer.attach(TraceContext(trace_id="t", shard_id=shard_id))
            with tracer.span("shard"):
                pass
            snapshots.append(
                snapshot_shard(shard_id, registry, tracer=tracer,
                               sim_time=10.0 + shard_id, event_count=4)
            )
        manifest = merged_manifest(
            snapshots, seed=11, config_digest="cfg",
            merged=merge_snapshots(snapshots),
        )
        path = tmp_path / "manifest.json"
        write_manifest(manifest, path)
        return path

    def test_summary_by_shard_lists_sections(self, tmp_path, capsys):
        path = self.make_merged_manifest(tmp_path)
        assert main(["summary", str(path), "--by-shard"]) == 0
        out = capsys.readouterr().out
        assert "shards (2):" in out
        assert "shard 0:" in out
        assert "shard 1: sim_time=11" in out

    def test_summary_by_shard_on_single_process_manifest(self, tmp_path, capsys):
        registry, tracer = make_registry(), make_tracer()
        written = export_run(
            tmp_path / "run", make_manifest(registry, tracer),
            registry=registry, tracer=tracer,
        )
        assert main(["summary", written["manifest"], "--by-shard"]) == 0
        assert "single-process run" in capsys.readouterr().out

    def test_flame_renders_ranked_table(self, tmp_path, capsys):
        folded = tmp_path / "profile.folded"
        folded.write_text("root 100\nroot;child 900\n")
        assert main(["flame", str(folded), "--top", "5"]) == 0
        out = capsys.readouterr().out
        lines = out.splitlines()
        assert "stack" in lines[0]
        assert "root;child" in lines[1]  # biggest first
        assert "90.0%" in lines[1]

    def test_slo_renders_report(self, tmp_path, capsys):
        from repro.obs import MetricsRegistry as Registry
        from repro.obs import SLOMonitor, SLOSpec, write_slo_report

        registry = Registry()
        registry.counter("ops").inc(100)
        registry.counter("errors").inc(50)
        monitor = SLOMonitor(registry, [SLOSpec(
            name="success", kind="error_budget", objective=0.9,
            bad="errors", total="ops",
        )])
        monitor.sample(5.0)
        path = tmp_path / "slo.json"
        write_slo_report(monitor.evaluate(), path)

        assert main(["slo", str(path)]) == 0
        out = capsys.readouterr().out
        assert "critical" in out
        # Observe-only by default; --strict turns a breach into exit 1.
        assert main(["slo", str(path), "--strict"]) == 1
        assert "critical burn" in capsys.readouterr().err


class TestDivergenceCli:
    def _record_run(self, tmp_path, name, script):
        from repro.obs.flight import FlightRecorder

        flight_dir = tmp_path / name / "flight"
        flight_dir.mkdir(parents=True)
        recorder = FlightRecorder()
        for event in script:
            recorder.record(*event)
        recorder.finalize(flight_dir)
        return tmp_path / name

    def _script(self, n, mutate_at=None):
        script = [(i, float(i), "tick", "demo:proc", None) for i in range(n)]
        if mutate_at is not None:
            seq, time, __, callback, span = script[mutate_at]
            script[mutate_at] = (seq, time, "MUTANT", callback, span)
        return script

    def test_identical_runs_exit_zero(self, tmp_path, capsys):
        a = self._record_run(tmp_path, "a", self._script(6))
        b = self._record_run(tmp_path, "b", self._script(6))
        assert main(["divergence", str(a), str(b)]) == 0
        assert "bitwise-identical" in capsys.readouterr().out

    def test_diverged_runs_exit_one(self, tmp_path, capsys):
        a = self._record_run(tmp_path, "a", self._script(6))
        b = self._record_run(tmp_path, "b", self._script(6, mutate_at=3))
        assert main(["divergence", str(a), str(b)]) == 1
        out = capsys.readouterr().out
        assert "DIVERGED" in out
        assert "kind=MUTANT" in out

    def test_json_output_is_canonical(self, tmp_path, capsys):
        import json

        a = self._record_run(tmp_path, "a", self._script(4))
        b = self._record_run(tmp_path, "b", self._script(4))
        assert main(["divergence", str(a), str(b), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["identical"] is True

    def test_missing_recording_exits_two(self, tmp_path, capsys):
        a = self._record_run(tmp_path, "a", self._script(4))
        assert main(["divergence", str(a), str(tmp_path / "nope")]) == 2
        captured = capsys.readouterr()
        assert "error:" in captured.err
        assert "Traceback" not in captured.err

    def test_corrupt_recording_exits_two(self, tmp_path, capsys):
        a = self._record_run(tmp_path, "a", self._script(4))
        b = self._record_run(tmp_path, "b", self._script(4))
        chunk = b / "flight" / "chunk-000000.jsonl"
        chunk.write_text(chunk.read_text().replace('"tick"', '"tock"'))
        assert main(["divergence", str(a), str(b)]) == 2
        assert "digest mismatch" in capsys.readouterr().err


class TestDiffFlightHint:
    def _export_with_flight(self, tmp_path, name, seed):
        from repro.obs.flight import FlightRecorder

        registry, tracer = make_registry(), make_tracer()
        recorder = FlightRecorder()
        recorder.record(0, 1.0, "tick", "demo:proc", None)
        manifest = make_manifest(registry, tracer, seed=seed)
        manifest.flight = recorder.manifest_section()
        return export_run(
            tmp_path / name, manifest, registry=registry, tracer=tracer,
        )

    def test_drifted_diff_mentions_divergence_command(self, tmp_path, capsys):
        left = self._export_with_flight(tmp_path, "a", seed=11)
        right = self._export_with_flight(tmp_path, "b", seed=12)
        assert main(["diff", left["manifest"], right["manifest"]]) == 1
        assert "repro.obs divergence" in capsys.readouterr().out

    def test_clean_diff_has_no_hint(self, tmp_path, capsys):
        left = self._export_with_flight(tmp_path, "a", seed=11)
        right = self._export_with_flight(tmp_path, "b", seed=11)
        assert main(["diff", left["manifest"], right["manifest"]]) == 0
        assert "divergence" not in capsys.readouterr().out

    def test_no_hint_without_flight_sections(self, tmp_path, capsys):
        registry, tracer = make_registry(), make_tracer()
        paths = {}
        for name, seed in (("a", 11), ("b", 12)):
            paths[name] = export_run(
                tmp_path / name, make_manifest(registry, tracer, seed=seed),
                registry=registry, tracer=tracer,
            )
        assert main(["diff", paths["a"]["manifest"], paths["b"]["manifest"]]) == 1
        assert "divergence" not in capsys.readouterr().out
