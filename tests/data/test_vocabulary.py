"""Tests for the topic-conditioned vocabulary."""

import numpy as np
import pytest

from repro.data import TopicSpace, Vocabulary
from repro.sim import RngStreams


@pytest.fixture
def space():
    return TopicSpace(5)


@pytest.fixture
def vocab(space):
    return Vocabulary(
        space, RngStreams(11).spawn("v"), vocabulary_size=300, terms_per_topic=50
    )


class TestConstruction:
    def test_vocab_smaller_than_topic_terms_rejected(self, space):
        with pytest.raises(ValueError):
            Vocabulary(space, RngStreams(1).spawn("v"), vocabulary_size=10, terms_per_topic=50)

    def test_term_names(self, vocab):
        assert vocab.terms[0] == "w00000"
        assert len(vocab.terms) == 300


class TestSampling:
    def test_sample_respects_length(self, vocab, space):
        rng = np.random.default_rng(0)
        latent = space.basis(space.names[0])
        bag = vocab.sample_terms(latent, rng, length=80)
        assert sum(bag.values()) == 80

    def test_same_topic_docs_share_more_terms(self, vocab, space):
        rng = np.random.default_rng(0)
        latent_a = space.basis(space.names[0], weight=0.95)
        latent_b = space.basis(space.names[1], weight=0.95)

        def overlap(bag1, bag2):
            return len(set(bag1) & set(bag2))

        same, different = [], []
        for __ in range(20):
            d1 = vocab.sample_terms(latent_a, rng, length=100)
            d2 = vocab.sample_terms(latent_a, rng, length=100)
            d3 = vocab.sample_terms(latent_b, rng, length=100)
            same.append(overlap(d1, d2))
            different.append(overlap(d1, d3))
        assert np.mean(same) > np.mean(different)


class TestVectors:
    def test_term_vector_roundtrip(self, vocab):
        vector = vocab.term_vector({"w00003": 2, "w00007": 1})
        assert vector[3] == 2
        assert vector[7] == 1
        assert vector.sum() == 3

    def test_term_vector_ignores_unknown(self, vocab):
        vector = vocab.term_vector({"nonsense": 5, "w99999": 2})
        assert vector.sum() == 0


class TestPosterior:
    def test_posterior_sums_to_one(self, vocab, space):
        rng = np.random.default_rng(0)
        bag = vocab.sample_terms(space.basis(space.names[2]), rng, length=100)
        posterior = vocab.topic_posterior(bag)
        assert posterior.sum() == pytest.approx(1.0)

    def test_posterior_recovers_dominant_topic(self, vocab, space):
        rng = np.random.default_rng(0)
        hits = 0
        for __ in range(10):
            bag = vocab.sample_terms(space.basis(space.names[3], weight=0.95), rng, length=150)
            posterior = vocab.topic_posterior(bag)
            if int(np.argmax(posterior)) == 3:
                hits += 1
        assert hits >= 8
