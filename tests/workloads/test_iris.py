"""Tests for the Iris scenario assembly."""

import pytest

from repro import build_agora
from repro.workloads import build_iris_scenario


@pytest.fixture(scope="module")
def scenario():
    agora = build_agora(seed=31, n_sources=5, items_per_source=20,
                        calibration_pairs=200)
    return build_iris_scenario(agora)


class TestScenario:
    def test_profiles_match_paper(self, scenario):
        iris = scenario.iris.active_profile()
        jason = scenario.jason.active_profile()
        space = scenario.agora.topic_space
        assert space.peak_topic(iris.interests) == "folk-jewelry"
        assert space.peak_topic(jason.interests) == "dance-forms"
        assert iris.risk.name == "averse"
        assert jason.negotiation_style == "conceder"

    def test_friendship_wired(self, scenario):
        assert scenario.social_graph.are_friends("iris", "jason")

    def test_profiles_stored(self, scenario):
        assert "iris" in scenario.profile_store
        assert "jason" in scenario.profile_store

    def test_privacy_defaults(self, scenario):
        assert scenario.privacy.can_see("jason", "iris", "interests")
        assert not scenario.privacy.can_see("jason", "iris", "history")

    def test_personal_base(self, scenario):
        items = scenario.agora.sources[
            sorted(scenario.agora.sources)[0]
        ].visible_items(now=0.0)
        scenario.save_to_base("iris", items[0])
        assert scenario.base_of("iris") == [items[0]]
        assert scenario.base_of("jason") == []

    def test_iris_can_shop(self, scenario):
        query = scenario.workload.topic_query("folk-jewelry", k=5, issuer_id="iris")
        result = scenario.iris.ask(query)
        assert len(result.ranked_items) > 0

    def test_annotation_triggers_comparison(self, scenario):
        items = scenario.base_of("iris") or scenario.agora.sources[
            sorted(scenario.agora.sources)[0]
        ].visible_items(now=0.0)
        record = scenario.annotations.annotate("iris", items[0], text="note")
        assert record.standing_id is not None
