"""The library must satisfy its own determinism contract.

This is the acceptance gate the CI job enforces: ``src/repro``,
``benchmarks`` and ``examples`` lint clean under every AGR rule
(including AGR000 unused-suppression findings), and the sim kernel does
it without a single inline suppression — the kernel IS the contract, it
doesn't get to opt out of it.
"""

from pathlib import Path

from repro.analysis import AnalysisEngine

ROOT = Path(__file__).resolve().parents[2]
SRC = ROOT / "src" / "repro"
SWEEP = [SRC, ROOT / "benchmarks", ROOT / "examples"]


def test_swept_trees_exist():
    for tree in SWEEP:
        assert tree.is_dir(), tree


def test_lint_sweep_has_zero_violations():
    report = AnalysisEngine().check_paths(SWEEP)
    assert report.parse_errors == []
    rendered = "\n".join(v.render() for v in report.violations)
    assert report.violations == [], f"the lint sweep must come back clean:\n{rendered}"


def test_sim_kernel_has_zero_suppressions():
    report = AnalysisEngine().check_paths([SRC / "sim"])
    assert report.suppressions == [], (
        "repro.sim and repro.sim.rng must satisfy the determinism contract "
        "without inline suppressions"
    )
