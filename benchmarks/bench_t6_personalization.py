"""T6 (§5 Personalization): personalized vs generic ranking; learning.

Regenerates the T6 tables.  A population of users with known ground-truth
interests issues queries; rankings are scored by NDCG against each user's
*personal* relevance (interest-weighted), comparing:

- generic: calibrated-probability order (no profile),
- personalized (true profile): the oracle upper bound,
- personalized (learned profile): profile learned online from simulated
  clicks — convergence is the second table.

Expected shape: true-profile > learned-profile > generic; the learned
profile's cosine to the truth rises with sessions.
"""

import numpy as np
import pytest

from repro import Consumer, build_agora
from repro.experiments import ExperimentResult, summarize, win_rate
from repro.personalization import PersonalizedRanker, ProfileLearner
from repro.workloads import ClickModel, QueryWorkloadGenerator, UserPopulationGenerator


def _personal_ndcg(agora, profile, query, items, k=10):
    """NDCG against interest-weighted personal relevance."""
    def gain(item):
        topical = agora.oracle.relevance(query, item)
        personal = agora.topic_space.relevance(profile.interests, item.latent)
        return 0.5 * topical + 0.5 * personal

    if not items:
        return 0.0
    gains = [gain(item) for item in items[:k]]
    discounts = 1.0 / np.log2(np.arange(2, len(gains) + 2))
    dcg = float(np.dot(gains, discounts))
    ideal = sorted((gain(item) for item in items), reverse=True)[:k]
    ideal_dcg = float(np.dot(ideal, 1.0 / np.log2(np.arange(2, len(ideal) + 2))))
    return dcg / ideal_dcg if ideal_dcg > 0 else 0.0


def run_t6(seed=41, n_users=8, sessions_per_user=10) -> ExperimentResult:
    agora = build_agora(seed=seed, n_sources=8, items_per_source=40,
                        calibration_pairs=300)
    population = UserPopulationGenerator(
        agora.topic_space, agora.sim.rng.spawn("t6-pop"),
    ).generate_population(n_users)
    workload = QueryWorkloadGenerator(
        agora.topic_space, agora.vocabulary, agora.sim.rng.spawn("t6-q"),
    )
    clicks = ClickModel(agora.topic_space, agora.sim.rng.spawn("t6-clicks"))
    learner = ProfileLearner(
        agora.topic_space.n_topics,
        concept_fn=lambda item: agora.engine.cross.lifter.lift(item),
    )
    ndcg = {"generic": [], "personalized_true": [], "personalized_learned": []}
    convergence = []  # (session index, cosine to truth)
    for profile in population:
        consumer = Consumer(agora, profile, planner="greedy")
        for session in range(sessions_per_user):
            query = workload.interest_query(profile, k=12)
            outcome = consumer.ask(query, personalize=False)
            generic_items = outcome.results.items()
            true_ranker = PersonalizedRanker(
                profile, consumer.concept_of, personalization_weight=0.6,
            )
            learned_profile = learner.profile(profile.user_id, base=profile)
            learned_ranker = PersonalizedRanker(
                learned_profile, consumer.concept_of, personalization_weight=0.6,
            )
            ndcg["generic"].append(
                _personal_ndcg(agora, profile, query, generic_items)
            )
            ndcg["personalized_true"].append(
                _personal_ndcg(agora, profile, query,
                               true_ranker.rerank_items(outcome.results))
            )
            ndcg["personalized_learned"].append(
                _personal_ndcg(agora, profile, query,
                               learned_ranker.rerank_items(outcome.results))
            )
            # The user reacts to what they were shown → learning signal.
            events = clicks.simulate(profile, generic_items)
            learner.observe_all(events)
            cosine = float(np.dot(
                learner.interests(profile.user_id), profile.interests,
            ) / (np.linalg.norm(learner.interests(profile.user_id))
                 * np.linalg.norm(profile.interests)))
            convergence.append((session, cosine))
    result = ExperimentResult(
        "T6", "Personalized vs generic ranking (personal NDCG@10)",
        ["ranker", "ndcg", "win_rate_vs_generic"],
    )
    for name in ("generic", "personalized_true", "personalized_learned"):
        result.add_row(
            name,
            summarize(ndcg[name]).mean,
            win_rate(ndcg[name], ndcg["generic"]),
        )
    learning = ExperimentResult(
        "T6b", "Profile learning convergence (cosine to true interests)",
        ["session", "cosine_to_truth"],
    )
    by_session = {}
    for session, cosine in convergence:
        by_session.setdefault(session, []).append(cosine)
    for session in sorted(by_session):
        learning.add_row(session, summarize(by_session[session]).mean)
    result.add_note("see T6b for the learning curve")
    result.companion = learning  # type: ignore[attr-defined]
    return result


@pytest.mark.benchmark(group="T6")
def test_t6_personalization(benchmark):
    result = benchmark.pedantic(run_t6, rounds=1, iterations=1)
    result.print()
    result.companion.print()
    rows = {row[0]: row for row in result.rows}
    assert rows["personalized_true"][1] > rows["generic"][1]
    assert rows["personalized_learned"][1] >= rows["generic"][1] - 0.01
    curve = [row[1] for row in result.companion.rows]
    assert curve[-1] > curve[0]  # learning converges towards the truth


if __name__ == "__main__":
    result = run_t6()
    result.print()
    result.companion.print()
