"""Tests for query workload generation."""

import numpy as np
import pytest

from repro.personalization import UserProfile
from repro.query import QueryKind
from repro.workloads import QueryWorkloadGenerator, UserPopulationGenerator


@pytest.fixture
def generator(topic_space, vocabulary, corpus_generator, streams):
    return QueryWorkloadGenerator(
        topic_space, vocabulary, streams.spawn("qwl"), corpus=corpus_generator,
    )


class TestTopicQueries:
    def test_topic_query_intent(self, generator, topic_space):
        query = generator.topic_query("dance-forms", k=7)
        assert query.kind is QueryKind.TOPIC
        assert query.k == 7
        assert topic_space.peak_topic(query.intent_latent) == "dance-forms"
        assert sum(query.terms.values()) == 60

    def test_issuer_propagates(self, generator):
        query = generator.topic_query("tourism", issuer_id="iris")
        assert query.issuer_id == "iris"


class TestInterestQueries:
    def test_intent_near_interests(self, generator, topic_space):
        profile = UserProfile(
            user_id="u", interests=topic_space.basis("folk-jewelry", 0.95),
        )
        peaks = [
            topic_space.peak_topic(
                generator.interest_query(profile).intent_latent
            )
            for __ in range(20)
        ]
        assert peaks.count("folk-jewelry") >= 12

    def test_invalid_sharpen(self, generator, topic_space):
        profile = UserProfile(user_id="u", interests=np.ones(topic_space.n_topics))
        with pytest.raises(ValueError):
            generator.interest_query(profile, sharpen=0.0)


class TestSimilarityQueries:
    def test_reference_item_minted(self, generator, topic_space):
        query = generator.similarity_query("folk-jewelry")
        assert query.kind is QueryKind.SIMILARITY
        assert query.reference_item is not None
        assert topic_space.peak_topic(query.reference_item.latent) == "folk-jewelry"

    def test_without_corpus_rejected(self, topic_space, vocabulary, streams):
        generator = QueryWorkloadGenerator(
            topic_space, vocabulary, streams.spawn("nocorpus"),
        )
        with pytest.raises(RuntimeError):
            generator.similarity_query("tourism")


class TestMixedWorkload:
    def test_size(self, generator, topic_space, streams):
        population = UserPopulationGenerator(
            topic_space, streams.spawn("pop2")
        ).generate_population(4)
        workload = generator.mixed_workload(population, queries_per_user=3)
        assert len(workload) == 12

    def test_issuers_cycle(self, generator, topic_space, streams):
        population = UserPopulationGenerator(
            topic_space, streams.spawn("pop3")
        ).generate_population(3)
        workload = generator.mixed_workload(population, queries_per_user=1)
        assert [q.issuer_id for q in workload] == [p.user_id for p in population]

    def test_negative_rejected(self, generator):
        with pytest.raises(ValueError):
            generator.mixed_workload([], queries_per_user=-1)
