"""Core facade: the Agora and its consumers.

Public API:

- :class:`Agora` — a fully wired Open Agora instance.
- :class:`AgoraConfig` — construction knobs.
- :func:`build_agora` — convenience constructor.
- :class:`Consumer`, :class:`ConsumerResult` — the user-side agent.
"""

from repro.core.agora import Agora
from repro.core.builder import build_agora
from repro.core.config import PLANNER_KINDS, TOPOLOGY_KINDS, AgoraConfig
from repro.core.consumer import Consumer, ConsumerResult
from repro.core.market import AsyncMarketplace

__all__ = [
    "Agora",
    "AgoraConfig",
    "AsyncMarketplace",
    "Consumer",
    "ConsumerResult",
    "PLANNER_KINDS",
    "TOPOLOGY_KINDS",
    "build_agora",
]
