"""Tests for candidate plans and their evaluation."""

import numpy as np
import pytest

from repro.data import TextDocument
from repro.optimizer import CandidateAssignment, CandidatePlan, evaluate_plan
from repro.qos import QoSVector, QoSWeights
from repro.query import Query, QueryKind, Retrieve, TopK
from repro.uncertainty import UncertainEstimate, risk_averse, risk_neutral, risk_seeking


def _query():
    return Query(
        kind=QueryKind.SIMILARITY,
        reference_item=TextDocument(
            item_id="ref", domain="museum", latent=np.array([1.0]), terms={"w00001": 1},
        ),
        k=5,
    )


def _assignment(query, domain, source_id, completeness=0.8, response_time=1.0, risk=0.1):
    return CandidateAssignment(
        subquery=query.restricted_to(domain),
        source_id=source_id,
        expected=QoSVector(response_time=response_time, completeness=completeness),
        cost=UncertainEstimate(mean=response_time, std=0.1, low=0.0, high=10.0),
        breach_risk=risk,
    )


class TestCandidatePlan:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CandidatePlan({})

    def test_job_without_source_rejected(self):
        with pytest.raises(ValueError):
            CandidatePlan({"j1": []})

    def test_duplicate_source_per_job_rejected(self):
        query = _query()
        a = _assignment(query, "museum", "s1")
        with pytest.raises(ValueError):
            CandidatePlan({"j1": [a, a]})

    def test_response_time_is_max(self):
        query = _query()
        plan = CandidatePlan({
            "j1": [_assignment(query, "museum", "s1", response_time=1.0)],
            "j2": [_assignment(query, "auction", "s2", response_time=3.0)],
        })
        assert plan.expected_qos().response_time == 3.0

    def test_replication_boosts_completeness(self):
        query = _query()
        single = CandidatePlan({
            "j1": [_assignment(query, "museum", "s1", completeness=0.5)],
        })
        replicated = CandidatePlan({
            "j1": [
                _assignment(query, "museum", "s1", completeness=0.5),
                _assignment(query, "museum", "s2", completeness=0.5),
            ],
        })
        assert replicated.expected_qos().completeness == pytest.approx(0.75)
        assert single.expected_qos().completeness == pytest.approx(0.5)
        assert replicated.replication_factor() == 2.0

    def test_price_sums_costs(self):
        query = _query()
        plan = CandidatePlan({
            "j1": [_assignment(query, "museum", "s1", response_time=1.0)],
            "j2": [_assignment(query, "auction", "s2", response_time=2.0)],
        })
        assert plan.expected_price() == pytest.approx(3.0)
        assert plan.expected_price(unit_price=2.0) == pytest.approx(6.0)

    def test_breach_risk_composes(self):
        query = _query()
        plan = CandidatePlan({
            "j1": [_assignment(query, "museum", "s1", risk=0.5)],
            "j2": [_assignment(query, "auction", "s2", risk=0.5)],
        })
        assert plan.breach_risk() == pytest.approx(0.75)

    def test_to_plan_tree(self):
        query = _query()
        plan = CandidatePlan({
            "j1": [_assignment(query, "museum", "s1")],
        })
        tree = plan.to_plan_tree(query)
        assert isinstance(tree, TopK)
        leaves = tree.leaves()
        assert len(leaves) == 1
        assert isinstance(leaves[0], Retrieve)
        assert leaves[0].source_id == "s1"

    def test_signature_identity(self):
        query = _query()
        a = CandidatePlan({"j1": [_assignment(query, "museum", "s1")]})
        b = CandidatePlan({"j1": [_assignment(query, "museum", "s1", completeness=0.2)]})
        assert a.signature() == b.signature()


class TestEvaluation:
    def test_utility_bounded(self):
        query = _query()
        plan = CandidatePlan({"j1": [_assignment(query, "museum", "s1")]})
        evaluation = evaluate_plan(plan, QoSWeights())
        assert 0.0 <= evaluation.utility <= 1.0

    def test_price_sensitivity_lowers_utility(self):
        query = _query()
        plan = CandidatePlan({"j1": [_assignment(query, "museum", "s1", response_time=5.0)]})
        cheap_view = evaluate_plan(plan, QoSWeights(), price_sensitivity=0.0)
        costly_view = evaluate_plan(plan, QoSWeights(), price_sensitivity=0.1)
        assert costly_view.utility < cheap_view.utility

    def test_risk_averse_penalises_risky_plans_more(self):
        query = _query()
        risky = CandidatePlan({"j1": [_assignment(query, "museum", "s1", risk=0.6)]})
        averse = evaluate_plan(risky, QoSWeights(), risk_profile=risk_averse())
        neutral = evaluate_plan(risky, QoSWeights(), risk_profile=risk_neutral())
        seeking = evaluate_plan(risky, QoSWeights(), risk_profile=risk_seeking())
        assert averse.risk_adjusted_utility < neutral.risk_adjusted_utility
        assert seeking.risk_adjusted_utility > neutral.risk_adjusted_utility

    def test_safe_plan_unaffected_by_risk_attitude(self):
        query = _query()
        safe = CandidatePlan({"j1": [_assignment(query, "museum", "s1", risk=0.0)]})
        averse = evaluate_plan(safe, QoSWeights(), risk_profile=risk_averse())
        neutral = evaluate_plan(safe, QoSWeights(), risk_profile=risk_neutral())
        assert averse.risk_adjusted_utility == pytest.approx(
            neutral.risk_adjusted_utility, abs=1e-6
        )
