"""Micro-benchmarks of hot library operations.

Unlike the T/F experiment regenerators (one-shot tables), these measure
steady-state throughput of the primitives every query touches: matching,
calibration, result merging, plan evaluation, reputation updates and the
event kernel.
"""

import numpy as np
import pytest

from repro.data import (
    CorpusGenerator,
    DomainSpec,
    FeatureExtractor,
    InformationItem,
    TopicSpace,
    Vocabulary,
)
from repro.optimizer import CandidateAssignment, CandidatePlan, evaluate_plan
from repro.qos import QoSVector, QoSWeights
from repro.query import Query, QueryKind
from repro.sim import RngStreams, Simulator
from repro.sources import InformationSource, SourceQuality
from repro.trust import ReputationSystem
from repro.uncertainty import (
    BinnedCalibrator,
    UncertainEstimate,
    UncertainMatch,
    UncertainResultSet,
    build_matching_engine,
)

SEED = 79


@pytest.fixture(scope="module")
def world():
    streams = RngStreams(SEED).spawn("micro")
    space = TopicSpace(10)
    vocabulary = Vocabulary(space, streams.spawn("v"), vocabulary_size=800)
    corpus = CorpusGenerator(space, vocabulary, streams.spawn("c"),
                             feature_dimensions=32)
    extractor = FeatureExtractor(32, streams.spawn("f"))
    spec = DomainSpec(name="museum", topic_prior={"folk-jewelry": 1.0})
    media_spec = DomainSpec(
        name="gallery", topic_prior={"folk-jewelry": 1.0},
        type_mix={"text": 0.0, "media": 1.0, "compound": 0.0},
    )
    items = corpus.generate(spec, 120)
    sample = corpus.generate(media_spec, 60)
    engine = build_matching_engine(vocabulary, extractor, lifter_sample=sample)
    return space, corpus, engine, items


@pytest.mark.benchmark(group="micro")
def test_micro_matching_rank(benchmark, world):
    space, corpus, engine, items = world
    query_item = items[0]
    pool = items[1:101]
    ranked = benchmark(engine.rank, query_item, pool)
    assert len(ranked) == 100


@pytest.mark.benchmark(group="micro")
def test_micro_matching_rank_pairwise(benchmark, world):
    """Reference path: one Python ``score`` call per candidate."""
    space, corpus, engine, items = world
    query_item = items[0]
    pool = items[1:101]
    ranked = benchmark(engine.rank_pairwise, query_item, pool)
    assert len(ranked) == 100


@pytest.mark.benchmark(group="micro")
def test_micro_source_answer(benchmark, world):
    """End-to-end source answer over a 100-item visible pool."""
    space, corpus, engine, items = world
    streams = RngStreams(SEED).spawn("micro-source")
    source = InformationSource(
        source_id="bench-src",
        node_id="n0",
        domains=["museum"],
        quality=SourceQuality(coverage=1.0, freshness_lag=0.0, error_rate=0.0),
        engine=engine,
        streams=streams,
    )
    source.ingest(items[1:101], now=0.0, immediate=True)
    rng = np.random.default_rng(SEED)
    intent = space.basis("folk-jewelry", weight=0.9)
    vocabulary = engine.cross.lifter.vocabulary
    query = Query(
        kind=QueryKind.TOPIC,
        terms=vocabulary.sample_terms(intent, rng, length=60),
        intent_latent=intent,
        k=10,
    )
    subquery = query.restricted_to("museum")
    answer = benchmark(source.answer, subquery, 0.0)
    assert not answer.declined
    assert answer.candidates_scanned == 100


@pytest.fixture(scope="module")
def pruning_pool(world):
    """A skewed retrieval pool where bound pruning pays off.

    A minority of on-topic museum items buried in an off-topic majority:
    the term-index ceilings of off-topic chunks fall below the score
    floor, so the pruned path skips most of the scoring work while
    returning the exact exhaustive answer.
    """
    space, corpus, engine, items = world
    text_only = {"text": 1.0, "media": 0.0, "compound": 0.0}
    on_spec = DomainSpec(
        name="museum", topic_prior={"folk-jewelry": 1.0},
        type_mix=text_only, concentration=0.3,
    )
    off_spec = DomainSpec(
        name="museum",
        topic_prior={"academic-theses": 0.7, "dance-forms": 0.3},
        type_mix=text_only, concentration=0.3,
    )
    on_topic = corpus.generate(on_spec, 80)
    off_topic = corpus.generate(off_spec, 320)
    # On-topic items interleaved into the front of the stream; the long
    # off-topic tail is what the term-index ceilings get to skip.
    pool = [x for pair in zip(off_topic[:80], on_topic) for x in pair]
    pool.extend(off_topic[80:])
    rng = np.random.default_rng(SEED)
    intent = space.basis("folk-jewelry", weight=0.9)
    vocabulary = engine.cross.lifter.vocabulary
    query = Query(
        kind=QueryKind.TOPIC,
        terms=vocabulary.sample_terms(intent, rng, length=60),
        intent_latent=intent,
        k=10,
        threshold=0.5,
    )
    return engine, pool, query


@pytest.mark.benchmark(group="micro")
def test_micro_rank_block_exhaustive(benchmark, pruning_pool):
    """Exhaustive baseline over the skewed pool (block prepared once)."""
    engine, pool, query = pruning_pool
    block = engine.prepare(pool)
    evidence = query.evidence_item()
    ranked = benchmark(engine.rank_block, evidence, block)
    assert len(ranked) == len(pool)


@pytest.mark.benchmark(group="micro")
def test_micro_rank_topk_pruned(benchmark, pruning_pool):
    """Bound-pruned top-k over the same pool, same exact results."""
    engine, pool, query = pruning_pool
    block = engine.prepare(pool)
    evidence = query.evidence_item()
    block.bounds()  # warm the bound cache, as a source's block cache would

    def run():
        return engine.rank_block_topk(
            evidence, block, query.k, score_floor=query.threshold
        )

    ranked, stats = benchmark(run)
    exhaustive = [
        pair for pair in engine.rank_block(evidence, block)[: query.k]
        if pair[1] >= query.threshold
    ]
    assert ranked == exhaustive
    # The acceptance bar for the pruning layer: most scoring skipped.
    assert stats.scored_fraction <= 0.5


@pytest.mark.benchmark(group="micro")
def test_micro_source_answer_pruned(benchmark, pruning_pool):
    """Source answer with a pushed-down floor over the skewed pool."""
    from repro.query import PruneHint

    engine, pool, query = pruning_pool
    streams = RngStreams(SEED).spawn("micro-pruned-source")
    source = InformationSource(
        source_id="bench-pruned-src",
        node_id="n0",
        domains=["museum"],
        quality=SourceQuality(coverage=1.0, freshness_lag=0.0, error_rate=0.0),
        engine=engine,
        streams=streams,
    )
    source.ingest(pool, now=0.0, immediate=True)
    subquery = query.restricted_to("museum")
    hint = PruneHint(score_floor=query.threshold, k_cap=query.k)
    answer = benchmark(source.answer, subquery, 0.0, "", hint)
    assert not answer.declined
    assert answer.candidates_scanned == len(pool)
    assert answer.candidates_scored <= len(pool) // 2


@pytest.fixture(scope="module", params=[1, 2, 4, 8], ids=lambda n: f"shards{n}")
def shard_pool(request, pruning_pool):
    """A started shard pool over the 400-item skewed retrieval pool."""
    from repro.parallel import ShardPool

    engine, pool, query = pruning_pool
    shards = ShardPool(engine, n_shards=request.param, seed=SEED).start()
    shards.register("pruning", pool)
    yield shards, request.param
    shards.stop()


@pytest.mark.benchmark(group="micro-parallel")
def test_micro_parallel_rank_topk(benchmark, shard_pool, pruning_pool):
    """Sharded top-k wall-clock at each shard count, parity asserted.

    Wall-clock on a one-core CI box measures IPC overhead, not scan
    parallelism — the committed speedup gate therefore rides on the
    virtual-time :class:`~repro.parallel.ScanCostModel` (same discipline
    as every latency figure in this repo), asserted here per series.
    Parity stays the hard gate: every shard count must return bitwise
    the in-process answer.
    """
    from repro.parallel import ScanCostModel

    engine, pool, query = pruning_pool
    shards, n_shards = shard_pool
    evidence = query.evidence_item()

    def run():
        return shards.rank_topk(
            "pruning", evidence, query.k, score_floor=query.threshold
        )

    ranked, stats = benchmark(run)
    block = engine.prepare(pool)
    expected, __ = engine.rank_block_topk(
        evidence, block, query.k, limit=len(pool),
        score_floor=query.threshold,
    )
    assert ranked == expected  # bitwise: ids, order, floats
    assert stats.candidates_total == len(pool)
    assert shards.fallbacks == 0
    # The scale-out gate over this very pool: >=1.8x at 4 shards.
    assert ScanCostModel().speedup(len(pool), 4) >= 1.8


@pytest.mark.benchmark(group="micro")
def test_micro_calibrator_predict(benchmark):
    rng = np.random.default_rng(SEED)
    scores = rng.random(2000)
    labels = (rng.random(2000) < scores**2).astype(int)
    calibrator = BinnedCalibrator().fit(scores, labels)
    probe = rng.random(1000)
    out = benchmark(calibrator.predict_many, probe)
    assert out.shape == (1000,)


@pytest.mark.benchmark(group="micro")
def test_micro_result_merge(benchmark):
    rng = np.random.default_rng(SEED)

    def make_set(offset):
        matches = [
            UncertainMatch(
                item=InformationItem(item_id=f"i{offset + j}", domain="d",
                                     latent=np.array([1.0])),
                score=float(rng.random()),
                probability=float(rng.random()),
            )
            for j in range(200)
        ]
        return UncertainResultSet(matches)

    a, b = make_set(0), make_set(100)  # 50% overlap
    merged = benchmark(a.merge, b)
    assert len(merged) == 300


@pytest.mark.benchmark(group="micro")
def test_micro_plan_evaluation(benchmark):
    query = Query(
        kind=QueryKind.TOPIC, terms={"w00001": 3}, k=10,
        intent_latent=np.array([1.0]),
    )
    rng = np.random.default_rng(SEED)
    assignments = {}
    for job in range(5):
        subquery = query.restricted_to(f"d{job}")
        assignments[subquery.subquery_id] = [
            CandidateAssignment(
                subquery=subquery, source_id=f"s{job}",
                expected=QoSVector(response_time=float(rng.uniform(0.1, 5)),
                                   completeness=float(rng.uniform(0.2, 1))),
                cost=UncertainEstimate(mean=1.0, std=0.2, low=0, high=5),
                breach_risk=float(rng.uniform(0, 0.4)),
            )
        ]
    plan = CandidatePlan(assignments)
    evaluation = benchmark(evaluate_plan, plan, QoSWeights())
    assert 0.0 <= evaluation.utility <= 1.0


@pytest.mark.benchmark(group="micro")
def test_micro_reputation_updates(benchmark):
    rng = np.random.default_rng(SEED)
    outcomes = rng.random(1000)

    def run():
        system = ReputationSystem()
        for index, outcome in enumerate(outcomes):
            system.observe(f"s{index % 20}", float(outcome))
        return system

    system = benchmark(run)
    assert len(system.known_subjects()) == 20


@pytest.mark.benchmark(group="micro")
def test_micro_event_kernel(benchmark):
    def run():
        sim = Simulator(seed=1)
        counter = {"n": 0}

        def tick():
            counter["n"] += 1
            if counter["n"] < 5000:
                sim.schedule(1.0, tick)

        sim.schedule(1.0, tick)
        sim.run()
        return counter["n"]

    assert benchmark(run) == 5000


@pytest.mark.benchmark(group="micro")
def test_micro_event_kernel_flight(benchmark):
    """The dispatch loop with the flight recorder streaming per-event."""
    from repro.obs.flight import FlightRecorder

    def run():
        flight = FlightRecorder()
        sim = Simulator(seed=1, flight=flight)
        counter = {"n": 0}

        def tick():
            counter["n"] += 1
            if counter["n"] < 5000:
                sim.schedule(1.0, tick)

        sim.schedule(1.0, tick)
        sim.run()
        return counter["n"], flight.record_count

    events, recorded = benchmark(run)
    assert events == 5000
    assert recorded == 5000
