"""Property tests for the simulation kernel's determinism contract.

The whole reproduction rests on one promise: same root seed, same code
path, same results — regardless of wall-clock, platform, or how many
times we run.  These properties exercise that promise at three levels:
raw event ordering, the trace summary, and a fully built agora.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.builder import build_agora
from repro.data import reset_item_ids
from repro.net import ChurnSpec, NodeHealth, reset_message_ids
from repro.query import reset_query_ids
from repro.sim import SimulationError, Simulator

delays = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        st.integers(min_value=-3, max_value=3),
    ),
    min_size=1,
    max_size=30,
)


class TestEventOrderDeterminism:
    @given(delays)
    @settings(max_examples=50)
    def test_same_schedule_same_firing_order(self, schedule):
        def run():
            sim = Simulator(seed=1)
            order = []
            for index, (delay, priority) in enumerate(schedule):
                sim.schedule(
                    delay,
                    (lambda i=index: order.append((sim.now, i))),
                    priority=priority,
                )
            sim.run()
            return order

        assert run() == run()

    @given(delays)
    @settings(max_examples=50)
    def test_events_fire_in_nondecreasing_time(self, schedule):
        sim = Simulator(seed=1)
        times = []
        for delay, priority in schedule:
            sim.schedule(delay, lambda: times.append(sim.now), priority=priority)
        sim.run()
        assert times == sorted(times)
        assert len(times) == len(schedule)

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=20, deadline=None)
    def test_churn_trace_summary_replays(self, seed):
        def run():
            sim = Simulator(seed=seed)
            NodeHealth(
                sim, [f"n{i}" for i in range(5)], sim.rng.spawn("h"),
                spec=ChurnSpec(mean_uptime=10.0, mean_downtime=5.0),
            )
            sim.run(until=200.0)
            return sim.trace.summary()

        assert run() == run()


class TestSchedulingContracts:
    @given(st.floats(max_value=-1e-9, allow_nan=False))
    def test_scheduling_in_the_past_always_raises(self, delay):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(delay, lambda: None)

    @given(
        st.floats(min_value=0.1, max_value=100.0, allow_nan=False),
        st.floats(min_value=1e-6, max_value=100.0, allow_nan=False),
    )
    def test_absolute_time_before_now_always_raises(self, advance, offset):
        sim = Simulator()
        sim.schedule(advance, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.at(sim.now - offset, lambda: None)

    @given(st.floats(max_value=-1e-9, allow_nan=False))
    def test_negative_process_yield_always_raises(self, bad_delay):
        sim = Simulator()

        def proc():
            yield bad_delay

        with pytest.raises(SimulationError):
            sim.process(proc())
            sim.run()


class TestAgoraDeterminism:
    @settings(
        max_examples=3, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(st.integers(min_value=0, max_value=1000))
    def test_same_seed_same_census_and_trace(self, seed):
        def build():
            reset_item_ids()
            reset_query_ids()
            reset_message_ids()
            agora = build_agora(
                seed=seed, n_sources=3, items_per_source=5,
                calibration_pairs=0, lifter_sample_size=20,
            )
            agora.run(until=20.0)
            return agora.source_census(), agora.sim.trace.summary()

        census_a, trace_a = build()
        census_b, trace_b = build()
        assert census_a == census_b
        assert trace_a == trace_b

    def test_different_seeds_differ_somewhere(self):
        def build(seed):
            reset_item_ids()
            reset_query_ids()
            reset_message_ids()
            agora = build_agora(
                seed=seed, n_sources=3, items_per_source=5,
                calibration_pairs=0, lifter_sample_size=20,
            )
            return agora.source_census()

        # Not a hard determinism property, but a sanity check that the
        # census actually depends on the seed (coverage draws differ).
        censuses = {tuple(sorted(build(seed).items())) for seed in range(6)}
        assert len(censuses) > 1
