"""Quality of Service: vectors, SLAs, pricing, monitoring (paper §3).

Public API:

- :class:`QoSVector`, :class:`QoSWeights`, :class:`QoSRequirement`,
  :func:`scalarize`, :func:`time_utility` — quality measurement.
- :class:`SLAContract`, :class:`SLAOutcome`, :class:`ContractState` —
  service-level agreements with breach compensation.
- :class:`FlatPricing`, :class:`RiskPricedPremium`,
  :class:`CompetitivePricing`, :class:`Quote` — premium pricing policies.
- :class:`ContractMonitor`, :class:`ProviderLedger` — settlement records.
"""

from repro.qos.breach import breach_probability, dimension_breach_probability
from repro.qos.monitor import ContractMonitor, ProviderLedger
from repro.qos.pricing import (
    CompetitivePricing,
    FlatPricing,
    PricingPolicy,
    Quote,
    RiskPricedPremium,
)
from repro.qos.sla import (
    ContractError,
    ContractState,
    SLAContract,
    SLAOutcome,
    reset_contract_ids,
)
from repro.qos.vector import (
    ALL_DIMENSIONS,
    QUALITY_DIMENSIONS,
    QoSRequirement,
    QoSVector,
    QoSWeights,
    scalarize,
    time_utility,
)

__all__ = [
    "ALL_DIMENSIONS",
    "CompetitivePricing",
    "ContractError",
    "ContractMonitor",
    "ContractState",
    "FlatPricing",
    "PricingPolicy",
    "ProviderLedger",
    "QUALITY_DIMENSIONS",
    "QoSRequirement",
    "QoSVector",
    "QoSWeights",
    "Quote",
    "RiskPricedPremium",
    "SLAContract",
    "SLAOutcome",
    "breach_probability",
    "dimension_breach_probability",
    "reset_contract_ids",
    "scalarize",
    "time_utility",
]
