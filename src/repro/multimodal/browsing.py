"""Browsing: profile-guided navigation over item neighbourhoods.

"People ... browse display windows or store shelves" (§9); Iris "prefers
to browse bookstores aimlessly in case she finds something interesting"
(§8).  The :class:`BrowseGraph` links items by matcher similarity (and
same-source shelf adjacency); a :class:`Browser` walks it, preferring
neighbours its profile finds interesting, with an exploration temperature
for serendipity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.data.items import InformationItem
from repro.personalization.profile import UserProfile
from repro.sim.rng import ScopedStreams
from repro.uncertainty.matching import MatchingEngine

ConceptFn = Callable[[InformationItem], np.ndarray]


class BrowseGraph:
    """A navigable similarity graph over a set of items.

    Each item links to its ``k_links`` most similar peers (by the matching
    engine) — the "store shelf" structure browsing moves along.
    """

    def __init__(self, engine: MatchingEngine, k_links: int = 4):
        if k_links < 1:
            raise ValueError("k_links must be >= 1")
        self.engine = engine
        self.k_links = k_links
        self._items: Dict[str, InformationItem] = {}
        self._links: Dict[str, List[str]] = {}

    def build(self, items: Sequence[InformationItem]) -> None:
        """Index ``items`` and wire similarity links (O(n²) scoring)."""
        if not items:
            raise ValueError("cannot build a browse graph over no items")
        self._items = {item.item_id: item for item in items}
        ids = sorted(self._items)
        for item_id in ids:
            item = self._items[item_id]
            scored = [
                (self.engine.score(item, self._items[other]), other)
                for other in ids
                if other != item_id
            ]
            scored.sort(key=lambda pair: (-pair[0], pair[1]))
            self._links[item_id] = [other for __, other in scored[: self.k_links]]

    @property
    def size(self) -> int:
        """Number of indexed items."""
        return len(self._items)

    def item(self, item_id: str) -> InformationItem:
        """Look up an indexed item by id."""
        return self._items[item_id]

    def items(self) -> List[InformationItem]:
        """All indexed items, sorted by id."""
        return [self._items[i] for i in sorted(self._items)]

    def neighbours(self, item_id: str) -> List[InformationItem]:
        """The similarity neighbours of ``item_id``."""
        if item_id not in self._links:
            raise KeyError(f"item {item_id!r} not in browse graph")
        return [self._items[i] for i in self._links[item_id]]


@dataclass
class BrowseStep:
    """One hop of a browsing walk."""

    item: InformationItem
    interest: float
    time: float = 0.0


class Browser:
    """A profile-guided walker over a browse graph.

    At each step the browser moves to a neighbour with probability
    proportional to ``exp(interest / temperature)`` — low temperature is
    the goal-driven shopper, high temperature the serendipitous one (§5's
    "quick and goal-driven vs relaxed and serendipitous").
    """

    def __init__(
        self,
        graph: BrowseGraph,
        profile: UserProfile,
        concept_fn: ConceptFn,
        streams: ScopedStreams,
        temperature: float = 0.3,
    ):
        if temperature <= 0:
            raise ValueError("temperature must be positive")
        self.graph = graph
        self.profile = profile
        self.concept_fn = concept_fn
        self.temperature = temperature
        self._rng = streams.stream(f"browser.{profile.user_id}")
        self.trail: List[BrowseStep] = []
        self._current: Optional[str] = None

    # ------------------------------------------------------------------
    def start(self, item_id: Optional[str] = None) -> BrowseStep:
        """Begin at ``item_id`` or at the most interesting item overall."""
        if self.graph.size == 0:
            raise RuntimeError("browse graph is empty")
        if item_id is None:
            scored = [
                (self.profile.interest_in(self.concept_fn(item)), item.item_id)
                for item in self.graph.items()
            ]
            scored.sort(key=lambda pair: (-pair[0], pair[1]))
            item_id = scored[0][1]
        item = self.graph.item(item_id)
        step = BrowseStep(item=item, interest=self.profile.interest_in(self.concept_fn(item)))
        self._current = item_id
        self.trail = [step]
        return step

    def step(self, time: float = 0.0) -> BrowseStep:
        """Move to a profile-weighted random neighbour."""
        if self._current is None:
            return self.start()
        neighbours = self.graph.neighbours(self._current)
        interests = np.array(
            [self.profile.interest_in(self.concept_fn(n)) for n in neighbours]
        )
        logits = interests / self.temperature
        logits -= logits.max()
        probabilities = np.exp(logits)
        probabilities /= probabilities.sum()
        index = int(self._rng.choice(len(neighbours), p=probabilities))
        chosen = neighbours[index]
        step = BrowseStep(item=chosen, interest=float(interests[index]), time=time)
        self.trail.append(step)
        self._current = chosen.item_id
        return step

    def walk(self, steps: int, start_item: Optional[str] = None) -> List[BrowseStep]:
        """A full walk of ``steps`` hops; returns the trail."""
        if steps < 0:
            raise ValueError("steps must be non-negative")
        self.start(start_item)
        for __ in range(steps):
            self.step()
        return list(self.trail)

    def visited_items(self) -> List[InformationItem]:
        """Items visited so far, in trail order."""
        return [step.item for step in self.trail]
