"""The declared layer DAG of ``repro`` packages.

Each top-level package lists the packages it may import at runtime.  The
graph is acyclic: the observability substrate (``repro.obs``) sits at
the very bottom and imports nothing, the sim kernel directly above it
may import only ``obs`` (a kernel that imports domain code can never be
reasoned about in isolation, and an accidental ``repro.sim`` →
``repro.core`` edge is how determinism bugs smuggle themselves into the
clock).  ``repro.core`` is the composition root at the top;
``repro.workloads`` sits above it because workloads script whole agoras.

``import`` statements inside ``if TYPE_CHECKING:`` blocks are exempt —
they cannot affect runtime behaviour and are the sanctioned way to
annotate against a higher layer.

A few *interface modules* are pinned beneath their home package:
``repro.query.model`` defines the plain query/subquery dataclasses that
sources consume, so ``repro.sources`` may import it even though the rest
of ``repro.query`` (executor, adaptive re-planning) sits above sources.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

#: The single source of truth for the layer DAG.  One line per package
#: (``package -> deps``); indented lines continue the previous entry.
#: The fenced ``layers`` block in DESIGN.md §3 must stay byte-identical
#: to this table — ``tests/analysis/test_layering.py`` enforces parity,
#: so the docs cannot drift from the checker again.
LAYER_TABLE = """\
obs             ->
sim             -> obs
analysis        ->
trust           ->
experiments     -> obs
data            -> sim
net             -> obs sim
qos             -> obs sim
uncertainty     -> data obs sim
parallel        -> analysis data obs uncertainty
resilience      -> net obs qos sim
sources         -> data net obs qos sim trust uncertainty
query           -> data obs qos resilience sim sources uncertainty
negotiation     -> qos sim
personalization -> data negotiation qos uncertainty
context         -> personalization qos
social          -> data personalization trust uncertainty
multimodal      -> data personalization query sim sources uncertainty
collaboration   -> data personalization query uncertainty
optimizer       -> negotiation qos query sim sources trust uncertainty
core            -> context data multimodal negotiation net obs optimizer
                   parallel personalization qos query resilience sim
                   social sources trust uncertainty
workloads       -> core data multimodal obs personalization qos query
                   sim social uncertainty
"""


def parse_layer_table(table: str) -> Dict[str, FrozenSet[str]]:
    """Parse the declared table into package -> allowed-import sets.

    Validates the result: every dependency must itself be declared, and
    the graph must be acyclic — a bad edit fails at import time rather
    than silently weakening the checker.
    """
    deps: Dict[str, List[str]] = {}
    current: Optional[str] = None
    for raw in table.splitlines():
        if not raw.strip():
            continue
        if raw[0].isspace():
            if current is None:
                raise ValueError(f"continuation line with no entry: {raw!r}")
            deps[current].extend(raw.split())
            continue
        head, sep, tail = raw.partition("->")
        if not sep:
            raise ValueError(f"layer table line missing '->': {raw!r}")
        current = head.strip()
        if current in deps:
            raise ValueError(f"duplicate layer entry: {current}")
        deps[current] = tail.split()
    parsed = {pkg: frozenset(pkg_deps) for pkg, pkg_deps in deps.items()}
    for pkg, pkg_deps in parsed.items():
        unknown = pkg_deps - parsed.keys()
        if unknown:
            raise ValueError(
                f"{pkg} depends on undeclared packages: {sorted(unknown)}"
            )
    _check_acyclic(parsed)
    return parsed


def _check_acyclic(deps: Dict[str, FrozenSet[str]]) -> None:
    state: Dict[str, int] = {}  # 1 = on stack, 2 = done

    def visit(pkg: str, stack: Tuple[str, ...]) -> None:
        mark = state.get(pkg)
        if mark == 2:
            return
        if mark == 1:
            cycle = stack[stack.index(pkg):] + (pkg,)
            raise ValueError(f"layer DAG has a cycle: {' -> '.join(cycle)}")
        state[pkg] = 1
        for dep in sorted(deps[pkg]):
            visit(dep, stack + (pkg,))
        state[pkg] = 2

    for pkg in sorted(deps):
        visit(pkg, ())


#: package -> packages it may import at runtime (besides itself/stdlib).
LAYER_DEPS: Dict[str, FrozenSet[str]] = parse_layer_table(LAYER_TABLE)

#: Modules pinned beneath their home package: importer package -> modules
#: it may import from otherwise-forbidden packages.
INTERFACE_MODULES: Dict[str, FrozenSet[str]] = {
    "sources": frozenset({"repro.query.model"}),
}


def package_of(module: str) -> Optional[str]:
    """Top-level ``repro`` subpackage of a dotted module name, if any."""
    parts = module.split(".")
    if parts[0] != "repro" or len(parts) < 2:
        return None
    return parts[1]


def check_import(
    importer_module: str, imported_module: str
) -> Tuple[bool, Optional[str]]:
    """Validate one runtime import edge against the layer DAG.

    Returns ``(allowed, importer_package)``.  Imports of non-``repro``
    modules, intra-package imports, and imports from undeclared packages
    (treated as unrestricted, e.g. the ``repro`` facade itself) are
    allowed.
    """
    importer_pkg = package_of(importer_module)
    imported_pkg = package_of(imported_module)
    if imported_pkg is None:
        return True, importer_pkg
    if importer_pkg is None or importer_pkg == imported_pkg:
        return True, importer_pkg
    if importer_pkg not in LAYER_DEPS:
        return True, importer_pkg
    if imported_pkg in LAYER_DEPS.get(importer_pkg, frozenset()):
        return True, importer_pkg
    allowed_modules = INTERFACE_MODULES.get(importer_pkg, frozenset())
    if imported_module in allowed_modules:
        return True, importer_pkg
    if any(imported_module.startswith(mod + ".") for mod in allowed_modules):
        return True, importer_pkg
    return False, importer_pkg
