"""Tests for the scriptable fault-injection harness."""

import pytest

from repro.net import LoadModel, LoadSpec, NodeHealth
from repro.resilience import FaultEvent, FaultInjector, FaultScript
from repro.sim import Simulator


@pytest.fixture
def stack():
    sim = Simulator(seed=3)
    nodes = ["n1", "n2"]
    health = NodeHealth(sim, nodes, sim.rng.spawn("h"), enabled=False)
    load = LoadModel(nodes, sim.rng.spawn("l"), LoadSpec(capacity=10.0))
    return sim, health, load


class TestFaultEvent:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultEvent("meteor", "n1", 0.0, 1.0)
        with pytest.raises(ValueError):
            FaultEvent("outage", "n1", -1.0, 1.0)
        with pytest.raises(ValueError):
            FaultEvent("outage", "n1", 0.0, 0.0)
        with pytest.raises(ValueError):
            FaultEvent("flaky", "n1", 0.0, 1.0, magnitude=-0.5)

    def test_end_time(self):
        assert FaultEvent("outage", "n1", 2.0, 3.0).end == 5.0


class TestFaultScript:
    def test_builders_append_and_chain(self):
        script = (
            FaultScript()
            .outage("n1", start=1.0, duration=2.0)
            .latency_spike("n2", start=0.0, duration=5.0, slowdown=3.0)
            .flaky("n1", start=4.0, duration=1.0, decline_probability=0.8)
        )
        assert len(script) == 3
        assert script.horizon() == 5.0

    def test_builder_validation(self):
        with pytest.raises(ValueError):
            FaultScript().latency_spike("n1", 0.0, 1.0, slowdown=0.5)
        with pytest.raises(ValueError):
            FaultScript().flaky("n1", 0.0, 1.0, decline_probability=1.0)


class TestFaultInjector:
    def test_outage_window_flips_health_down_then_up(self, stack):
        sim, health, load = stack
        injector = FaultInjector(sim, health, load)
        injector.install(FaultScript().outage("n1", start=2.0, duration=3.0))
        sim.run(until=1.0)
        assert health.is_up("n1")
        sim.run(until=2.5)
        assert not health.is_up("n1")
        assert health.is_up("n2")
        sim.run(until=6.0)
        assert health.is_up("n1")
        assert sim.trace.counter("faults.outage_transitions") == 2

    def test_latency_spike_raises_slowdown_for_window(self, stack):
        sim, health, load = stack
        injector = FaultInjector(sim, health, load)
        injector.install(
            FaultScript().latency_spike("n1", start=1.0, duration=2.0, slowdown=2.5)
        )
        base = load.service_slowdown("n1")
        sim.run(until=1.5)
        assert load.service_slowdown("n1") == pytest.approx(2.5)
        sim.run(until=4.0)
        assert load.service_slowdown("n1") == pytest.approx(base)

    def test_flaky_window_hits_target_decline_probability(self, stack):
        sim, health, load = stack
        injector = FaultInjector(sim, health, load)
        injector.install(
            FaultScript().flaky("n1", start=0.5, duration=2.0,
                                decline_probability=0.9)
        )
        assert load.decline_probability("n1") < 0.1
        sim.run(until=1.0)
        assert load.decline_probability("n1") == pytest.approx(0.9, abs=1e-6)
        sim.run(until=3.0)
        assert load.decline_probability("n1") < 0.1

    def test_overlapping_outage_windows_compose(self, stack):
        sim, health, load = stack
        injector = FaultInjector(sim, health, load)
        # Windows [1, 5) and [3, 8) overlap: the node must stay down
        # until the LAST covering window closes.
        injector.install(
            FaultScript().outage("n1", 1.0, 4.0).outage("n1", 3.0, 5.0)
        )
        sim.run(until=2.0)
        assert not health.is_up("n1")
        sim.run(until=6.0)  # first window closed, second still open
        assert not health.is_up("n1")
        sim.run(until=9.0)
        assert health.is_up("n1")
        # Exactly one down transition and one up transition.
        assert sim.trace.counter("faults.outage_transitions") == 2

    def test_unknown_node_rejected_at_install(self, stack):
        sim, health, load = stack
        injector = FaultInjector(sim, health, load)
        with pytest.raises(ValueError, match="unknown node"):
            injector.install(FaultScript().outage("ghost", 0.0, 1.0))
        with pytest.raises(ValueError, match="unknown node"):
            injector.install(FaultScript().flaky("ghost", 0.0, 1.0))
        assert injector.installed == []
        sim.run()  # nothing was scheduled that can blow up later

    def test_load_faults_require_load_model(self, stack):
        sim, health, __ = stack
        injector = FaultInjector(sim, health, load=None)
        with pytest.raises(ValueError):
            injector.install(FaultScript().flaky("n1", 0.0, 1.0))

    def test_scheduling_counters(self, stack):
        sim, health, load = stack
        injector = FaultInjector(sim, health, load)
        script = (
            FaultScript()
            .outage("n1", 0.0, 1.0)
            .outage("n2", 0.0, 1.0)
            .latency_spike("n1", 2.0, 1.0)
        )
        assert injector.install(script) == 3
        assert sim.trace.counter("faults.scheduled_outage") == 2
        assert sim.trace.counter("faults.scheduled_latency_spike") == 1
        assert len(injector.installed) == 3

    def test_same_script_same_seed_replays_identically(self):
        def run(seed):
            sim = Simulator(seed=seed)
            health = NodeHealth(sim, ["n1"], sim.rng.spawn("h"), enabled=False)
            load = LoadModel(["n1"], sim.rng.spawn("l"), LoadSpec(capacity=5.0))
            FaultInjector(sim, health, load).install(
                FaultScript()
                .outage("n1", 1.0, 2.0)
                .flaky("n1", 4.0, 1.0, decline_probability=0.7)
            )
            observed = []
            for t in (0.5, 1.5, 3.5, 4.5, 6.0):
                sim.run(until=t)
                observed.append(
                    (health.is_up("n1"),
                     round(load.decline_probability("n1"), 12))
                )
            return observed, sim.trace.counters()

        assert run(7) == run(7)
