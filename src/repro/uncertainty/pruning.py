"""Exactness-preserving score upper bounds for top-k / threshold pruning.

The batched matchers of :mod:`repro.uncertainty.matching` score every
visible candidate, even though a ``TopK`` plan only keeps ``k`` of them
and a ``Threshold`` plan discards everything under ``tau``.  This module
supplies the *cheap, provably safe* upper bounds that let the pruning
rank path skip whole candidate chunks that cannot reach the current
cutoff, while scoring survivors through the exact einsum kernels.

The bound hierarchy (see DESIGN.md §2f):

1. **Norm bounds** (Cauchy–Schwarz): ``dot(a, b) <= ||a||·||b||`` caps
   the media matcher's affine-dot score using cached candidate feature
   norms.
2. **Term index**: for text/text cosine, ``dot(q, c)`` is at most
   ``sum_t q_t · max_c c_t`` over the query's terms, where ``max_c c_t``
   comes from a per-chunk inverted index of maximum TF weights.  A chunk
   sharing no terms with the query is bounded at exactly zero.
3. **Concept-space (Hölder) bounds**: lifted vectors are non-negative,
   so ``dot(ql, cl) <= min(max(ql)·sum(cl), sum(ql)·max(cl))``; cached
   per-candidate ``sum/norm`` and ``max/norm`` ratios turn this into a
   chunk ceiling for cross-type cosine.

Exactness argument: a chunk is skipped only when its padded ceiling is
*strictly* below the cutoff (the running k-th best score, or the pushed-
down threshold floor).  Every candidate in a skipped chunk therefore
scores strictly below the cutoff and can appear in neither the top-k
(ties at the k-th score are still scored and tie-broken by item id) nor
the thresholded result.  Survivors are scored by the same kernels as the
exhaustive path, so the produced floats are bitwise identical.

All ceilings are padded by ``pad()`` (a relative + absolute slack far
above accumulated float64 rounding error) before being compared, so the
real-arithmetic inequalities above also hold for the *computed* floats.
Padding can only make bounds looser — it costs a little pruning power,
never correctness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.items import (
    CompoundObject,
    InformationItem,
    MediaObject,
    TextDocument,
)

if TYPE_CHECKING:
    from repro.uncertainty.matching import MatchingEngine

#: candidates per pruning chunk — small enough that one surviving item
#: costs little collateral scoring, large enough to amortise the bound
#: check (one dict walk + a few multiplies per chunk)
CHUNK_SIZE = 16

#: relative / absolute slack applied to every ceiling before comparison;
#: float64 rounding across the few hundred flops in a bound is ~1e-13,
#: so this margin is ~4 orders of magnitude of headroom
PAD_RELATIVE = 1e-9
PAD_ABSOLUTE = 1e-12

#: ceiling meaning "cannot bound this chunk" (compound/unliftable items)
UNBOUNDED = float("inf")


# agora: shard-safe
def pad(bound: float) -> float:
    """Widen a real-arithmetic upper bound to absorb float rounding."""
    if bound == UNBOUNDED:
        return bound
    return bound * (1.0 + PAD_RELATIVE) + PAD_ABSOLUTE


@dataclass
class QueryBoundState:
    """Query-side quantities the chunk ceilings need, computed once.

    ``None``-valued lift fields mean the concept-space bound is
    unavailable (unfitted lifter) and cross-scored chunks are unbounded.
    """

    is_text: bool
    #: text query: the sublinear-TF bag and its norm
    bag: Optional[Dict[str, float]] = None
    bag_norm: float = 0.0
    #: media query: extracted feature-vector norm
    feature_norm: float = 0.0
    #: lifted concept vector summary (either query kind)
    lift_norm: Optional[float] = None
    lift_max: float = 0.0
    lift_sum: float = 0.0


class BoundStats:
    """Upper-bound state over a set of candidates (one chunk, or a whole
    domain bucket when used as the block aggregate).

    Updated incrementally as candidates are appended; every field is an
    order-independent max/min, so the incremental aggregate equals the
    rebuilt-from-scratch one exactly (the invalidation fuzz suite asserts
    this).
    """

    __slots__ = (
        "count",
        "term_max",
        "min_text_norm",
        "has_text",
        "max_media_norm",
        "has_media",
        "text_lift_sum_ratio",
        "text_lift_max_ratio",
        "media_lift_sum_ratio",
        "media_lift_max_ratio",
        "unbounded",
    )

    def __init__(self) -> None:
        self.count = 0
        #: inverted term index: term -> max TF weight over text candidates
        self.term_max: Dict[str, float] = {}
        self.min_text_norm = UNBOUNDED
        self.has_text = False
        self.max_media_norm = 0.0
        self.has_media = False
        # max over candidates of sum(lift)/||lift|| and max(lift)/||lift||,
        # kept separately per candidate kind so a text query only pays the
        # media candidates' cross bound (and vice versa)
        self.text_lift_sum_ratio = 0.0
        self.text_lift_max_ratio = 0.0
        self.media_lift_sum_ratio = 0.0
        self.media_lift_max_ratio = 0.0
        #: a compound / unliftable candidate makes the chunk unprunable
        self.unbounded = False

    # ------------------------------------------------------------------
    def update(self, item: InformationItem, engine: "MatchingEngine") -> None:
        """Fold one candidate's cached derived state into the bounds."""
        self.count += 1
        if isinstance(item, CompoundObject):
            self.unbounded = True
            return
        if isinstance(item, TextDocument):
            self.has_text = True
            bag, norm = engine.text._bag(item)
            if norm > 0.0:
                if norm < self.min_text_norm:
                    self.min_text_norm = norm
                for term, weight in bag.items():
                    if weight > self.term_max.get(term, 0.0):
                        self.term_max[term] = weight
            self._update_lift(item, engine, media=False)
        elif isinstance(item, MediaObject):
            self.has_media = True
            features = engine.media._features(item)
            norm = float(np.linalg.norm(features))
            if norm > self.max_media_norm:
                self.max_media_norm = norm
            self._update_lift(item, engine, media=True)
        else:
            # Plain base items would TypeError in the lifter; never prune
            # around them so the exhaustive and pruned paths agree.
            self.unbounded = True

    def _update_lift(
        self, item: InformationItem, engine: "MatchingEngine", media: bool
    ) -> None:
        lifter = engine.cross.lifter
        if media and not lifter.is_fitted:
            # Cross bounds unavailable; only media/media scoring is
            # possible anyway, and a mixed pool would raise identically
            # in the exhaustive path.
            self.unbounded = True
            return
        vector, norm = lifter.lift_with_norm(item)
        if norm <= 0.0:
            return  # zero lift scores 0 against everything
        sum_ratio = float(vector.sum()) / norm
        max_ratio = float(vector.max()) / norm
        if media:
            if sum_ratio > self.media_lift_sum_ratio:
                self.media_lift_sum_ratio = sum_ratio
            if max_ratio > self.media_lift_max_ratio:
                self.media_lift_max_ratio = max_ratio
        else:
            if sum_ratio > self.text_lift_sum_ratio:
                self.text_lift_sum_ratio = sum_ratio
            if max_ratio > self.text_lift_max_ratio:
                self.text_lift_max_ratio = max_ratio

    # ------------------------------------------------------------------
    # agora: shard-safe
    def ceiling(self, state: Optional[QueryBoundState]) -> float:
        """Padded upper bound on any candidate's score for this query."""
        if state is None or self.unbounded:
            return UNBOUNDED
        if self.count == 0:
            return 0.0
        bound = 0.0
        if state.is_text:
            if self.has_text:
                bound = max(bound, self._text_bound(state))
            if self.has_media:
                bound = max(
                    bound,
                    self._cross_bound(
                        state, self.media_lift_sum_ratio, self.media_lift_max_ratio
                    ),
                )
        else:
            if self.has_media:
                # media score = (1 + dot)/2 with dot <= ||q||·||c||
                bound = max(
                    bound,
                    (1.0 + state.feature_norm * self.max_media_norm) / 2.0,
                )
            if self.has_text:
                bound = max(
                    bound,
                    self._cross_bound(
                        state, self.text_lift_sum_ratio, self.text_lift_max_ratio
                    ),
                )
        return pad(bound)

    def _text_bound(self, state: QueryBoundState) -> float:
        """Term-index bound on text/text cosine (clipped metric <= 1)."""
        if state.bag_norm <= 0.0 or not state.bag or self.min_text_norm == UNBOUNDED:
            return 0.0
        dot_cap = 0.0
        for term, weight in state.bag.items():
            chunk_weight = self.term_max.get(term)
            if chunk_weight is not None:
                dot_cap += weight * chunk_weight
        if dot_cap <= 0.0:
            return 0.0
        return min(1.0, dot_cap / (state.bag_norm * self.min_text_norm))

    def _cross_bound(
        self, state: QueryBoundState, sum_ratio: float, max_ratio: float
    ) -> float:
        """Hölder bound on non-negative concept-space cosine (<= 1)."""
        if state.lift_norm is None:
            return UNBOUNDED  # lifter unavailable: cannot bound
        if state.lift_norm <= 0.0:
            return 0.0  # zero query lift scores 0 everywhere
        dot_cap = min(
            state.lift_max * sum_ratio, state.lift_sum * max_ratio
        )
        return min(1.0, dot_cap / state.lift_norm)

    # ------------------------------------------------------------------
    # agora: shard-safe
    def as_dict(self) -> Dict[str, object]:
        """Comparable snapshot (used by the invalidation fuzz suite)."""
        return {
            "count": self.count,
            "term_max": dict(self.term_max),
            "min_text_norm": self.min_text_norm,
            "has_text": self.has_text,
            "max_media_norm": self.max_media_norm,
            "has_media": self.has_media,
            "text_lift_sum_ratio": self.text_lift_sum_ratio,
            "text_lift_max_ratio": self.text_lift_max_ratio,
            "media_lift_sum_ratio": self.media_lift_sum_ratio,
            "media_lift_max_ratio": self.media_lift_max_ratio,
            "unbounded": self.unbounded,
        }


class BlockBounds:
    """Chunked bound state over an ordered candidate pool.

    Mirrors the candidate order of a
    :class:`~repro.uncertainty.matching.CandidateBlock`: chunk ``i``
    covers candidate positions ``[i·CHUNK_SIZE, (i+1)·CHUNK_SIZE)``.
    ``aggregate`` carries the same bounds over the whole pool — the
    per-domain score ceiling sources publish through their
    :class:`~repro.sources.index.CollectionIndex` stat cache.
    """

    def __init__(self, engine: "MatchingEngine", chunk_size: int = CHUNK_SIZE):
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.engine = engine
        self.chunk_size = chunk_size
        self.chunks: List[BoundStats] = []
        self.aggregate = BoundStats()
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def extend(self, items: Sequence[InformationItem]) -> None:
        """Fold appended candidates into chunk and aggregate bounds."""
        for item in items:
            if self._count % self.chunk_size == 0:
                self.chunks.append(BoundStats())
            self.chunks[-1].update(item, self.engine)
            self.aggregate.update(item, self.engine)
            self._count += 1

    # ------------------------------------------------------------------
    # agora: shard-safe
    def query_state(self, query: InformationItem) -> Optional[QueryBoundState]:
        """Query-side bound state; ``None`` if the query is unprunable."""
        engine = self.engine
        lifter = engine.cross.lifter
        if isinstance(query, TextDocument):
            bag, bag_norm = engine.text._bag(query)
            vector, lift_norm = lifter.lift_with_norm(query)
            return QueryBoundState(
                is_text=True,
                bag=bag,
                bag_norm=bag_norm,
                lift_norm=lift_norm,
                lift_max=float(vector.max()) if vector.size else 0.0,
                lift_sum=float(vector.sum()),
            )
        if isinstance(query, MediaObject):
            features = engine.media._features(query)
            state = QueryBoundState(
                is_text=False,
                feature_norm=float(np.linalg.norm(features)),
            )
            if lifter.is_fitted:
                vector, lift_norm = lifter.lift_with_norm(query)
                state.lift_norm = lift_norm
                state.lift_max = float(vector.max()) if vector.size else 0.0
                state.lift_sum = float(vector.sum())
            return state
        return None  # compound / base queries fall back to full scoring

    # agora: shard-safe
    def chunk_ranges(self, limit: int) -> List[Tuple[int, int, BoundStats]]:
        """``(start, stop, stats)`` triples covering positions [0, limit).

        The final chunk's stats may cover candidates beyond ``limit``; a
        superset's ceiling is still a valid (looser) bound for the part
        inside the prefix.
        """
        ranges: List[Tuple[int, int, BoundStats]] = []
        for index, stats in enumerate(self.chunks):
            start = index * self.chunk_size
            if start >= limit:
                break
            stop = min(start + self.chunk_size, limit)
            ranges.append((start, stop, stats))
        return ranges


@dataclass
class PruneStats:
    """What one pruned rank call did (mirrored into ``repro.obs``)."""

    candidates_total: int = 0
    candidates_scored: int = 0
    chunks_total: int = 0
    chunks_skipped: int = 0
    #: the query type admitted bounds at all
    prunable: bool = True
    #: whole-domain ceiling skip (no chunk was even inspected)
    domain_skipped: bool = False

    @property
    def candidates_skipped(self) -> int:
        """How many candidate scorings the bounds avoided."""
        return self.candidates_total - self.candidates_scored

    @property
    def scored_fraction(self) -> float:
        """Fraction of candidates actually scored (1.0 when empty)."""
        if self.candidates_total == 0:
            return 1.0
        return self.candidates_scored / self.candidates_total
