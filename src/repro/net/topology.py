"""Overlay topologies for the agora's peer network.

The Open Agora is "a distributed environment of independent information
systems"; we model its overlay as an undirected graph whose edges carry
latency and bandwidth.  Three standard families are provided — random
(Erdős–Rényi), small-world (Watts–Strogatz) and scale-free
(Barabási–Albert) — all forced to be connected so every peer is reachable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

import networkx as nx
import numpy as np

from repro.sim.rng import ScopedStreams


@dataclass(frozen=True)
class LinkSpec:
    """Properties of one overlay link."""

    latency: float  # one-way propagation delay (virtual time units)
    bandwidth: float  # payload units per virtual time unit


class Topology:
    """An overlay graph with per-link latency/bandwidth.

    Node identifiers are strings ``"n0" … "n{k-1}"``.
    """

    def __init__(self, graph: nx.Graph, links: Dict[Tuple[str, str], LinkSpec]):
        if graph.number_of_nodes() == 0:
            raise ValueError("topology must have at least one node")
        if not nx.is_connected(graph):
            raise ValueError("topology must be connected")
        self.graph = graph
        self._links = links

    # ------------------------------------------------------------------
    @property
    def nodes(self) -> List[str]:
        """Sorted node identifiers."""
        return sorted(self.graph.nodes)

    @property
    def node_count(self) -> int:
        """Number of overlay nodes."""
        return self.graph.number_of_nodes()

    @property
    def edge_count(self) -> int:
        """Number of overlay links."""
        return self.graph.number_of_edges()

    def neighbors(self, node: str) -> List[str]:
        """Sorted neighbours of ``node``."""
        return sorted(self.graph.neighbors(node))

    def link(self, a: str, b: str) -> LinkSpec:
        """Return the link spec for edge ``(a, b)`` in either orientation."""
        key = (a, b) if (a, b) in self._links else (b, a)
        try:
            return self._links[key]
        except KeyError:
            raise KeyError(f"no link between {a!r} and {b!r}") from None

    def has_link(self, a: str, b: str) -> bool:
        """Whether a direct link joins ``a`` and ``b``."""
        return self.graph.has_edge(a, b)

    def shortest_path(self, source: str, target: str) -> List[str]:
        """Latency-weighted shortest path (node list, inclusive)."""
        return nx.shortest_path(self.graph, source, target, weight="latency")

    def path_latency(self, path: Iterable[str]) -> float:
        """Sum of link latencies along ``path``."""
        path = list(path)
        total = 0.0
        for a, b in zip(path, path[1:]):
            total += self.link(a, b).latency
        return total

    def diameter_latency(self) -> float:
        """Maximum pairwise latency-weighted distance (small graphs only)."""
        lengths = dict(nx.all_pairs_dijkstra_path_length(self.graph, weight="latency"))
        return max(max(d.values()) for d in lengths.values())

    def __repr__(self) -> str:
        return f"Topology(nodes={self.node_count}, edges={self.edge_count})"


def _assign_links(
    graph: nx.Graph,
    streams: ScopedStreams,
    latency_range: Tuple[float, float],
    bandwidth_range: Tuple[float, float],
) -> Dict[Tuple[str, str], LinkSpec]:
    rng = streams.stream("links")
    links: Dict[Tuple[str, str], LinkSpec] = {}
    for a, b in sorted(graph.edges):
        latency = float(rng.uniform(*latency_range))
        bandwidth = float(rng.uniform(*bandwidth_range))
        graph.edges[a, b]["latency"] = latency
        links[(a, b)] = LinkSpec(latency=latency, bandwidth=bandwidth)
    return links


def _relabel(graph: nx.Graph) -> nx.Graph:
    mapping = {old: f"n{index}" for index, old in enumerate(sorted(graph.nodes))}
    return nx.relabel_nodes(graph, mapping)


def _ensure_connected(graph: nx.Graph, rng: np.random.Generator) -> nx.Graph:
    """Join disconnected components with random bridge edges."""
    components = [sorted(c) for c in nx.connected_components(graph)]
    while len(components) > 1:
        a = components[0][int(rng.integers(len(components[0])))]
        b = components[1][int(rng.integers(len(components[1])))]
        graph.add_edge(a, b)
        components = [sorted(c) for c in nx.connected_components(graph)]
    return graph


def random_topology(
    n_nodes: int,
    streams: ScopedStreams,
    edge_probability: float = 0.2,
    latency_range: Tuple[float, float] = (0.01, 0.2),
    bandwidth_range: Tuple[float, float] = (10.0, 100.0),
) -> Topology:
    """Connected Erdős–Rényi overlay."""
    rng = streams.stream("topology")
    graph = nx.gnp_random_graph(n_nodes, edge_probability, seed=int(rng.integers(2**31)))
    graph = _ensure_connected(graph, rng)
    graph = _relabel(graph)
    links = _assign_links(graph, streams, latency_range, bandwidth_range)
    return Topology(graph, links)


def small_world_topology(
    n_nodes: int,
    streams: ScopedStreams,
    k_neighbors: int = 4,
    rewire_probability: float = 0.2,
    latency_range: Tuple[float, float] = (0.01, 0.2),
    bandwidth_range: Tuple[float, float] = (10.0, 100.0),
) -> Topology:
    """Connected Watts–Strogatz overlay."""
    if n_nodes <= k_neighbors:
        raise ValueError("n_nodes must exceed k_neighbors")
    rng = streams.stream("topology")
    graph = nx.connected_watts_strogatz_graph(
        n_nodes, k_neighbors, rewire_probability, seed=int(rng.integers(2**31))
    )
    graph = _relabel(graph)
    links = _assign_links(graph, streams, latency_range, bandwidth_range)
    return Topology(graph, links)


def scale_free_topology(
    n_nodes: int,
    streams: ScopedStreams,
    attachment: int = 2,
    latency_range: Tuple[float, float] = (0.01, 0.2),
    bandwidth_range: Tuple[float, float] = (10.0, 100.0),
) -> Topology:
    """Barabási–Albert overlay (hubs model large repositories)."""
    if n_nodes <= attachment:
        raise ValueError("n_nodes must exceed attachment")
    rng = streams.stream("topology")
    graph = nx.barabasi_albert_graph(n_nodes, attachment, seed=int(rng.integers(2**31)))
    graph = _relabel(graph)
    links = _assign_links(graph, streams, latency_range, bandwidth_range)
    return Topology(graph, links)


def star_topology(
    n_nodes: int,
    streams: ScopedStreams,
    latency_range: Tuple[float, float] = (0.01, 0.2),
    bandwidth_range: Tuple[float, float] = (10.0, 100.0),
) -> Topology:
    """A hub-and-spoke overlay (useful as a degenerate baseline)."""
    if n_nodes < 2:
        raise ValueError("star needs at least 2 nodes")
    graph = nx.star_graph(n_nodes - 1)
    graph = _relabel(graph)
    links = _assign_links(graph, streams, latency_range, bandwidth_range)
    return Topology(graph, links)
