"""Tests for churn and load models."""

import pytest

from repro.net import ChurnSpec, LoadModel, LoadSpec, NodeHealth
from repro.sim import RngStreams, Simulator


class TestNodeHealth:
    def test_nodes_start_up(self):
        sim = Simulator()
        health = NodeHealth(sim, ["a", "b"], sim.rng.spawn("h"), enabled=False)
        assert health.is_up("a")
        assert health.availability() == 1.0

    def test_set_state(self):
        sim = Simulator()
        health = NodeHealth(sim, ["a", "b"], sim.rng.spawn("h"), enabled=False)
        health.set_state("a", False)
        assert not health.is_up("a")
        assert health.up_nodes() == ["b"]
        assert health.availability() == 0.5

    def test_unknown_node(self):
        sim = Simulator()
        health = NodeHealth(sim, ["a"], sim.rng.spawn("h"), enabled=False)
        with pytest.raises(KeyError):
            health.set_state("z", False)
        assert health.is_up("z") is False

    def test_listeners_fire_on_change(self):
        sim = Simulator()
        health = NodeHealth(sim, ["a"], sim.rng.spawn("h"), enabled=False)
        changes = []
        health.on_change(lambda node, up: changes.append((node, up)))
        health.set_state("a", False)
        health.set_state("a", False)  # no-op
        health.set_state("a", True)
        assert changes == [("a", False), ("a", True)]

    def test_set_state_notifies_exactly_once_per_transition(self):
        sim = Simulator()
        health = NodeHealth(sim, ["a", "b"], sim.rng.spawn("h"), enabled=False)
        calls = []
        health.on_change(lambda node, up: calls.append((node, up)))
        health.on_change(lambda node, up: calls.append((node, up)))
        health.set_state("a", False)
        assert calls == [("a", False), ("a", False)]
        calls.clear()
        # Repeating the same state is a no-op: no listener fires.
        health.set_state("a", False)
        assert calls == []
        health.set_state("a", True)
        health.set_state("b", False)
        assert calls.count(("a", True)) == 2
        assert calls.count(("b", False)) == 2
        assert len(calls) == 4

    def test_disabled_churn_schedules_nothing(self):
        sim = Simulator(seed=9)
        NodeHealth(
            sim,
            [f"n{i}" for i in range(8)],
            sim.rng.spawn("h"),
            spec=ChurnSpec(mean_uptime=1.0, mean_downtime=1.0),
            enabled=False,
        )
        assert sim.pending == 0
        sim.run(until=100.0)
        assert sim.trace.counter("net.churn_transitions") == 0

    def test_churn_produces_transitions(self):
        sim = Simulator(seed=2)
        spec = ChurnSpec(mean_uptime=10.0, mean_downtime=5.0)
        NodeHealth(sim, [f"n{i}" for i in range(10)], sim.rng.spawn("h"), spec=spec)
        sim.run(until=100.0)
        assert sim.trace.counter("net.churn_transitions") > 0

    def test_invalid_churn_spec(self):
        with pytest.raises(ValueError):
            ChurnSpec(mean_uptime=0.0)


class TestLoadModel:
    def _model(self, capacity=4.0):
        return LoadModel(
            ["a", "b"], RngStreams(1).spawn("l"), LoadSpec(capacity=capacity)
        )

    def test_begin_end(self):
        model = self._model()
        model.begin("a")
        model.begin("a")
        assert model.load("a") == 2.0
        model.end("a")
        assert model.load("a") == 1.0

    def test_load_never_negative(self):
        model = self._model()
        model.end("a")
        assert model.load("a") == 0.0

    def test_unknown_node(self):
        model = self._model()
        with pytest.raises(KeyError):
            model.begin("z")

    def test_decline_probability_monotone_in_load(self):
        model = self._model(capacity=2.0)
        p_idle = model.decline_probability("a")
        for __ in range(6):
            model.begin("a")
        p_loaded = model.decline_probability("a")
        assert p_loaded > p_idle
        assert p_loaded > 0.9

    def test_decline_probability_strictly_monotone_in_utilisation(self):
        model = self._model(capacity=4.0)
        probabilities = []
        for __ in range(12):
            probabilities.append(model.decline_probability("a"))
            model.begin("a")
        assert all(
            later > earlier
            for earlier, later in zip(probabilities, probabilities[1:])
        )
        assert probabilities[0] < 0.5 < probabilities[-1]

    def test_decline_probability_half_at_capacity(self):
        model = self._model(capacity=3.0)
        for __ in range(3):
            model.begin("a")
        assert model.decline_probability("a") == pytest.approx(0.5)

    def test_idle_node_rarely_declines(self):
        model = self._model(capacity=10.0)
        declines = sum(model.declines("a") for __ in range(200))
        assert declines < 20

    def test_slowdown_grows_with_load(self):
        model = self._model(capacity=2.0)
        base = model.service_slowdown("a")
        for __ in range(4):
            model.begin("a")
        assert model.service_slowdown("a") > base

    def test_invalid_spec(self):
        with pytest.raises(ValueError):
            LoadSpec(capacity=0.0)
        with pytest.raises(ValueError):
            LoadSpec(decline_sharpness=-1.0)
