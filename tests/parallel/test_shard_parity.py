"""Property tests: sharded rank == single-process rank, *bitwise*.

These run the sharding logic in-process — partials are computed exactly
the way a worker would (a block over the shard's slice of the pool) but
without subprocess machinery, so hypothesis can hammer the merge layer
with adversarial worlds: random shard counts, cloned documents (exact
duplicate scores competing at the cut), zero-term documents, live-ingest
extension sequences, and floors placed exactly on achieved scores.  The
subprocess transport is exercised separately in ``test_pool.py``; the
parity argument itself (slice invariance + total order + per-shard
top-k coverage, see ``repro.parallel.merge``) is what is tested here.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    CorpusGenerator,
    DomainSpec,
    FeatureExtractor,
    TextDocument,
    TopicSpace,
    Vocabulary,
)
from repro.parallel import (
    Placement,
    ScanCostModel,
    merge_prune_stats,
    merge_ranked,
    merge_scores,
    partition_domains,
    single_placement,
    slice_placements,
    slice_ranges,
    stable_worker_for,
)
from repro.sim import RngStreams
from repro.uncertainty import build_matching_engine
from repro.uncertainty.pruning import PruneStats

pytestmark = pytest.mark.property

POOL_SIZE = 40


@pytest.fixture(scope="module")
def shard_world():
    """A fixed mixed-type pool, a fitted engine, and probe queries."""
    streams = RngStreams(seed=909).spawn("shard-parity")
    space = TopicSpace(8)
    vocabulary = Vocabulary(
        space, streams.spawn("v"), vocabulary_size=400, terms_per_topic=50
    )
    corpus = CorpusGenerator(
        space, vocabulary, streams.spawn("c"), feature_dimensions=16
    )
    extractor = FeatureExtractor(16, streams.spawn("f"))

    def spec(name, mix):
        return DomainSpec(
            name=name,
            topic_prior={"folk-jewelry": 0.6, "dance-forms": 0.4},
            type_mix=mix,
            concentration=0.4,
        )

    sample = corpus.generate(
        spec("sample", {"text": 0.0, "media": 1.0, "compound": 0.0}), 40
    )
    engine = build_matching_engine(vocabulary, extractor, lifter_sample=sample)
    pool = corpus.generate(
        spec("pool", {"text": 0.4, "media": 0.4, "compound": 0.2}), POOL_SIZE
    )
    queries = corpus.generate(
        spec("query", {"text": 0.5, "media": 0.3, "compound": 0.2}), 6
    )
    return engine, pool, queries


def _clone(doc, index):
    """Same content under a fresh id — guarantees exact duplicate scores."""
    return TextDocument(
        item_id=f"dup-{index}-{doc.item_id}",
        domain=doc.domain,
        latent=doc.latent,
        terms=dict(doc.terms),
    )


def _sharded_topk(engine, items, n_shards, query, k, limit, floor):
    """What the pool computes: per-slice worker top-k, merged.

    Each slice gets its own freshly prepared block — exactly what a
    worker holds — and partials carry global positions.
    """
    partials = []
    stats_parts = []
    for start, stop in slice_ranges(len(items), n_shards):
        local_limit = min(stop, limit) - start
        if local_limit <= 0:
            continue
        block = engine.prepare(items[start:stop])
        pairs, stats = engine.rank_block_topk(
            query, block, k, limit=local_limit, score_floor=floor
        )
        pos_by_id = {item.item_id: start + i for i, item in enumerate(items[start:stop])}
        partials.append([(pos_by_id[item.item_id], s) for item, s in pairs])
        stats_parts.append(stats)
    merged = merge_ranked(items, partials, k=k, score_floor=floor)
    return merged, merge_prune_stats(stats_parts)


def _assert_bitwise(actual, expected):
    assert [i.item_id for i, __ in actual] == [i.item_id for i, __ in expected]
    assert [s for __, s in actual] == [s for __, s in expected]  # bitwise


class TestShardedRankParity:
    @settings(max_examples=40, deadline=None)
    @given(
        n_shards=st.integers(min_value=1, max_value=7),
        clones=st.lists(
            st.integers(min_value=0, max_value=POOL_SIZE - 1),
            min_size=0, max_size=5,
        ),
        query_index=st.integers(min_value=0, max_value=5),
        k=st.integers(min_value=1, max_value=12),
        floor=st.sampled_from([0.0, 0.3, 0.6]),
    )
    def test_topk_merge_matches_single_process(
        self, shard_world, n_shards, clones, query_index, k, floor
    ):
        """Merged per-shard top-k == rank_block_topk, ties included."""
        engine, pool, queries = shard_world
        items = list(pool) + [
            _clone(pool[i], j)
            for j, i in enumerate(clones)
            if isinstance(pool[i], TextDocument)
        ]
        query = queries[query_index]
        block = engine.prepare(items)
        expected, __ = engine.rank_block_topk(
            query, block, k, limit=len(items), score_floor=floor
        )
        actual, stats = _sharded_topk(
            engine, items, n_shards, query, k, len(items), floor
        )
        _assert_bitwise(actual, expected)
        assert stats.candidates_total == len(items)

    @settings(max_examples=30, deadline=None)
    @given(
        n_shards=st.integers(min_value=1, max_value=6),
        limit=st.integers(min_value=0, max_value=POOL_SIZE),
        query_index=st.integers(min_value=0, max_value=5),
    )
    def test_score_concatenation_matches_full_scan(
        self, shard_world, n_shards, limit, query_index
    ):
        """Per-slice score vectors concatenate to the full scan, bitwise."""
        engine, pool, queries = shard_world
        query = queries[query_index]
        block = engine.prepare(pool)
        expected = block.score(query, limit=limit)
        parts = []
        for start, stop in slice_ranges(len(pool), n_shards):
            stop = min(stop, limit)
            if stop <= start:
                continue
            shard_block = engine.prepare(pool[start:stop])
            parts.append(shard_block.score(query))
        merged = merge_scores(parts)
        assert merged.dtype == np.float64
        assert merged.tolist() == expected.tolist()  # bitwise

    @settings(max_examples=25, deadline=None)
    @given(
        n_shards=st.integers(min_value=1, max_value=5),
        split=st.integers(min_value=1, max_value=POOL_SIZE - 1),
        query_index=st.integers(min_value=0, max_value=5),
        k=st.integers(min_value=1, max_value=10),
    )
    def test_live_ingest_extension_keeps_parity(
        self, shard_world, n_shards, split, query_index, k
    ):
        """Extending the tail shard mid-sequence never breaks parity.

        Mirrors the pool's live-ingest protocol: the appended run lands
        on the final shard (contiguity, not balance), other shards are
        untouched, and the merged answer must still be bitwise the
        single-process answer over the grown pool.
        """
        engine, pool, queries = shard_world
        initial, delta = pool[:split], pool[split:]
        query = queries[query_index]

        ranges = slice_ranges(len(initial), n_shards)
        blocks = [engine.prepare(initial[start:stop]) for start, stop in ranges]
        # Queries against the initial slicing, then ingest, then re-query.
        for grown in (False, True):
            if grown:
                blocks[-1].extend(delta)
                last_start, last_stop = ranges[-1]
                ranges[-1] = (last_start, last_stop + len(delta))
            items = initial + delta if grown else initial
            partials = []
            for (start, stop), block in zip(ranges, blocks):
                pairs, __ = engine.rank_block_topk(
                    query, block, k, limit=stop - start
                )
                pos_by_id = {
                    item.item_id: start + i
                    for i, item in enumerate(items[start:stop])
                }
                partials.append([(pos_by_id[i.item_id], s) for i, s in pairs])
            expected, __ = engine.rank_block_topk(
                query, engine.prepare(items), k, limit=len(items)
            )
            _assert_bitwise(merge_ranked(items, partials, k=k), expected)

    @settings(max_examples=20, deadline=None)
    @given(
        query_index=st.integers(min_value=0, max_value=5),
        cut_position=st.integers(min_value=0, max_value=POOL_SIZE - 1),
        n_shards=st.integers(min_value=2, max_value=5),
    )
    def test_floor_exactly_on_achieved_score(
        self, shard_world, query_index, cut_position, n_shards
    ):
        """A floor landing exactly on a score cuts identically when sharded."""
        engine, pool, queries = shard_world
        query = queries[query_index]
        block = engine.prepare(pool)
        full = engine.rank_block(query, block)
        floor = full[cut_position][1]
        k = cut_position + 1
        expected, __ = engine.rank_block_topk(
            query, block, k, limit=len(pool), score_floor=floor
        )
        actual, __ = _sharded_topk(
            engine, pool, n_shards, query, k, len(pool), floor
        )
        _assert_bitwise(actual, expected)


class TestPartitioning:
    @settings(max_examples=100, deadline=None)
    @given(
        n_items=st.integers(min_value=0, max_value=500),
        n_shards=st.integers(min_value=1, max_value=32),
    )
    def test_slice_ranges_cover_and_balance(self, n_items, n_shards):
        ranges = slice_ranges(n_items, n_shards)
        assert len(ranges) == n_shards
        cursor = 0
        widths = []
        for start, stop in ranges:
            assert start == cursor and stop >= start
            widths.append(stop - start)
            cursor = stop
        assert cursor == n_items
        assert max(widths) - min(widths) <= 1

    @settings(max_examples=100, deadline=None)
    @given(
        domains=st.lists(st.text(min_size=1, max_size=8), max_size=20),
        n_shards=st.integers(min_value=1, max_value=8),
    )
    def test_partition_domains_is_order_independent(self, domains, n_shards):
        forward = partition_domains(domains, n_shards)
        backward = partition_domains(list(reversed(domains)), n_shards)
        assert forward == backward
        assert all(0 <= worker < n_shards for worker in forward.values())
        if forward:
            counts = [0] * n_shards
            for worker in forward.values():
                counts[worker] += 1
            assert max(counts) - min(counts) <= 1

    @settings(max_examples=100, deadline=None)
    @given(
        name=st.text(max_size=16),
        n_shards=st.integers(min_value=1, max_value=16),
    )
    def test_stable_worker_in_range_and_deterministic(self, name, n_shards):
        worker = stable_worker_for(name, n_shards)
        assert 0 <= worker < n_shards
        assert stable_worker_for(name, n_shards) == worker

    def test_placement_validation(self):
        with pytest.raises(ValueError):
            Placement(worker=-1, start=0, stop=1)
        with pytest.raises(ValueError):
            Placement(worker=0, start=3, stop=2)
        assert Placement(worker=0, start=2, stop=5).width == 3

    def test_single_placement_covers_pool(self):
        (placement,) = single_placement(17, worker=3)
        assert (placement.worker, placement.start, placement.stop) == (3, 0, 17)

    @settings(max_examples=60, deadline=None)
    @given(
        n_items=st.integers(min_value=0, max_value=200),
        n_shards=st.integers(min_value=1, max_value=9),
    )
    def test_slice_placements_mirror_ranges(self, n_items, n_shards):
        placements = slice_placements(n_items, n_shards)
        assert [(p.start, p.stop) for p in placements] == slice_ranges(
            n_items, n_shards
        )
        assert [p.worker for p in placements] == list(range(n_shards))


class TestMergeStats:
    def test_merge_prune_stats_sums_counts(self):
        merged = merge_prune_stats(
            [
                PruneStats(candidates_total=10, candidates_scored=4,
                           chunks_total=2, chunks_skipped=1),
                PruneStats(candidates_total=6, candidates_scored=6,
                           chunks_total=1, chunks_skipped=0, prunable=False),
            ]
        )
        assert merged.candidates_total == 16
        assert merged.candidates_scored == 10
        assert merged.chunks_total == 3
        assert merged.chunks_skipped == 1
        assert not merged.prunable  # one unprunable shard is enough
        assert not merged.domain_skipped

    def test_merge_prune_stats_empty_is_identity(self):
        assert merge_prune_stats([]) == PruneStats()

    def test_merge_scores_empty(self):
        assert merge_scores([]).shape == (0,)


class TestScanCostModel:
    def test_speedup_meets_bench_gate(self):
        """The committed CI gate: ≥1.8x at 4 shards over the 400-pool."""
        assert ScanCostModel().speedup(400, 4) >= 1.8

    @settings(max_examples=80, deadline=None)
    @given(
        n=st.integers(min_value=0, max_value=100_000),
        s=st.integers(min_value=1, max_value=64),
    )
    def test_latency_positive_and_single_shard_is_in_process(self, n, s):
        model = ScanCostModel()
        assert model.rank_latency(n, s) > 0.0
        assert model.rank_latency(n, 1) == pytest.approx(
            model.startup_time + model.per_candidate_time * n
        )

    @settings(max_examples=40, deadline=None)
    @given(n=st.integers(min_value=2000, max_value=100_000))
    def test_large_pools_scale_monotonically(self, n):
        """On large pools, more shards never slow the critical path."""
        model = ScanCostModel()
        curve = model.speedup_curve(n, [1, 2, 4, 8])
        assert curve[1] == pytest.approx(1.0)
        assert curve[1] <= curve[2] <= curve[4] <= curve[8]

    def test_tiny_pools_report_a_slowdown(self):
        """The model is honest: sharding a near-empty scan is a loss."""
        model = ScanCostModel()
        assert model.speedup(1, 8) < 1.0
        assert model.speedup(0, 4) < 1.0

    def test_validation(self):
        model = ScanCostModel()
        with pytest.raises(ValueError):
            model.rank_latency(-1, 2)
        with pytest.raises(ValueError):
            model.rank_latency(10, 0)
        with pytest.raises(ValueError):
            ScanCostModel(startup_time=-0.1)
