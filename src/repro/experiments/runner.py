"""Experiment result collection.

Each benchmark builds an :class:`ExperimentResult`, adds rows, and prints
the table the experiment index in DESIGN.md promises.  Results can also be
appended to a report file (EXPERIMENTS.md workflow), optionally followed
by the run's observability dashboard (:func:`append_run_dashboard`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Union

from repro.experiments.tables import render_table
from repro.obs.dashboard import append_dashboard, render_dashboard


@dataclass
class ExperimentResult:
    """Accumulates one experiment's table."""

    experiment_id: str
    title: str
    headers: List[str]
    rows: List[List] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *cells) -> None:
        """Append one row (must match the header width)."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, expected {len(self.headers)}"
            )
        self.rows.append(list(cells))

    def add_note(self, note: str) -> None:
        """Attach a free-text note rendered under the table."""
        self.notes.append(note)

    def render(self) -> str:
        """Render the table (plus notes) as fixed-width text."""
        parts = [render_table(self.headers, self.rows,
                              title=f"{self.experiment_id}: {self.title}")]
        for note in self.notes:
            parts.append(f"  note: {note}")
        return "\n".join(parts)

    def print(self) -> None:  # noqa: A003 - deliberate, mirrors CLI verbs
        """Print the rendered table to stdout."""
        print()
        print(self.render())

    def to_markdown(self) -> str:
        """Render the table as a GitHub-flavoured markdown section."""
        header_line = "| " + " | ".join(self.headers) + " |"
        separator = "|" + "|".join("---" for __ in self.headers) + "|"
        lines = [f"### {self.experiment_id}: {self.title}", "", header_line, separator]
        from repro.experiments.tables import format_cell

        for row in self.rows:
            lines.append("| " + " | ".join(format_cell(c) for c in row) + " |")
        for note in self.notes:
            lines.append(f"\n*{note}*")
        return "\n".join(lines)

    def append_to(self, path: Path) -> None:
        """Append the markdown rendering to a report file."""
        with open(path, "a") as handle:
            handle.write("\n" + self.to_markdown() + "\n")

    def to_csv(self) -> str:
        """Comma-separated rendering (for downstream plotting)."""
        import csv
        import io

        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(self.headers)
        writer.writerows(self.rows)
        return buffer.getvalue()

    def write_csv(self, path: Path) -> None:
        """Write the CSV rendering to ``path``."""
        Path(path).write_text(self.to_csv())


def render_run_dashboard(run: Any, title: str = "Run dashboard") -> str:
    """Render the observability dashboard of a finished run.

    ``run`` is anything with the :class:`repro.core.agora.Agora` surface
    (``sim.metrics``, optional ``tracer``, ``run_manifest()``) — taken by
    duck type so the experiment harness stays below the composition root
    in the layer DAG.
    """
    tracer = getattr(run, "tracer", None)
    spans = tracer.spans() if tracer is not None else None
    manifest = run.run_manifest() if hasattr(run, "run_manifest") else None
    return render_dashboard(
        run.sim.metrics, spans=spans, manifest=manifest, title=title
    )


def append_run_dashboard(
    path: Union[str, Path], run: Any, title: str = "Run dashboard"
) -> None:
    """Append a run's observability dashboard to a markdown report file."""
    tracer = getattr(run, "tracer", None)
    spans = tracer.spans() if tracer is not None else None
    manifest = run.run_manifest() if hasattr(run, "run_manifest") else None
    append_dashboard(
        path, run.sim.metrics, spans=spans, manifest=manifest, title=title
    )


class ExperimentSuite:
    """A collection of experiment results (used by `benchmarks/run_all`)."""

    def __init__(self) -> None:
        self._results: Dict[str, ExperimentResult] = {}

    def add(self, result: ExperimentResult) -> None:
        """Register one experiment result under its id."""
        self._results[result.experiment_id] = result

    def get(self, experiment_id: str) -> ExperimentResult:
        """Return the result stored under ``experiment_id``."""
        return self._results[experiment_id]

    def results(self) -> List[ExperimentResult]:
        """All results, ordered by experiment id."""
        return [self._results[k] for k in sorted(self._results)]

    def render_all(self) -> str:
        """Render every collected table, separated by blank lines."""
        return "\n\n".join(result.render() for result in self.results())
