"""Risk attitudes: choice under uncertainty.

Section 2 cites Machina's "Choice under uncertainty": "different attitudes
towards risk make people behave very differently under uncertainty."  We
model attitudes with constant absolute risk aversion (CARA) utilities over
normalised outcomes in [0, 1]:

    u(x) = (1 - exp(-a·x)) / (1 - exp(-a))   for a ≠ 0
    u(x) = x                                  for a = 0

``a > 0`` is risk-averse (concave), ``a < 0`` risk-seeking (convex).  The
certainty equivalent inverts u, so optimizers can compare uncertain plans
by the certain value a given user would trade them for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class RiskProfile:
    """A user's attitude towards uncertain outcomes.

    Attributes
    ----------
    aversion:
        CARA coefficient ``a``; positive = averse, zero = neutral,
        negative = seeking.  |a| beyond ~20 is numerically pointless.
    name:
        Optional label for reports.
    """

    aversion: float = 0.0
    name: str = "neutral"

    def __post_init__(self) -> None:
        if abs(self.aversion) > 50:
            raise ValueError("aversion coefficient out of sensible range")

    # ------------------------------------------------------------------
    def utility(self, value: float) -> float:
        """CARA utility of a sure outcome ``value`` in [0, 1]."""
        if not -1e-9 <= value <= 1.0 + 1e-9:
            raise ValueError("value must be in [0, 1]")
        value = float(np.clip(value, 0.0, 1.0))
        a = self.aversion
        if abs(a) < 1e-9:
            return value
        return float((1.0 - np.exp(-a * value)) / (1.0 - np.exp(-a)))

    def inverse_utility(self, utility: float) -> float:
        """Value whose utility equals ``utility`` (the inverse of u)."""
        if not -1e-9 <= utility <= 1.0 + 1e-9:
            raise ValueError("utility must be in [0, 1]")
        utility = float(np.clip(utility, 0.0, 1.0))
        a = self.aversion
        if abs(a) < 1e-9:
            return utility
        inner = 1.0 - utility * (1.0 - np.exp(-a))
        return float(-np.log(inner) / a)

    def expected_utility(
        self, outcomes: Sequence[float], probabilities: Sequence[float]
    ) -> float:
        """Expected utility of a lottery over outcomes in [0, 1]."""
        outcomes = np.asarray(outcomes, dtype=float)
        probabilities = np.asarray(probabilities, dtype=float)
        if outcomes.shape != probabilities.shape:
            raise ValueError("outcomes and probabilities must align")
        if outcomes.size == 0:
            raise ValueError("lottery must have at least one outcome")
        if np.any(probabilities < 0) or abs(probabilities.sum() - 1.0) > 1e-6:
            raise ValueError("probabilities must be non-negative and sum to 1")
        return float(
            sum(p * self.utility(x) for x, p in zip(outcomes, probabilities))
        )

    def certainty_equivalent(
        self, outcomes: Sequence[float], probabilities: Sequence[float]
    ) -> float:
        """The sure value this user finds equivalent to the lottery."""
        return self.inverse_utility(self.expected_utility(outcomes, probabilities))

    def risk_premium(
        self, outcomes: Sequence[float], probabilities: Sequence[float]
    ) -> float:
        """Expected value minus certainty equivalent (>= 0 iff averse)."""
        outcomes_arr = np.asarray(outcomes, dtype=float)
        probabilities_arr = np.asarray(probabilities, dtype=float)
        expected = float(np.dot(outcomes_arr, probabilities_arr))
        return expected - self.certainty_equivalent(outcomes, probabilities)


def risk_averse(aversion: float = 4.0) -> RiskProfile:
    """A risk-averse profile (prefers sure things)."""
    if aversion <= 0:
        raise ValueError("averse profile needs positive aversion")
    return RiskProfile(aversion=aversion, name="averse")


def risk_neutral() -> RiskProfile:
    """A risk-neutral profile (maximises expected value)."""
    return RiskProfile(aversion=0.0, name="neutral")


def risk_seeking(appetite: float = 4.0) -> RiskProfile:
    """A risk-seeking profile (enjoys gambles)."""
    if appetite <= 0:
        raise ValueError("seeking profile needs positive appetite")
    return RiskProfile(aversion=-appetite, name="seeking")
