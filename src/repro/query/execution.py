"""Plan execution against live sources.

The executor walks a plan tree, sends each ``Retrieve`` leaf to its
assigned source, calibrates raw scores into match probabilities, merges
uncertain result sets, and audits the delivery into a QoS vector via the
oracle.  Retrieval leaves under one ``Merge`` run *in parallel*: the plan's
response time is the slowest branch, not the sum.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.qos.vector import QoSVector
from repro.query.algebra import Merge, PlanNode, Retrieve, Threshold, TopK
from repro.query.model import Query
from repro.query.oracle import RelevanceOracle
from repro.sources.registry import SourceRegistry
from repro.sources.source import SourceAnswer
from repro.uncertainty.calibration import BinnedCalibrator
from repro.uncertainty.results import UncertainMatch, UncertainResultSet

LatencyFn = Callable[[str], float]
TrustFn = Callable[[str], float]


@dataclass
class ExecutionContext:
    """Everything the executor needs besides the plan itself.

    Attributes
    ----------
    registry:
        Where live source objects are found.
    oracle:
        Audits deliveries (stands in for user judgement).
    calibrator:
        Maps raw match scores to probabilities; ``None`` uses the raw
        score as the probability (the uncalibrated baseline).
    now:
        Virtual time of execution.
    consumer_id:
        Who is asking (sources may blacklist or decline).
    latency:
        Network round-trip time to a source's node; default 0.
    trust:
        Consumer's current trust in a source; default 1.
    """

    registry: SourceRegistry
    oracle: RelevanceOracle
    calibrator: Optional[BinnedCalibrator] = None
    now: float = 0.0
    consumer_id: str = ""
    latency: Optional[LatencyFn] = None
    trust: Optional[TrustFn] = None

    def latency_to(self, source_id: str) -> float:
        """Network latency to a source (0 without a latency model)."""
        return self.latency(source_id) if self.latency is not None else 0.0

    def trust_in(self, source_id: str) -> float:
        """Trust in a source (1 without a trust model)."""
        return self.trust(source_id) if self.trust is not None else 1.0


@dataclass
class ExecutionResult:
    """Outcome of executing one plan."""

    query: Query
    results: UncertainResultSet
    delivered: QoSVector
    answers: List[SourceAnswer] = field(default_factory=list)
    declined_sources: List[str] = field(default_factory=list)
    response_time: float = 0.0

    @property
    def sources_used(self) -> List[str]:
        """Sorted sources that actually answered."""
        return sorted({a.source_id for a in self.answers if not a.declined})


class QueryExecutor:
    """Executes plan trees."""

    def __init__(self, context: ExecutionContext):
        self.context = context

    # ------------------------------------------------------------------
    def execute(self, plan: PlanNode, query: Query) -> ExecutionResult:
        """Run ``plan`` and audit the delivery."""
        answers: List[SourceAnswer] = []
        results, elapsed = self._run(plan, answers)
        declined = sorted(
            {a.source_id for a in answers if a.declined}
        )
        used_sources = sorted({a.source_id for a in answers if not a.declined})
        trust = (
            float(np.mean([self.context.trust_in(s) for s in used_sources]))
            if used_sources
            else 0.0
        )
        reachable = self._reachable_items(plan)
        delivered = self.context.oracle.delivered_qos(
            query=query,
            returned=results.items(),
            reachable=reachable,
            response_time=elapsed,
            now=self.context.now,
            source_trust=trust,
        )
        return ExecutionResult(
            query=query,
            results=results,
            delivered=delivered,
            answers=answers,
            declined_sources=declined,
            response_time=elapsed,
        )

    def execute_leaf(self, leaf: Retrieve):
        """Run a single retrieval leaf.

        Returns ``(results, elapsed, answer)`` — used by the collaborative
        multi-query optimizer to execute shared jobs exactly once.
        """
        answers: List[SourceAnswer] = []
        results, elapsed = self._run_retrieve(leaf, answers)
        return results, elapsed, answers[0]

    # ------------------------------------------------------------------
    def _run(self, node: PlanNode, answers: List[SourceAnswer]):
        if isinstance(node, Retrieve):
            return self._run_retrieve(node, answers)
        if isinstance(node, Merge):
            child_outputs = [self._run(child, answers) for child in node.children]
            merged = UncertainResultSet()
            for result_set, __ in child_outputs:
                merged = merged.merge(result_set)
            elapsed = max(elapsed for __, elapsed in child_outputs)
            return merged, elapsed
        if isinstance(node, Threshold):
            results, elapsed = self._run(node.child, answers)
            return results.filter_confidence(node.tau), elapsed
        if isinstance(node, TopK):
            results, elapsed = self._run(node.child, answers)
            return results.top_k(node.k), elapsed
        raise TypeError(f"unknown plan node {type(node).__name__}")

    def _run_retrieve(self, node: Retrieve, answers: List[SourceAnswer]):
        context = self.context
        source = context.registry.source(node.source_id)
        answer = source.answer(
            node.subquery, now=context.now, consumer_id=context.consumer_id
        )
        answers.append(answer)
        if answer.declined:
            return UncertainResultSet(), 0.0
        matches = []
        for item, score in answer.matches:
            score = float(np.clip(score, 0.0, 1.0))
            if context.calibrator is not None and context.calibrator.is_fitted:
                probability = context.calibrator.predict(score)
            else:
                probability = score
            matches.append(
                UncertainMatch(
                    item=item,
                    score=score,
                    probability=probability,
                    source_id=node.source_id,
                )
            )
        elapsed = answer.service_time + 2.0 * context.latency_to(node.source_id)
        return UncertainResultSet(matches), elapsed

    def _reachable_items(self, plan: PlanNode) -> List:
        """All items visible at any source the plan touches (dedup by id)."""
        context = self.context
        seen: Dict[str, object] = {}
        for leaf in plan.leaves():
            source = context.registry.source(leaf.source_id)
            for item in source.visible_items(context.now, domain=leaf.subquery.domain):
                seen.setdefault(item.item_id, item)
        return list(seen.values())
