"""Tests for plan search and baselines."""

import numpy as np
import pytest

from repro.data import TextDocument
from repro.optimizer import (
    CandidateAssignment,
    CostGreedyPlanner,
    ExhaustiveSearch,
    GreedySearch,
    LocalSearch,
    QualityGreedyPlanner,
    RandomPlanner,
    RoundRobinPlanner,
    baseline_suite,
    make_evaluator,
)
from repro.qos import QoSVector, QoSWeights
from repro.query import Query, QueryKind
from repro.sim import RngStreams
from repro.uncertainty import UncertainEstimate


def _query():
    return Query(
        kind=QueryKind.SIMILARITY,
        reference_item=TextDocument(
            item_id="ref", domain="museum", latent=np.array([1.0]), terms={"w00001": 1},
        ),
    )


def _candidate(query, domain, source_id, completeness, response_time, risk=0.05):
    return CandidateAssignment(
        subquery=query.restricted_to(domain),
        source_id=source_id,
        expected=QoSVector(response_time=response_time, completeness=completeness),
        cost=UncertainEstimate(mean=response_time, std=0.1 * response_time,
                               low=0.0, high=10 * response_time + 1),
        breach_risk=risk,
    )


@pytest.fixture
def table():
    query = _query()
    return {
        "j1": [
            _candidate(query, "museum", "good", 0.95, 1.0),
            _candidate(query, "museum", "slow", 0.95, 8.0),
            _candidate(query, "museum", "shallow", 0.30, 0.5),
        ],
        "j2": [
            _candidate(query, "auction", "ok", 0.7, 2.0),
            _candidate(query, "auction", "bad", 0.2, 6.0, risk=0.5),
        ],
    }


EVALUATOR = make_evaluator(QoSWeights(), price_sensitivity=0.02)


class TestExhaustive:
    def test_finds_obvious_best(self, table):
        result = ExhaustiveSearch().search(table, EVALUATOR)
        chosen = {
            job: replicas[0].source_id
            for job, replicas in result.best.plan.assignments.items()
        }
        assert chosen == {"j1": "good", "j2": "ok"}
        assert result.explored == 6

    def test_front_not_empty(self, table):
        result = ExhaustiveSearch().search(table, EVALUATOR)
        assert len(result.front) >= 1
        assert all(e.utility <= result.front[0].utility for e in result.front)

    def test_replication_considered(self, table):
        result = ExhaustiveSearch(max_replication=2).search(table, EVALUATOR)
        assert result.explored == 7  # 6 single + 1 replicated

    def test_space_guard(self, table):
        with pytest.raises(ValueError):
            ExhaustiveSearch(max_plans=2).search(table, EVALUATOR)

    def test_empty_table_rejected(self):
        with pytest.raises(ValueError):
            ExhaustiveSearch().search({}, EVALUATOR)


class TestGreedy:
    def test_matches_exhaustive_on_separable_problem(self, table):
        exhaustive = ExhaustiveSearch().search(table, EVALUATOR)
        greedy = GreedySearch().search(table, EVALUATOR)
        assert greedy.best.plan.signature() == exhaustive.best.plan.signature()

    def test_explored_is_sum_of_candidates(self, table):
        result = GreedySearch().search(table, EVALUATOR)
        assert result.explored == 5


class TestLocalSearch:
    def test_at_least_as_good_as_greedy(self, table):
        greedy = GreedySearch().search(table, EVALUATOR)
        local = LocalSearch().search(table, EVALUATOR)
        assert local.best.risk_adjusted_utility >= greedy.best.risk_adjusted_utility - 1e-12

    def test_invalid_iterations(self):
        with pytest.raises(ValueError):
            LocalSearch(max_iterations=0)


class TestBaselines:
    def test_random_covers_jobs(self, table):
        planner = RandomPlanner(RngStreams(3).spawn("b"))
        plan = planner.plan(table)
        assert set(plan.assignments) == {"j1", "j2"}

    def test_cost_greedy_picks_cheapest(self, table):
        plan = CostGreedyPlanner().plan(table)
        assert plan.assignments["j1"][0].source_id == "shallow"

    def test_quality_greedy_picks_most_complete(self, table):
        plan = QualityGreedyPlanner().plan(table)
        assert plan.assignments["j1"][0].source_id == "good"  # tie on completeness, cheaper wins

    def test_round_robin_cycles(self, table):
        planner = RoundRobinPlanner()
        first = planner.plan(table)
        second = planner.plan(table)
        assert (
            first.assignments["j1"][0].source_id
            != second.assignments["j1"][0].source_id
        )

    def test_suite_contains_four(self):
        assert len(baseline_suite(RngStreams(1).spawn("b"))) == 4

    def test_baselines_never_beat_exhaustive(self, table):
        exhaustive = ExhaustiveSearch().search(table, EVALUATOR)
        for planner in baseline_suite(RngStreams(5).spawn("b")):
            plan = planner.plan(table)
            assert EVALUATOR(plan).utility <= exhaustive.best.utility + 1e-9

    def test_empty_table_rejected(self):
        with pytest.raises(ValueError):
            CostGreedyPlanner().plan({})
