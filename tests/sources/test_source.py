"""Tests for information sources."""

import numpy as np
import pytest

from repro.net import LoadModel, LoadSpec, NodeHealth
from repro.sim import Simulator
from repro.sources import InformationSource, SourceQuality

from tests.conftest import make_source, make_topic_query


class TestSourceQuality:
    def test_defaults_valid(self):
        SourceQuality()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"coverage": 1.5},
            {"freshness_lag": -1.0},
            {"error_rate": 2.0},
            {"trust_class": "nonsense"},
            {"overpromise": -0.5},
        ],
    )
    def test_invalid_params(self, kwargs):
        with pytest.raises(ValueError):
            SourceQuality(**kwargs)


class TestIngestion:
    def test_full_coverage_indexes_everything(
        self, corpus_generator, matching_engine, streams
    ):
        source = make_source("s1", corpus_generator, matching_engine, streams, n_items=30)
        assert source.collection_size == 30

    def test_partial_coverage_drops_items(
        self, corpus_generator, matching_engine, streams
    ):
        source = make_source(
            "s1", corpus_generator, matching_engine, streams, n_items=200,
            quality=SourceQuality(coverage=0.5, freshness_lag=0.0),
        )
        assert 60 < source.collection_size < 140

    def test_freshness_lag_delays_visibility(
        self, corpus_generator, matching_engine, streams
    ):
        source = make_source(
            "s1", corpus_generator, matching_engine, streams, n_items=100,
            quality=SourceQuality(coverage=1.0, freshness_lag=50.0),
        )
        now_visible = len(source.visible_items(0.0))
        later_visible = len(source.visible_items(1000.0))
        assert now_visible < later_visible
        assert later_visible == 100

    def test_visible_items_filter_by_domain(
        self, corpus_generator, matching_engine, streams
    ):
        source = make_source("s1", corpus_generator, matching_engine, streams)
        assert source.visible_items(0.0, domain="no-such-domain") == []

    def test_empty_domains_rejected(self, matching_engine, streams):
        with pytest.raises(ValueError):
            InformationSource(
                "s1", "n1", [], SourceQuality(), matching_engine, streams
            )


class TestAnswering:
    def test_answers_topic_query(
        self, corpus_generator, matching_engine, streams, topic_space, vocabulary
    ):
        source = make_source("s1", corpus_generator, matching_engine, streams)
        query = make_topic_query(topic_space, vocabulary, "folk-jewelry", k=5)
        answer = source.answer(query.restricted_to("museum"), now=0.0)
        assert not answer.declined
        assert 0 < answer.size <= 5
        assert answer.service_time > 0
        assert answer.candidates_scanned == 40

    def test_scores_bounded(
        self, corpus_generator, matching_engine, streams, topic_space, vocabulary
    ):
        source = make_source("s1", corpus_generator, matching_engine, streams)
        query = make_topic_query(topic_space, vocabulary, "folk-jewelry")
        answer = source.answer(query.restricted_to("museum"), now=0.0)
        for __, score in answer.matches:
            assert 0.0 <= score <= 1.0

    def test_error_rate_corrupts_scores(
        self, corpus_generator, matching_engine, streams, topic_space, vocabulary
    ):
        clean = make_source(
            "clean", corpus_generator, matching_engine, streams,
            quality=SourceQuality(coverage=1.0, freshness_lag=0.0, error_rate=0.0),
        )
        noisy = make_source(
            "noisy", corpus_generator, matching_engine, streams,
            quality=SourceQuality(coverage=1.0, freshness_lag=0.0, error_rate=1.0),
        )
        query = make_topic_query(topic_space, vocabulary, "folk-jewelry", k=10)
        clean_answer = clean.answer(query.restricted_to("museum"), now=0.0)
        noisy_answer = noisy.answer(query.restricted_to("museum"), now=0.0)
        clean_scores = [s for __, s in clean_answer.matches]
        noisy_scores = [s for __, s in noisy_answer.matches]
        # Corrupted scores are uniform noise — much higher variance.
        assert np.std(noisy_scores) > np.std(clean_scores)


class TestParticipation:
    def test_blacklisted_consumer_declined(
        self, corpus_generator, matching_engine, streams, topic_space, vocabulary
    ):
        source = make_source("s1", corpus_generator, matching_engine, streams)
        source.blacklist.ban("iris")
        query = make_topic_query(topic_space, vocabulary, "folk-jewelry")
        answer = source.answer(query.restricted_to("museum"), now=0.0, consumer_id="iris")
        assert answer.declined
        assert answer.decline_reason == "blacklisted"

    def test_down_node_declined(
        self, corpus_generator, matching_engine, streams, topic_space, vocabulary
    ):
        sim = Simulator(seed=1)
        source = make_source("s1", corpus_generator, matching_engine, streams)
        health = NodeHealth(sim, [source.node_id], sim.rng.spawn("h"), enabled=False)
        source.health = health
        health.set_state(source.node_id, False)
        query = make_topic_query(topic_space, vocabulary, "folk-jewelry")
        answer = source.answer(query.restricted_to("museum"), now=0.0)
        assert answer.declined
        assert answer.decline_reason == "unavailable"

    def test_overload_declines(
        self, corpus_generator, matching_engine, streams, topic_space, vocabulary
    ):
        source = make_source("s1", corpus_generator, matching_engine, streams)
        load = LoadModel([source.node_id], streams.spawn("load"), LoadSpec(capacity=1.0))
        source.load = load
        for __ in range(20):
            load.begin(source.node_id)
        query = make_topic_query(topic_space, vocabulary, "folk-jewelry")
        answer = source.answer(query.restricted_to("museum"), now=0.0)
        assert answer.declined
        assert answer.decline_reason == "overloaded"

    def test_load_slows_service(
        self, corpus_generator, matching_engine, streams, topic_space, vocabulary
    ):
        source = make_source("s1", corpus_generator, matching_engine, streams)
        query = make_topic_query(topic_space, vocabulary, "folk-jewelry")
        base = source.answer(query.restricted_to("museum"), now=0.0).service_time
        load = LoadModel(
            [source.node_id], streams.spawn("load"),
            LoadSpec(capacity=100.0, decline_sharpness=0.0),
        )
        source.load = load
        for __ in range(90):
            load.begin(source.node_id)
        slowed = source.answer(query.restricted_to("museum"), now=0.0).service_time
        assert slowed > base


class TestAdvertising:
    def test_true_quality_reflects_parameters(
        self, corpus_generator, matching_engine, streams
    ):
        source = make_source(
            "s1", corpus_generator, matching_engine, streams,
            quality=SourceQuality(coverage=0.8, freshness_lag=0.0, error_rate=0.1),
        )
        truth = source.true_quality_vector(now=0.0, domain="museum")
        assert truth.correctness == pytest.approx(0.9)
        assert truth.completeness <= 0.8 + 1e-9

    def test_advertised_is_rosier_than_truth(
        self, corpus_generator, matching_engine, streams
    ):
        source = make_source(
            "s1", corpus_generator, matching_engine, streams,
            quality=SourceQuality(
                coverage=0.7, freshness_lag=10.0, error_rate=0.2, overpromise=0.3
            ),
        )
        truth = source.true_quality_vector(200.0, "museum")
        claimed = source.advertised_quality(200.0, "museum")
        assert claimed.completeness > truth.completeness
        assert claimed.correctness > truth.correctness
        assert claimed.response_time < truth.response_time

    def test_honest_source_advertises_truth(
        self, corpus_generator, matching_engine, streams
    ):
        source = make_source(
            "s1", corpus_generator, matching_engine, streams,
            quality=SourceQuality(coverage=0.9, freshness_lag=0.0,
                                  error_rate=0.1, overpromise=0.0),
        )
        truth = source.true_quality_vector(0.0, "museum")
        claimed = source.advertised_quality(0.0, "museum")
        assert claimed.correctness == pytest.approx(truth.correctness)

    def test_cost_estimate_positive(
        self, corpus_generator, matching_engine, streams, topic_space, vocabulary
    ):
        source = make_source("s1", corpus_generator, matching_engine, streams)
        query = make_topic_query(topic_space, vocabulary, "folk-jewelry")
        estimate = source.cost_estimate(query.restricted_to("museum"), now=0.0)
        assert estimate.mean > 0
        assert estimate.std > 0
