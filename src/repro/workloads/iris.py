"""The paper's running scenario, assembled.

Iris is "a young researcher investigating the different styles of folk
jewelry worn across Europe"; Jason works "on traditional dance forms" at
another institution.  This module builds the scenario on top of a live
agora: the two profiles, their friendship, Iris's standing feeds over
auction catalogs and magazines, and her personal information base.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


from repro.core.agora import Agora
from repro.core.consumer import Consumer
from repro.data.items import InformationItem
from repro.multimodal.annotations import AnnotationService
from repro.personalization.profile import UserProfile
from repro.personalization.store import ProfileStore
from repro.qos.vector import QoSWeights
from repro.social.graph import SocialGraph
from repro.social.privacy import PrivacyRegistry
from repro.uncertainty.risk import risk_averse, risk_seeking
from repro.workloads.queries import QueryWorkloadGenerator


def iris_profile(agora: Agora) -> UserProfile:
    """Iris: folk-jewelry specialist, quality-conscious, careful."""
    space = agora.topic_space
    interests = (
        0.5 * space.basis("folk-jewelry", 0.95)
        + 0.25 * space.basis("museum-exhibitions", 0.95)
        + 0.25 * space.basis("auction-market", 0.95)
    )
    return UserProfile(
        user_id="iris",
        interests=interests,
        qos_weights=QoSWeights(completeness=2.0, correctness=2.0, trust=1.5),
        risk=risk_averse(3.0),
        negotiation_style="boulware",
        mode_preference={"query": 0.4, "browse": 0.3, "feed": 0.3},
        price_sensitivity=0.02,
    )


def jason_profile(agora: Agora) -> UserProfile:
    """Jason: traditional dance forms, relaxed and serendipitous."""
    space = agora.topic_space
    interests = (
        0.6 * space.basis("dance-forms", 0.95)
        + 0.4 * space.basis("traditional-costume", 0.95)
    )
    return UserProfile(
        user_id="jason",
        interests=interests,
        qos_weights=QoSWeights(response_time=0.5, freshness=2.0),
        risk=risk_seeking(2.0),
        negotiation_style="conceder",
        mode_preference={"query": 0.2, "browse": 0.6, "feed": 0.2},
        price_sensitivity=0.03,
    )


@dataclass
class IrisScenario:
    """The assembled scenario: agora + the two researchers + services."""

    agora: Agora
    iris: Consumer
    jason: Consumer
    social_graph: SocialGraph
    privacy: PrivacyRegistry
    profile_store: ProfileStore
    annotations: AnnotationService
    workload: QueryWorkloadGenerator
    #: Iris's personal information base: items she saved, plus annotations
    personal_base: Dict[str, List[InformationItem]] = field(default_factory=dict)

    def save_to_base(self, user_id: str, item: InformationItem) -> None:
        """Store an item in a user's personal information base."""
        self.personal_base.setdefault(user_id, []).append(item)

    def base_of(self, user_id: str) -> List[InformationItem]:
        """Items saved in ``user_id``'s personal base."""
        return list(self.personal_base.get(user_id, []))


def build_iris_scenario(agora: Agora) -> IrisScenario:
    """Wire the running scenario on top of ``agora``."""
    iris = Consumer(agora, iris_profile(agora))
    jason = Consumer(agora, jason_profile(agora))

    graph = SocialGraph()
    graph.befriend("iris", "jason", strength=0.9)
    privacy = PrivacyRegistry(graph)

    store = ProfileStore()
    store.save(iris.active_profile())
    store.save(jason.active_profile())

    annotations = AnnotationService(feeds=agora.feeds)
    workload = QueryWorkloadGenerator(
        agora.topic_space, agora.vocabulary,
        agora.sim.rng.spawn("iris-workload"), corpus=agora.corpus,
    )
    return IrisScenario(
        agora=agora,
        iris=iris,
        jason=jason,
        social_graph=graph,
        privacy=privacy,
        profile_store=store,
        annotations=annotations,
        workload=workload,
    )
