"""Deterministic merge of per-shard partial rank results.

The whole bitwise-parity argument of the parallel plane lands here, so
it is worth spelling out:

1. **Per-candidate scores are slice-invariant.**  The einsum kernels
   compute each candidate's score with one fixed reduction, so a worker
   scoring its contiguous slice of the pool produces floats bitwise
   equal to the single-process block scoring the same positions
   (``CandidateBlock.score_range`` documents and property tests enforce
   this).
2. **The rank order is total.**  Ranks sort on ``(-score, item_id)`` and
   item ids are unique within a pool, so for any two scored candidates
   exactly one order is correct — a stable *(score, seq)* tie-break
   where the item id plays the role of the sequence key.  Concatenating
   per-shard partials and sorting by the same key therefore yields the
   exact global order, independent of how the pool was sliced.
3. **Per-shard top-k covers the global top-k.**  If a candidate is among
   the global best ``k``, it is among the best ``k`` of its own shard
   (its shard holds a subset of its competitors).  So the union of
   per-shard top-k lists is a superset of the global top-k, and cutting
   the merged order at ``k`` reproduces the single-process
   ``rank_block_topk`` output exactly, floor filter included.

Score vectors merge by seq-ordered concatenation (point 1 alone).
:class:`~repro.uncertainty.pruning.PruneStats` merge by summing counts —
telemetry of work done, not part of the parity contract (chunk
boundaries legitimately differ across slicings).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.data.items import InformationItem
from repro.uncertainty.pruning import PruneStats

#: One shard's partial rank output: ``(global_position, score)`` pairs.
RankPartial = List[Tuple[int, float]]


# agora: shard-safe
def merge_ranked(
    items: Sequence[InformationItem],
    partials: Sequence[RankPartial],
    k: int = -1,
    score_floor: float = 0.0,
) -> List[Tuple[InformationItem, float]]:
    """Fold per-shard partials into the global ranked list.

    ``items`` is the coordinator's full pool (global positions index
    into it).  ``k < 0`` keeps everything; with ``k >= 0`` the merged
    order is cut at ``k`` and, when ``score_floor > 0``, sub-floor
    entries are dropped — the same epilogue as
    ``MatchingEngine.rank_block_topk``.
    """
    merged = sorted(
        (
            (items[position], score)
            for partial in partials
            for position, score in partial
        ),
        key=lambda pair: (-pair[1], pair[0].item_id),
    )
    if k >= 0:
        merged = merged[:k]
        if score_floor > 0.0:
            merged = [(item, s) for item, s in merged if s >= score_floor]
    return merged


# agora: shard-safe
def merge_scores(parts: Sequence[np.ndarray]) -> np.ndarray:
    """Seq-ordered concatenation of per-shard score vectors.

    Parts must arrive in placement order (shard covering the lowest
    positions first); slice invariance makes the result bitwise equal to
    the single-process score vector.
    """
    if not parts:
        return np.zeros(0)
    return np.concatenate([np.asarray(part, dtype=np.float64) for part in parts])


# agora: shard-safe
def merge_prune_stats(parts: Sequence[PruneStats]) -> PruneStats:
    """Sum per-shard pruning counters into one stats record.

    ``prunable`` holds iff every shard could prune (an unprunable query
    is unprunable everywhere); ``domain_skipped`` iff every shard
    skipped its whole range.  A single-part merge is the identity, so
    domain-mode routing passes worker stats through unchanged.
    """
    if not parts:
        return PruneStats()
    return PruneStats(
        candidates_total=sum(p.candidates_total for p in parts),
        candidates_scored=sum(p.candidates_scored for p in parts),
        chunks_total=sum(p.chunks_total for p in parts),
        chunks_skipped=sum(p.chunks_skipped for p in parts),
        prunable=all(p.prunable for p in parts),
        domain_skipped=all(p.domain_skipped for p in parts),
    )
