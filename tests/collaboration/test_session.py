"""Tests for collaboration sessions."""

import numpy as np
import pytest

from repro.collaboration import CollaborationSession
from repro.data import InformationItem
from repro.personalization import UserProfile
from repro.uncertainty import UncertainMatch, UncertainResultSet

from tests.conftest import make_topic_query


def _profile(user_id, interests=None):
    return UserProfile(
        user_id=user_id,
        interests=interests if interests is not None else np.ones(10),
    )


def _results(item_ids, latent=None):
    matches = []
    for item_id in item_ids:
        item = InformationItem(
            item_id=item_id, domain="d",
            latent=latent if latent is not None else np.ones(10) / 10,
        )
        matches.append(UncertainMatch(item=item, score=0.8, probability=0.8))
    return UncertainResultSet(matches)


@pytest.fixture
def session(topic_space):
    session = CollaborationSession(goal_latent=topic_space.basis("folk-jewelry", 0.9))
    session.add_member(_profile("iris"))
    session.add_member(_profile("jason"))
    return session


class TestMembership:
    def test_members_listed(self, session):
        assert session.member_ids() == ["iris", "jason"]

    def test_duplicate_member_rejected(self, session):
        with pytest.raises(ValueError):
            session.add_member(_profile("iris"))

    def test_non_member_cannot_contribute(self, session):
        with pytest.raises(KeyError):
            session.record_results("stranger", _results(["a"]))


class TestThreads:
    def test_start_and_continue_thread(self, session, topic_space, vocabulary):
        q1 = make_topic_query(topic_space, vocabulary, "folk-jewelry")
        thread = session.start_thread("iris", q1)
        q2 = make_topic_query(topic_space, vocabulary, "auction-market")
        session.continue_thread("jason", thread.thread_id, q2)
        assert thread.taken_over_by == ["jason"]
        assert len(thread.steps) == 2

    def test_unknown_thread(self, session, topic_space, vocabulary):
        query = make_topic_query(topic_space, vocabulary, "folk-jewelry")
        with pytest.raises(KeyError):
            session.continue_thread("iris", 999, query)


class TestCoverage:
    def test_results_pool_in_workspace(self, session):
        session.record_results("iris", _results(["a", "b"]))
        session.record_results("jason", _results(["b", "c"]))
        assert len(session.workspace) == 3
        assert session.contribution_balance() == {"iris": 2, "jason": 1}

    def test_group_coverage(self, session, oracle, topic_space, vocabulary):
        query = make_topic_query(topic_space, vocabulary, "folk-jewelry")
        relevant_latent = query.intent_latent
        session.record_results("iris", _results(["r1"], latent=relevant_latent))
        session.record_results("jason", _results(["r2"], latent=relevant_latent))
        session.record_results(
            "jason",
            _results(["junk"], latent=topic_space.basis("tourism", 1.0)),
        )
        coverage = session.group_coverage(oracle, query, reachable_relevant=4)
        assert coverage == pytest.approx(0.5)

    def test_coverage_with_nothing_reachable(self, session, oracle, topic_space, vocabulary):
        query = make_topic_query(topic_space, vocabulary, "folk-jewelry")
        assert session.group_coverage(oracle, query, reachable_relevant=0) == 1.0
