"""Coordinate a sharded run: real worker processes, one merged trace.

A coordinator process opens a root span, mints one
:class:`repro.obs.context.TraceContext` per worker shard, and spawns N
real worker processes.  Each worker attaches the capsule (continuing the
coordinator's trace inside its own span-id namespace), runs a seeded
simulator workload, and exports a :class:`repro.obs.aggregate.ShardSnapshot`.
The coordinator then merges every shard deterministically and writes:

    runs/<name>/manifest.json         merged manifest (per-shard sections)
    runs/<name>/merged_spans.jsonl    interleaved cross-shard span stream
    runs/<name>/merged_metrics.jsonl  merged counters/gauges/histograms
    runs/<name>/profile.folded        coordinator flamegraph (sim time)
    runs/<name>/profile.json          hotspot table
    runs/<name>/slo.json              burn-rate report over merged metrics
    runs/<name>/shard-<k>/shard.json  each worker's snapshot
    runs/<name>/flight/               coordinator flight recording
    runs/<name>/shard-<k>/flight/     each worker's flight recording

Two invocations with the same ``--seed`` produce byte-identical merged
artifacts — attest it with::

    python examples/sharded_obs_demo.py --seed 11 --out runs/a
    python examples/sharded_obs_demo.py --seed 11 --out runs/b
    cmp runs/a/merged_spans.jsonl runs/b/merged_spans.jsonl
    python -m repro.obs diff runs/a/manifest.json runs/b/manifest.json

Every process also records a per-shard flight log, so a drifted shard
can be pinned to its first divergent event::

    python -m repro.obs divergence runs/a runs/b
"""

import argparse
import multiprocessing
from pathlib import Path
from typing import Any, Dict, Generator, List

from repro.obs import (
    FlightRecorder,
    SLOMonitor,
    SLOSpec,
    SimProfiler,
    SpanTracer,
    TraceContext,
    derive_trace_id,
    export_merged_run,
    load_shard_snapshot,
    merge_snapshots,
    merged_manifest,
    snapshot_shard,
    write_profile,
    write_shard_snapshot,
    write_slo_report,
)
from repro.obs.aggregate import SHARD_SNAPSHOT_FILE
from repro.obs.manifest import config_digest
from repro.sim.kernel import Simulator


def demo_slos(window: float = 100.0) -> List[SLOSpec]:
    """Observe-only SLOs over the ``work.*`` metrics — one of each kind."""
    return [
        SLOSpec(
            name="work-success",
            kind="error_budget",
            objective=0.9,
            window=window,
            bad="work.errors",
            total="work.ops",
        ),
        SLOSpec(
            name="work-availability",
            kind="availability",
            objective=0.9,
            window=window,
            good="work.ops_ok",
            total="work.ops",
        ),
        SLOSpec(
            name="work-latency-p90",
            kind="latency_quantile",
            objective=0.9,
            window=window,
            metric="work.latency",
            threshold=1.6,
        ),
    ]


def _settle(sim: Simulator, latency: float) -> Any:
    """A follow-up callback scheduled from inside an ``op`` span.

    The kernel captures the active span at schedule time, so the
    profiler attributes this event's sim time to the ``…;op;settle``
    stack — which is what makes the demo flamegraph multi-level.
    """

    def settle() -> None:
        tracer = sim.tracer if sim.tracer is not None else SpanTracer(enabled=False)
        with tracer.span("settle"):
            sim.metrics.histogram("work.lookup").observe(latency / 2.0)

    return settle


def _work_process(
    sim: Simulator, ops: int
) -> Generator[float, None, None]:
    """A seeded query-ish workload: spans + counters + distributions."""
    tracer = sim.tracer if sim.tracer is not None else SpanTracer(enabled=False)
    registry = sim.metrics
    rng = sim.rng.stream("work")
    for index in range(ops):
        with tracer.span("op", index=index):
            latency = float(rng.uniform(0.05, 2.0))
            registry.counter("work.ops").inc()
            registry.histogram("work.latency").observe(latency)
            if latency > 1.6:
                registry.counter("work.errors").inc()
            else:
                registry.counter("work.ops_ok").inc()
            registry.gauge("work.last_latency").set(latency)
            sim.schedule(latency / 2.0, _settle(sim, latency), tag="settle")
        yield latency


def run_worker(
    seed: int, context_payload: Dict[str, Any], ops: int, out_dir: str
) -> None:
    """Worker entry point (top-level so ``spawn`` can pickle it)."""
    context = TraceContext.from_dict(context_payload)
    tracer = SpanTracer()
    tracer.attach(context)
    flight = FlightRecorder(shard_id=context.shard_id)
    sim = Simulator(
        seed=seed * 1000 + context.shard_id, tracer=tracer, flight=flight
    )
    with tracer.span("shard", shard=context.shard_id):
        sim.process(_work_process(sim, ops), tag="shard-work")
        sim.run()
    flight.finalize(Path(out_dir) / f"shard-{context.shard_id}" / "flight")
    snapshot = snapshot_shard(
        context.shard_id,
        sim.metrics,
        tracer=tracer,
        sim_time=sim.now,
        event_count=sim.processed,
    )
    write_shard_snapshot(
        snapshot,
        Path(out_dir) / f"shard-{context.shard_id}" / SHARD_SNAPSHOT_FILE,
    )


def coordinate(seed: int, shards: int, ops: int, out: str) -> Dict[str, str]:
    out_dir = Path(out)
    out_dir.mkdir(parents=True, exist_ok=True)
    trace_id = derive_trace_id(seed, scope="sharded-demo")
    tracer = SpanTracer(shard_id=0, trace_id=trace_id)
    profiler = SimProfiler()
    flight = FlightRecorder(shard_id=0)
    sim = Simulator(seed=seed, tracer=tracer, profiler=profiler, flight=flight)

    contexts: Dict[int, TraceContext] = {}
    with tracer.span("coordinate", shards=shards):
        for shard_id in range(1, shards + 1):
            with tracer.span("dispatch", shard=shard_id):
                contexts[shard_id] = tracer.context_for(shard_id)
        # The coordinator runs its own small profiled workload so the
        # flamegraph has named stacks to attribute sim time to.
        sim.process(_work_process(sim, ops), tag="coordinator-work")
        sim.run()

    spawn = multiprocessing.get_context("spawn")
    workers = [
        spawn.Process(
            target=run_worker,
            args=(seed, contexts[shard_id].to_dict(), ops, str(out_dir)),
        )
        for shard_id in sorted(contexts)
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
        if worker.exitcode != 0:
            raise RuntimeError(f"worker exited with code {worker.exitcode}")

    snapshots = [
        snapshot_shard(
            0, sim.metrics, tracer=tracer, sim_time=sim.now,
            event_count=sim.processed,
        )
    ]
    for shard_id in sorted(contexts):
        snapshots.append(
            load_shard_snapshot(out_dir / f"shard-{shard_id}" / SHARD_SNAPSHOT_FILE)
        )

    merged = merge_snapshots(snapshots)
    digest = config_digest(
        {"demo": "sharded-obs", "shards": shards, "ops": ops}
    )
    manifest = merged_manifest(
        snapshots, seed=seed, config_digest=digest,
        merged=merged, scenario="sharded-obs-demo",
    )
    written = export_merged_run(out_dir, merged, manifest)
    written.update(write_profile(out_dir, profiler, tracer.spans()))
    written.update(flight.finalize(out_dir / "flight"))

    slos = SLOMonitor(merged.registry, demo_slos())
    slos.sample(merged.sim_time)
    report = slos.evaluate()
    slo_path = out_dir / "slo.json"
    write_slo_report(report, slo_path)
    written["slo"] = str(slo_path)
    return written


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--ops", type=int, default=40)
    parser.add_argument("--out", default="runs/sharded-demo")
    args = parser.parse_args()
    written = coordinate(args.seed, args.shards, args.ops, args.out)
    for kind in sorted(written):
        print(f"{kind}: {written[kind]}")


if __name__ == "__main__":
    main()
