"""Tests for the relevance oracle."""

import numpy as np
import pytest

from repro.data import InformationItem
from repro.query import Query, QueryKind

from tests.conftest import make_topic_query


def _item(latent, created_at=0.0, item_id="i"):
    return InformationItem(
        item_id=item_id, domain="museum", latent=np.asarray(latent, float),
        created_at=created_at,
    )


class TestRelevance:
    def test_identical_latent_fully_relevant(self, oracle, topic_space, vocabulary):
        query = make_topic_query(topic_space, vocabulary, "folk-jewelry")
        item = _item(query.intent_latent)
        assert oracle.relevance(query, item) == pytest.approx(1.0)
        assert oracle.is_relevant(query, item)

    def test_orthogonal_not_relevant(self, oracle, topic_space, vocabulary):
        query = make_topic_query(topic_space, vocabulary, "folk-jewelry")
        other = topic_space.basis("tourism", weight=1.0)
        assert not oracle.is_relevant(query, _item(other))

    def test_query_without_intent_uses_reference(self, oracle, topic_space):
        reference = _item(topic_space.basis("tourism"), item_id="ref")
        query = Query(kind=QueryKind.SIMILARITY, reference_item=reference)
        assert oracle.relevance(query, _item(topic_space.basis("tourism"))) > 0.9

    def test_query_without_any_intent_raises(self, oracle, topic_space, vocabulary):
        query = make_topic_query(topic_space, vocabulary, "folk-jewelry")
        query.intent_latent = None
        query.reference_item = None
        with pytest.raises(ValueError):
            oracle.relevance(query, _item(topic_space.basis("tourism")))


class TestFreshness:
    def test_new_item_fully_fresh(self, oracle):
        assert oracle.freshness(_item([1.0] + [0.0] * 9, created_at=10.0), now=10.0) == 1.0

    def test_half_life(self, oracle):
        item = _item([1.0] + [0.0] * 9, created_at=0.0)
        assert oracle.freshness(item, now=oracle.freshness_half_life) == pytest.approx(0.5)


class TestDeliveredQoS:
    def test_perfect_delivery(self, oracle, topic_space, vocabulary):
        query = make_topic_query(topic_space, vocabulary, "folk-jewelry", k=2)
        relevant = [_item(query.intent_latent, item_id=f"r{i}") for i in range(2)]
        delivered = oracle.delivered_qos(
            query, returned=relevant, reachable=relevant,
            response_time=1.0, now=0.0, source_trust=0.8,
        )
        assert delivered.completeness == 1.0
        assert delivered.correctness == 1.0
        assert delivered.trust == 0.8

    def test_incomplete_delivery(self, oracle, topic_space, vocabulary):
        query = make_topic_query(topic_space, vocabulary, "folk-jewelry", k=10)
        relevant = [_item(query.intent_latent, item_id=f"r{i}") for i in range(4)]
        delivered = oracle.delivered_qos(
            query, returned=relevant[:1], reachable=relevant,
            response_time=1.0, now=0.0,
        )
        assert delivered.completeness == pytest.approx(0.25)

    def test_wrong_items_hurt_correctness(self, oracle, topic_space, vocabulary):
        query = make_topic_query(topic_space, vocabulary, "folk-jewelry", k=10)
        relevant = _item(query.intent_latent, item_id="good")
        junk = _item(topic_space.basis("tourism", 1.0), item_id="bad")
        delivered = oracle.delivered_qos(
            query, returned=[relevant, junk], reachable=[relevant, junk],
            response_time=1.0, now=0.0,
        )
        assert delivered.correctness == pytest.approx(0.5)

    def test_empty_delivery(self, oracle, topic_space, vocabulary):
        query = make_topic_query(topic_space, vocabulary, "folk-jewelry")
        relevant = [_item(query.intent_latent)]
        delivered = oracle.delivered_qos(
            query, returned=[], reachable=relevant, response_time=1.0, now=0.0,
        )
        assert delivered.completeness == 0.0
        assert delivered.correctness == 0.0

    def test_nothing_reachable_means_complete(self, oracle, topic_space, vocabulary):
        query = make_topic_query(topic_space, vocabulary, "folk-jewelry")
        delivered = oracle.delivered_qos(
            query, returned=[], reachable=[], response_time=1.0, now=0.0,
        )
        assert delivered.completeness == 1.0


class TestRankingMetrics:
    def test_ndcg_perfect_ranking(self, oracle, topic_space, vocabulary):
        query = make_topic_query(topic_space, vocabulary, "folk-jewelry")
        good = _item(query.intent_latent, item_id="good")
        bad = _item(topic_space.basis("tourism", 1.0), item_id="bad")
        assert oracle.ndcg(query, [good, bad]) > oracle.ndcg(query, [bad, good])

    def test_ndcg_bounds(self, oracle, topic_space, vocabulary):
        query = make_topic_query(topic_space, vocabulary, "folk-jewelry")
        items = [
            _item(topic_space.sample(np.random.default_rng(i)), item_id=f"i{i}")
            for i in range(5)
        ]
        value = oracle.ndcg(query, items)
        assert 0.0 <= value <= 1.0 + 1e-9

    def test_ndcg_empty(self, oracle, topic_space, vocabulary):
        query = make_topic_query(topic_space, vocabulary, "folk-jewelry")
        assert oracle.ndcg(query, []) == 0.0

    def test_precision_recall(self, oracle, topic_space, vocabulary):
        query = make_topic_query(topic_space, vocabulary, "folk-jewelry")
        good = [_item(query.intent_latent, item_id=f"g{i}") for i in range(3)]
        bad = _item(topic_space.basis("tourism", 1.0), item_id="bad")
        metrics = oracle.precision_recall(
            query, returned=[good[0], bad], reachable=good + [bad],
        )
        assert metrics["precision"] == pytest.approx(0.5)
        assert metrics["recall"] == pytest.approx(1 / 3)
