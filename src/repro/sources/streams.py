"""Source update streams — the raw material for automatic feeds.

"She uses automatic feeds of history and tourism magazine articles on new
exhibitions and collections" (§1).  Each :class:`UpdateStream` drives one
source: new items arrive as a Poisson process at the domain's update rate,
are ingested into the source, and are pushed to subscribers (the feed
machinery in :mod:`repro.multimodal.feeds` subscribes here).
"""

from __future__ import annotations

from typing import Callable, List

from repro.data.corpus import CorpusGenerator, DomainSpec
from repro.data.items import InformationItem
from repro.sim.kernel import Simulator
from repro.sim.rng import ScopedStreams
from repro.sources.source import InformationSource

Subscriber = Callable[[str, InformationItem], None]


class UpdateStream:
    """A Poisson stream of new items flowing into one source.

    Parameters
    ----------
    simulator:
        The event kernel.
    source:
        The source receiving the new items.
    generator / spec:
        Corpus generator and the domain spec whose ``update_rate`` sets
        the arrival intensity (items per virtual time unit).
    rate_multiplier:
        Scales the domain's base rate (for burst experiments).
    """

    def __init__(
        self,
        simulator: Simulator,
        source: InformationSource,
        generator: CorpusGenerator,
        spec: DomainSpec,
        streams: ScopedStreams,
        rate_multiplier: float = 1.0,
    ):
        if rate_multiplier <= 0:
            raise ValueError("rate_multiplier must be positive")
        self.sim = simulator
        self.source = source
        self.generator = generator
        self.spec = spec
        self.rate = spec.update_rate * rate_multiplier
        self._rng = streams.stream(f"updates.{source.source_id}.{spec.name}")
        self._subscribers: List[Subscriber] = []
        self._running = False
        self.published = 0

    # ------------------------------------------------------------------
    def subscribe(self, subscriber: Subscriber) -> None:
        """Register ``subscriber(source_id, item)`` for every new item."""
        self._subscribers.append(subscriber)

    def start(self) -> None:
        """Begin generating updates (idempotent)."""
        if self._running or self.rate <= 0:
            return
        self._running = True
        self._schedule_next()

    def stop(self) -> None:
        """Stop publishing (pending events become no-ops)."""
        self._running = False

    # ------------------------------------------------------------------
    def _schedule_next(self) -> None:
        delay = float(self._rng.exponential(1.0 / self.rate))

        def publish() -> None:
            if not self._running:
                return
            item = self.generator.generate_item(self.spec, created_at=self.sim.now)
            self.source.ingest([item], now=self.sim.now)
            self.published += 1
            self.sim.trace.count("sources.items_published")
            for subscriber in self._subscribers:
                subscriber(self.source.source_id, item)
            self._schedule_next()

        self.sim.schedule(delay, publish, tag=f"update:{self.source.source_id}")
