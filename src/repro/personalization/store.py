"""Profile storage and indexing.

"Storage and indexing of profiles, as well as selection and retrieval of
the appropriate profile parts in each case, are technical problems that
require solutions also" (§5).  The store keeps profiles keyed by user and
maintains an inverted index from dominant topics to users, so affinity
candidates can be found without scanning everyone.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.personalization.profile import UserProfile


class ProfileStore:
    """In-memory profile database with a topic index.

    Parameters
    ----------
    index_top_n:
        Each profile is indexed under its ``index_top_n`` strongest topics.
    """

    def __init__(self, index_top_n: int = 3):
        if index_top_n < 1:
            raise ValueError("index_top_n must be >= 1")
        self.index_top_n = index_top_n
        self._profiles: Dict[str, UserProfile] = {}
        self._topic_index: Dict[int, Set[str]] = defaultdict(set)

    # ------------------------------------------------------------------
    def save(self, profile: UserProfile) -> None:
        """Insert or replace a profile (re-indexes it)."""
        existing = self._profiles.get(profile.user_id)
        if existing is not None:
            self._unindex(existing)
        self._profiles[profile.user_id] = profile
        for topic_index in self._top_topics(profile):
            self._topic_index[topic_index].add(profile.user_id)

    def load(self, user_id: str) -> UserProfile:
        """Return the stored profile or raise ``KeyError``."""
        try:
            return self._profiles[user_id]
        except KeyError:
            raise KeyError(f"no profile stored for {user_id!r}") from None

    def get(self, user_id: str) -> Optional[UserProfile]:
        """Return the stored profile or ``None``."""
        return self._profiles.get(user_id)

    def delete(self, user_id: str) -> None:
        """Remove a profile and its index entries (idempotent)."""
        profile = self._profiles.pop(user_id, None)
        if profile is not None:
            self._unindex(profile)

    def __len__(self) -> int:
        return len(self._profiles)

    def __contains__(self, user_id: str) -> bool:
        return user_id in self._profiles

    def user_ids(self) -> List[str]:
        """Sorted ids of stored profiles."""
        return sorted(self._profiles)

    # ------------------------------------------------------------------
    def _top_topics(self, profile: UserProfile) -> List[int]:
        order = np.argsort(-profile.interests, kind="stable")
        return [int(i) for i in order[: self.index_top_n]]

    def _unindex(self, profile: UserProfile) -> None:
        for users in self._topic_index.values():
            users.discard(profile.user_id)

    def candidates_by_topic(self, topic_index: int) -> List[str]:
        """Users indexed under a topic."""
        return sorted(self._topic_index.get(topic_index, set()))

    def find_similar(
        self, profile: UserProfile, k: int = 5, exclude_self: bool = True
    ) -> List[Tuple[str, float]]:
        """The ``k`` most interest-similar stored profiles.

        Uses the topic index to pre-filter candidates, then ranks by
        exact cosine similarity.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        candidate_ids: Set[str] = set()
        for topic_index in self._top_topics(profile):
            candidate_ids.update(self._topic_index.get(topic_index, set()))
        if not candidate_ids:
            candidate_ids = set(self._profiles)
        if exclude_self:
            candidate_ids.discard(profile.user_id)
        scored = [
            (user_id, profile.similarity(self._profiles[user_id]))
            for user_id in sorted(candidate_ids)
        ]
        scored.sort(key=lambda pair: (-pair[1], pair[0]))
        return scored[:k]
