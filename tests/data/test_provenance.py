"""Tests for provenance chains."""

import pytest

from repro.data import ProvenanceChain, originate


class TestProvenance:
    def test_originate(self):
        chain = originate("item1", "source-a", time=5.0)
        assert chain.origin == "source-a"
        assert chain.current_holder == "source-a"
        assert chain.length == 1

    def test_extend(self):
        chain = originate("item1", "source-a", 5.0).extend("broker", 6.0)
        assert chain.origin == "source-a"
        assert chain.current_holder == "broker"
        assert chain.holders() == ("source-a", "broker")

    def test_extend_is_persistent(self):
        chain = originate("item1", "source-a", 5.0)
        extended = chain.extend("broker", 6.0)
        assert chain.length == 1
        assert extended.length == 2

    def test_time_order_enforced(self):
        chain = originate("item1", "source-a", 5.0)
        with pytest.raises(ValueError):
            chain.extend("broker", 4.0)

    def test_empty_chain(self):
        chain = ProvenanceChain("item1")
        assert chain.origin is None
        assert chain.current_holder is None
