"""Tests for salient-part detection and auto-annotation."""

import numpy as np
import pytest

from repro.data import CompoundObject, DomainSpec, combined_latent
from repro.multimodal import AnnotationService, FeedService
from repro.uncertainty import ConceptLifter, concept_peakedness, salient_parts


class TestPeakedness:
    def test_one_hot_is_one(self):
        assert concept_peakedness(np.array([1.0, 0.0, 0.0, 0.0])) == pytest.approx(
            1.0, abs=1e-6,
        )

    def test_uniform_is_zero(self):
        assert concept_peakedness(np.full(8, 0.125)) == pytest.approx(0.0, abs=1e-6)

    def test_monotone_in_concentration(self):
        peaked = np.array([0.7, 0.1, 0.1, 0.1])
        smeared = np.array([0.4, 0.2, 0.2, 0.2])
        assert concept_peakedness(peaked) > concept_peakedness(smeared)

    def test_degenerate_inputs(self):
        assert concept_peakedness(np.zeros(4)) == 0.0
        assert concept_peakedness(np.array([1.0])) == 0.0


def _text_items(corpus_generator, topic, count, name):
    spec = DomainSpec(
        name=name, topic_prior={topic: 1.0},
        type_mix={"text": 1.0, "media": 0.0, "compound": 0.0},
        concentration=0.3,
    )
    return corpus_generator.generate(spec, count)


@pytest.fixture
def lifter(vocabulary, corpus_generator, streams):
    from repro.data import FeatureExtractor

    extractor = FeatureExtractor(16, streams.spawn("sal-fx"))
    return ConceptLifter(vocabulary, extractor)


def _compound(corpus_generator, topic_space, sharp_topic, parts_weights):
    """A compound with one sharp part and several diffuse fillers."""
    sharp = _text_items(corpus_generator, sharp_topic, 1, "sharp")[0]
    diffuse_spec = DomainSpec(
        name="diffuse",
        topic_prior={name: 1.0 / topic_space.n_topics for name in topic_space.names},
        type_mix={"text": 1.0, "media": 0.0, "compound": 0.0},
        concentration=10.0,  # very smeared
    )
    fillers = corpus_generator.generate(diffuse_spec, len(parts_weights) - 1)
    parts = [(sharp, parts_weights[0])] + [
        (filler, weight) for filler, weight in zip(fillers, parts_weights[1:])
    ]
    return CompoundObject(
        item_id="compound-1", domain="magazine",
        latent=combined_latent(parts), parts=parts,
    ), sharp


class TestSalientParts:
    def test_sharp_part_ranks_first(self, corpus_generator, topic_space, lifter):
        compound, sharp = _compound(
            corpus_generator, topic_space, "folk-jewelry", [1.0, 1.0, 1.0],
        )
        salient = salient_parts(compound, lifter, k=1)
        assert salient[0].part.item_id == sharp.item_id

    def test_weight_scales_salience(self, corpus_generator, topic_space, lifter):
        compound, sharp = _compound(
            corpus_generator, topic_space, "folk-jewelry", [0.01, 5.0, 5.0],
        )
        # The sharp part is nearly weightless; a heavy filler can win.
        salient = salient_parts(compound, lifter, k=3)
        assert salient[0].salience >= salient[-1].salience

    def test_k_bounds_results(self, corpus_generator, topic_space, lifter):
        compound, __ = _compound(
            corpus_generator, topic_space, "folk-jewelry", [1.0, 1.0, 1.0],
        )
        assert len(salient_parts(compound, lifter, k=2)) == 2

    def test_invalid_k(self, corpus_generator, topic_space, lifter):
        compound, __ = _compound(
            corpus_generator, topic_space, "folk-jewelry", [1.0, 1.0],
        )
        with pytest.raises(ValueError):
            salient_parts(compound, lifter, k=0)


class TestAutoAnnotate:
    def test_auto_annotation_spawns_comparisons(
        self, corpus_generator, topic_space, matching_engine, lifter,
    ):
        feeds = FeedService(matching_engine)
        service = AnnotationService(feeds=feeds)
        compound, sharp = _compound(
            corpus_generator, topic_space, "folk-jewelry", [1.0, 1.0, 1.0],
        )
        records = service.auto_annotate("iris", compound, lifter, k=2)
        assert len(records) == 2
        assert all(record.standing_id is not None for record in records)
        assert all("[auto]" in record.annotation.text for record in records)
        # The sharp part drives one of the standing comparisons.
        compared = {
            item.item_id
            for record in records
            for item in feeds.standing_query(record.standing_id).comparison_items
        }
        assert sharp.item_id in compared
