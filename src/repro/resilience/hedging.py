"""Hedged requests: duplicating slow or declined leaves to alternates.

The registry's advertised descriptors say which other sources cover the
same domain; the :class:`HedgeSelector` turns that into a deterministic,
breaker-aware preference order.  The executor issues the duplicate and
keeps whichever answer "finishes first"; a late-but-successful duplicate
is still folded into the leaf's result set, which dedups by item id — the
same item arriving from both the primary and the hedge counts once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, List, Optional, Tuple

from repro.resilience.breaker import BreakerBoard

if TYPE_CHECKING:  # avoid load-time cycles through repro.query / repro.sources
    from repro.query.model import Subquery
    from repro.sources.registry import SourceRegistry


@dataclass(frozen=True)
class HedgeOutcome:
    """Bookkeeping for one hedged (or failed-over) leaf."""

    job_id: str
    primary: str
    alternate: str
    primary_elapsed: float
    alternate_elapsed: float
    winner: str

    @property
    def hedge_won(self) -> bool:
        """Whether the duplicate beat (or replaced) the primary."""
        return self.winner == self.alternate


class HedgeSelector:
    """Chooses alternate sources for a subquery.

    Candidates are the registry's advertised coverers of the subquery's
    domain, minus excluded (already-tried) sources and minus sources whose
    breaker is open, ordered by advertised response time then id — a
    deterministic "fastest claimed coverer first" preference.
    """

    def __init__(
        self,
        registry: "SourceRegistry",
        breakers: Optional[BreakerBoard] = None,
    ):
        self.registry = registry
        self.breakers = breakers

    def alternates(
        self, subquery: "Subquery", exclude: Iterable[str] = ()
    ) -> List[str]:
        """Preference-ordered alternate source ids for ``subquery``."""
        excluded = set(exclude)
        ranked: List[Tuple[float, str]] = []
        for descriptor in self.registry.candidates_for(subquery.domain):
            source_id = descriptor.source_id
            if source_id in excluded:
                continue
            if self.breakers is not None and not self.breakers.allow(source_id):
                continue
            advertised = descriptor.advertised.get(subquery.domain)
            claimed_time = (
                advertised.response_time if advertised is not None else float("inf")
            )
            ranked.append((claimed_time, source_id))
        return [source_id for __, source_id in sorted(ranked)]

    def best_alternate(
        self, subquery: "Subquery", exclude: Iterable[str] = ()
    ) -> Optional[str]:
        """The single best alternate, or ``None`` when nobody else covers."""
        candidates = self.alternates(subquery, exclude)
        return candidates[0] if candidates else None
