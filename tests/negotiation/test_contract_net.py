"""Tests for the contract-net protocol and subcontracting."""

import pytest

from repro.negotiation import (
    CallForProposals,
    ContractNetProtocol,
    Intermediary,
    Proposal,
    consumer_bid_score,
)
from repro.qos import QoSRequirement, QoSVector, QoSWeights, Quote


def _cfp(job_id="job-1"):
    return CallForProposals(
        job_id=job_id,
        domain="museum",
        requirement=QoSRequirement(min_completeness=0.5),
        consumer_id="iris",
    )


def _bidder(provider_id, price, quality, decline=False):
    def bid(cfp):
        if decline:
            return None
        return Proposal(
            provider_id=provider_id,
            cfp=cfp,
            quote=Quote(base_price=price, premium=0.5, compensation=price),
            promised=QoSVector(response_time=1.0, completeness=quality),
        )

    return bid


def _protocol(min_score=0.0):
    return ContractNetProtocol(
        consumer_bid_score(QoSWeights(), price_sensitivity=0.05),
        min_score=min_score,
    )


class TestContractNet:
    def test_awards_best_bid(self):
        outcome = _protocol().run(
            _cfp(),
            [_bidder("cheap-good", 1.0, 0.9), _bidder("pricey-bad", 9.0, 0.5)],
        )
        assert outcome.awarded.provider_id == "cheap-good"
        assert outcome.contract is not None
        assert outcome.contract.provider_id == "cheap-good"

    def test_no_bidders(self):
        outcome = _protocol().run(_cfp(), [])
        assert outcome.awarded is None
        assert outcome.contract is None

    def test_all_decline(self):
        outcome = _protocol().run(_cfp(), [_bidder("x", 1.0, 0.9, decline=True)])
        assert outcome.awarded is None
        assert outcome.bidders == 0

    def test_min_score_rejects_bad_market(self):
        outcome = _protocol(min_score=5.0).run(_cfp(), [_bidder("only", 1.0, 0.9)])
        assert outcome.awarded is None
        assert outcome.bidders == 1

    def test_contract_mirrors_quote(self):
        outcome = _protocol().run(_cfp(), [_bidder("p", 2.0, 0.9)])
        contract = outcome.contract
        assert contract.base_price == 2.0
        assert contract.premium == 0.5
        assert contract.compensation == 2.0
        assert contract.job_id == "job-1"

    def test_award_hook_fires(self):
        protocol = _protocol()
        events = []
        protocol.on_award(lambda proposal, contract: events.append(proposal.provider_id))
        protocol.run(_cfp(), [_bidder("p", 2.0, 0.9)])
        assert events == ["p"]

    def test_tie_broken_by_price_then_name(self):
        outcome = _protocol().run(
            _cfp(),
            [_bidder("b", 1.0, 0.9), _bidder("a", 1.0, 0.9)],
        )
        assert outcome.awarded.provider_id == "a"

    def test_negative_price_sensitivity_rejected(self):
        with pytest.raises(ValueError):
            consumer_bid_score(QoSWeights(), price_sensitivity=-1.0)


class TestIntermediary:
    def test_intermediary_resells_with_markup(self):
        inner = _protocol()
        broker = Intermediary("broker", [_bidder("src", 2.0, 0.9)], inner, margin=0.5)
        proposal = broker(_cfp())
        assert proposal is not None
        assert proposal.provider_id == "broker"
        assert proposal.subcontracted
        assert proposal.quote.base_price == pytest.approx(3.0)
        assert proposal.chain_depth == 1

    def test_intermediary_with_no_downstream_market(self):
        broker = Intermediary("broker", [], _protocol())
        assert broker(_cfp()) is None

    def test_back_to_back_contracts_on_award(self):
        inner = _protocol()
        broker = Intermediary("broker", [_bidder("src", 2.0, 0.9)], inner, margin=0.5)
        outer = _protocol()
        outer.on_award(broker.on_award)
        outcome = outer.run(_cfp(), [broker])
        assert outcome.contract.provider_id == "broker"
        assert len(broker.records) == 1
        record = broker.records[0]
        assert record.inner.provider_id == "src"
        assert record.margin_earned > 0

    def test_chain_depth_limit(self):
        inner = _protocol()
        level0 = _bidder("src", 2.0, 0.9)
        broker1 = Intermediary("b1", [level0], inner, max_depth=2)
        broker2 = Intermediary("b2", [broker1], _protocol(), max_depth=2)
        # broker2 would create a chain of depth 2, which is >= max_depth.
        assert broker2(_cfp()) is None

    def test_invalid_margin(self):
        with pytest.raises(ValueError):
            Intermediary("b", [], _protocol(), margin=-0.1)

    def test_broker_beaten_by_direct_source(self):
        """A direct bid wins over the same bid marked up by a broker."""
        direct = _bidder("src", 2.0, 0.9)
        broker = Intermediary("broker", [_bidder("src2", 2.0, 0.9)], _protocol(), margin=0.5)
        outcome = _protocol().run(_cfp(), [direct, broker])
        assert outcome.awarded.provider_id == "src"
