"""Deterministic ``shard_safety.json`` manifest.

The manifest is the attestation artifact the scale-out dispatcher (see
ROADMAP item 1) consumes: every analysed function maps to its verdict,
and every declared root carries its witness chains.  The encoding is
byte-stable across runs — sorted keys, no timestamps, no absolute
paths, no line numbers (qualnames and reasons only) — so CI can diff it
against a committed baseline and any churn is a reviewed decision.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.analysis.effects.fixpoint import EffectsResult
from repro.analysis.effects.model import (
    MUTATES_SHARED,
    PURE,
    READS_SHARED,
    UNKNOWN,
    iter_sorted,
)
from repro.analysis.effects.project import SHARD_SAFE, WORKER_LOCAL

SCHEMA = "repro.shard-safety/1"

#: verdicts a declared shard-safe root may carry and still be dispatched
CERTIFIABLE = frozenset({PURE, READS_SHARED})

#: cap on recorded witnesses per root — the worst offenders, not a dump
_MAX_WITNESSES = 8


def build_manifest(result: EffectsResult) -> Dict[str, Any]:
    """The manifest payload (plain dict, JSON-encodable, deterministic)."""
    functions: Dict[str, str] = {
        qualname: result.verdicts[qualname]
        for qualname in sorted(result.verdicts)
    }
    roots: Dict[str, Any] = {}
    for func in result.index.declared(SHARD_SAFE):
        summary = result.exported.get(func.qualname, {})
        witnesses: List[Dict[str, str]] = []
        for effect, chain in iter_sorted(summary):
            if effect.severity not in (MUTATES_SHARED, UNKNOWN):
                continue
            if len(witnesses) >= _MAX_WITNESSES:
                break
            witnesses.append(
                {
                    "chain": " -> ".join((func.qualname,) + chain),
                    "kind": effect.kind,
                    "reason": effect.reason,
                }
            )
        verdict = result.verdicts.get(func.qualname, UNKNOWN)
        roots[func.qualname] = {
            "certified": verdict in CERTIFIABLE and not witnesses,
            "verdict": verdict,
            "witnesses": witnesses,
        }
    trusted: Dict[str, str] = {}
    for func in result.index.declared(WORKER_LOCAL):
        annotation = func.annotation
        trusted[func.qualname] = annotation.reason if annotation else ""
    counts: Dict[str, int] = {PURE: 0, READS_SHARED: 0, MUTATES_SHARED: 0, UNKNOWN: 0}
    for verdict in functions.values():
        counts[verdict] += 1
    return {
        "schema": SCHEMA,
        "counts": counts,
        "functions": functions,
        "roots": roots,
        "trusted": trusted,
    }


def render_manifest(payload: Dict[str, Any]) -> str:
    """Canonical byte-stable encoding of a manifest payload."""
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def write_manifest(payload: Dict[str, Any], path: Union[str, Path]) -> None:
    """Write the canonical encoding to ``path``."""
    Path(path).write_text(render_manifest(payload), encoding="utf-8")


def diff_manifests(
    old: Dict[str, Any], new: Dict[str, Any]
) -> List[str]:
    """Human-readable drift lines between two manifest payloads."""
    lines: List[str] = []
    old_functions: Dict[str, str] = old.get("functions", {})
    new_functions: Dict[str, str] = new.get("functions", {})
    for qualname in sorted(set(old_functions) | set(new_functions)):
        before = old_functions.get(qualname)
        after = new_functions.get(qualname)
        if before == after:
            continue
        if before is None:
            lines.append(f"+ {qualname}: {after}")
        elif after is None:
            lines.append(f"- {qualname}: {before}")
        else:
            lines.append(f"~ {qualname}: {before} -> {after}")
    old_roots = old.get("roots", {})
    new_roots = new.get("roots", {})
    for qualname in sorted(set(old_roots) | set(new_roots)):
        before_cert = old_roots.get(qualname, {}).get("certified")
        after_cert = new_roots.get(qualname, {}).get("certified")
        if before_cert != after_cert:
            lines.append(
                f"~ root {qualname}: certified {before_cert} -> {after_cert}"
            )
    return lines


@dataclass
class ShardSafetyManifest:
    """Runtime view over a written manifest.

    The scale-out dispatcher asks :meth:`is_certified` before shipping a
    function to a worker; anything the manifest does not certify runs in
    the coordinating process instead.
    """

    payload: Dict[str, Any]

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ShardSafetyManifest":
        """Read a manifest written by :func:`write_manifest`."""
        data = json.loads(Path(path).read_text(encoding="utf-8"))
        if data.get("schema") != SCHEMA:
            raise ValueError(
                f"unsupported shard-safety schema: {data.get('schema')!r}"
            )
        return cls(payload=data)

    def verdict(self, qualname: str) -> Optional[str]:
        """The recorded verdict for ``qualname``, if analysed."""
        verdict = self.payload.get("functions", {}).get(qualname)
        return str(verdict) if verdict is not None else None

    def is_certified(self, qualname: str) -> bool:
        """Whether ``qualname`` is a declared root that verified clean."""
        root = self.payload.get("roots", {}).get(qualname)
        return bool(root and root.get("certified"))

    @property
    def certified_roots(self) -> List[str]:
        """All certified root qualnames, sorted."""
        return sorted(
            qualname
            for qualname, root in self.payload.get("roots", {}).items()
            if root.get("certified")
        )
