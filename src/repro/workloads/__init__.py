"""Workload generators: user populations, clicks, queries, the Iris scenario.

Public API:

- :class:`UserPopulationGenerator`, :class:`ClickModel`.
- :class:`QueryWorkloadGenerator`.
- :class:`IrisScenario`, :func:`build_iris_scenario`,
  :func:`iris_profile`, :func:`jason_profile`.
"""

from repro.workloads.iris import (
    IrisScenario,
    build_iris_scenario,
    iris_profile,
    jason_profile,
)
from repro.workloads.queries import QueryWorkloadGenerator
from repro.workloads.users import ClickModel, UserPopulationGenerator

__all__ = [
    "ClickModel",
    "IrisScenario",
    "QueryWorkloadGenerator",
    "UserPopulationGenerator",
    "build_iris_scenario",
    "iris_profile",
    "jason_profile",
]
