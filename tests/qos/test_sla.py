"""Tests for SLA contracts and settlement."""

import pytest

from repro.qos import (
    ContractError,
    ContractState,
    QoSRequirement,
    QoSVector,
    SLAContract,
)


def _contract(**kwargs):
    defaults = dict(
        provider_id="source-1",
        consumer_id="iris",
        requirement=QoSRequirement(max_response_time=5.0, min_completeness=0.8),
        base_price=10.0,
        premium=2.0,
        compensation=15.0,
        cancellation_fee=3.0,
    )
    defaults.update(kwargs)
    return SLAContract(**defaults)


class TestContract:
    def test_total_price(self):
        assert _contract().total_price == 12.0

    def test_negative_price_rejected(self):
        with pytest.raises(ValueError):
            _contract(base_price=-1.0)

    def test_fulfilled_settlement(self):
        contract = _contract()
        outcome = contract.settle(QoSVector(response_time=3.0, completeness=0.9))
        assert not outcome.breached
        assert outcome.compensation_paid == 0.0
        assert contract.state is ContractState.FULFILLED
        assert outcome.consumer_net_cost == 12.0

    def test_breached_settlement(self):
        contract = _contract()
        outcome = contract.settle(QoSVector(response_time=9.0, completeness=0.9))
        assert outcome.breached
        assert outcome.violated_dimensions == ["response_time"]
        assert outcome.compensation_paid == 15.0
        assert contract.state is ContractState.BREACHED
        assert outcome.consumer_net_cost == pytest.approx(-3.0)

    def test_double_settlement_rejected(self):
        contract = _contract()
        contract.settle(QoSVector())
        with pytest.raises(ContractError):
            contract.settle(QoSVector())

    def test_compliance_partial_credit(self):
        contract = _contract(
            requirement=QoSRequirement(
                max_response_time=5.0, min_completeness=0.8, min_trust=0.9
            )
        )
        outcome = contract.settle(
            QoSVector(response_time=9.0, completeness=0.5, trust=0.95)
        )
        assert outcome.compliance == pytest.approx(3 / 5)

    def test_clean_delivery_full_compliance(self):
        outcome = _contract().settle(QoSVector(response_time=1.0))
        assert outcome.compliance == 1.0


class TestCancellation:
    def test_provider_cancellation_pays_consumer(self):
        contract = _contract()
        outcome = contract.cancel(by_provider=True)
        assert outcome.compensation_paid == 3.0
        assert contract.state is ContractState.CANCELLED
        assert outcome.consumer_paid == 0.0

    def test_consumer_cancellation_pays_provider(self):
        outcome = _contract().cancel(by_provider=False)
        assert outcome.compensation_paid == -3.0

    def test_cancel_settled_contract_rejected(self):
        contract = _contract()
        contract.settle(QoSVector())
        with pytest.raises(ContractError):
            contract.cancel(by_provider=True)

    def test_cancellation_compliance_zero(self):
        outcome = _contract().cancel(by_provider=True)
        assert outcome.compliance == 0.0
