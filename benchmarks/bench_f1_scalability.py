"""F1 (§1): scalability of the agora with the number of sources.

Regenerates the F1 figure series: sweep the agora size and report, per
query, the negotiated-plan response time, the number of contracts signed,
overlay message cost of disseminating one registry advertisement by
gossip, and global recall.  Expected shape: gossip messages grow with the
source count; response time stays flat (parallel retrieval, latency of
the slowest contracted source); the relevant pool grows while fixed-k
recall *falls* — the coverage gap that motivates §4's replication and
subcontracting machinery.
"""

try:
    import pytest
except ImportError:  # CLI usage (`python benchmarks/bench_f1_scalability.py`)
    pytest = None  # type: ignore[assignment]

import numpy as np

from repro import Consumer, UserProfile, build_agora
from repro.experiments import ExperimentResult, summarize
from repro.net import GossipProtocol
from repro.parallel import ScanCostModel
from repro.workloads import QueryWorkloadGenerator

SIZES = [4, 8, 16, 32]

#: The large config: a million consumers querying a ten-million-item
#: agora.  Far beyond what a discrete-event run can simulate object-by-
#: object, so the large sweep streams a synthetic workload through the
#: shard cost model instead (see :func:`run_f1_large`).
LARGE_CONSUMERS = 1_000_000
LARGE_ITEMS = 10_000_000
LARGE_SHARD_COUNTS = (1, 2, 4, 8)


def run_f1(seed=67, queries_per_size=5) -> ExperimentResult:
    result = ExperimentResult(
        "F1", "Scalability with the number of sources (figure series)",
        ["n_sources", "response_time", "contracts_per_query",
         "gossip_messages", "global_recall", "relevant_pool_size"],
    )
    for n_sources in SIZES:
        agora = build_agora(seed=seed, n_sources=n_sources, items_per_source=15,
                            calibration_pairs=200)
        workload = QueryWorkloadGenerator(
            agora.topic_space, agora.vocabulary, agora.sim.rng.spawn("f1-q"),
        )
        profile = UserProfile(
            user_id="f1-user",
            interests=agora.topic_space.basis("folk-jewelry", 0.9),
        )
        consumer = Consumer(agora, profile, planner="trading")

        response_times, contract_counts = [], []
        recalls, pool_sizes = [], []
        for index in range(queries_per_size):
            # Topically routed queries: jewelry material lives in museum
            # and auction collections (untargeted broadcast drowns in
            # corrupted scores from unrelated domains — a §2 pathology
            # studied separately in T1/T2).
            query = workload.topic_query(
                "folk-jewelry", k=10, target_domains=("museum", "auction"),
            )
            outcome = consumer.ask(query)
            response_times.append(outcome.response_time)
            contract_counts.append(len(outcome.contracts))
            relevant_everywhere = set()
            for source in agora.sources.values():
                for item in source.visible_items(agora.now):
                    if agora.oracle.is_relevant(query, item):
                        relevant_everywhere.add(item.item_id)
            denominator = min(len(relevant_everywhere), query.k)

            def recall_of(items):
                found = sum(
                    1 for item in items if agora.oracle.is_relevant(query, item)
                )
                return found / denominator if denominator else 1.0

            recalls.append(recall_of(outcome.results.items()))
            pool_sizes.append(len(relevant_everywhere))
        # Gossip cost: disseminate one advertisement to the whole overlay.
        before = agora.sim.trace.counter("net.messages_sent")
        gossip = GossipProtocol(agora.network, agora.sim.rng.spawn("f1-gossip"),
                                fanout=2, max_rounds=12)
        for node in agora.topology.nodes:
            gossip.subscribe(node, lambda rid, data: None)
            agora.network.register(node, gossip.make_handler(node))
        gossip.start(agora.topology.nodes[0], "new-source-ad", {"id": "x"})
        agora.run(until=agora.now + 40.0)
        gossip_messages = agora.sim.trace.counter("net.messages_sent") - before
        result.add_row(
            n_sources,
            summarize(response_times).mean,
            summarize(contract_counts).mean,
            gossip_messages,
            summarize(recalls).mean,
            summarize(pool_sizes).mean,
        )
    result.add_note(
        "expected shape: gossip cost grows with size; response time stays "
        "flat (parallel retrieval); fixed-k recall falls as relevant "
        "content spreads over more sources — the coverage gap that "
        "motivates replication and subcontracting (§4)"
    )
    return result


def run_f1_large(
    seed=67,
    n_consumers=LARGE_CONSUMERS,
    n_items=LARGE_ITEMS,
    n_sources=64,
    chunk_size=100_000,
    shard_counts=LARGE_SHARD_COUNTS,
) -> ExperimentResult:
    """F1 at agora scale: 10^6 consumers over 10^7 items, sharded.

    The workload is synthetic and *streamed*: consumer queries arrive in
    fixed-size chunks and fold into per-source hit counters, so memory
    stays O(n_sources + chunk_size) no matter how many consumers run —
    nothing about the sweep materializes a million query objects or ten
    million items.  Latency is priced by
    :class:`repro.parallel.ScanCostModel`, the same virtual-time cost
    model the shard pool's bench gate uses (the CI box has one core;
    wall-clock would measure the scheduler, not the architecture).

    Item placement follows a Zipf-like skew over sources (rank-harmonic
    weights) — the big sources that dominate query traffic are exactly
    the scans where sharding pays.
    """
    result = ExperimentResult(
        "F1-large",
        f"Sharded scan scaling: {n_consumers:,} consumers / {n_items:,} items",
        ["n_shards", "mean_rank_latency", "total_sim_time",
         "queries_per_sim_unit", "speedup_vs_1"],
    )
    # Rank-harmonic item placement: source r holds ~ n_items / (r+1) / H.
    weights = 1.0 / np.arange(1, n_sources + 1)
    weights /= weights.sum()
    pool_sizes = np.maximum(1, (weights * n_items).astype(np.int64))
    # Consumers query a source with probability proportional to its pool
    # (popular collections attract the traffic).  Stream in chunks,
    # keeping only per-source hit counts.
    rng = np.random.default_rng(seed)
    hits = np.zeros(n_sources, dtype=np.int64)
    remaining = n_consumers
    while remaining > 0:
        batch = min(chunk_size, remaining)
        drawn = rng.choice(n_sources, size=batch, p=weights)
        hits += np.bincount(drawn, minlength=n_sources)
        remaining -= batch
    model = ScanCostModel()
    baseline_total = None
    for n_shards in shard_counts:
        latency = np.array(
            [model.rank_latency(int(n), n_shards) for n in pool_sizes]
        )
        total = float(hits @ latency)
        if baseline_total is None:
            baseline_total = total
        result.add_row(
            n_shards,
            total / n_consumers,
            total,
            n_consumers / total,
            baseline_total / total,
        )
    result.add_note(
        "expected shape: latency falls as shards absorb the per-candidate "
        "scan until the fixed dispatch/merge overheads dominate; the "
        "committed gate is >=1.8x at 4 shards, which the cost model meets "
        "for every pool above a few hundred candidates"
    )
    return result


if pytest is not None:

    @pytest.mark.benchmark(group="F1")
    def test_f1_scalability(benchmark):
        result = benchmark.pedantic(run_f1, rounds=1, iterations=1)
        result.print()
        rows = {row[0]: row for row in result.rows}
        assert rows[32][3] > rows[4][3]  # gossip cost grows
        # Response time grows sub-linearly: 8x sources < 4x time.
        assert rows[32][1] < 4.0 * max(rows[4][1], 1e-9)
        # The relevant pool grows with the agora while fixed-k recall falls.
        assert rows[32][5] > rows[4][5]
        assert rows[32][4] <= rows[4][4]

    @pytest.mark.benchmark(group="F1")
    def test_f1_large_scalability(benchmark):
        result = benchmark.pedantic(run_f1_large, rounds=1, iterations=1)
        result.print()
        rows = {row[0]: row for row in result.rows}
        assert rows[1][4] == 1.0
        # The committed scale-out gate: >=1.8x at 4 shards.
        assert rows[4][4] >= 1.8
        # More shards never slow the aggregate workload down.
        assert rows[1][2] >= rows[2][2] >= rows[4][2] >= rows[8][2]


if __name__ == "__main__":
    import sys

    if "--large" in sys.argv:
        run_f1_large().print()
    else:
        run_f1().print()
