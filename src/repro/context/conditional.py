"""Context-conditional profiles.

A :class:`ConditionalProfile` is a base profile plus a list of
(rule, overlay) pairs.  Given a context, all matching overlays apply in
order of increasing specificity (more specific rules win on conflicting
parts) — the concrete design for "someone's (active) profile may be
different according to the context" (§8).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.context.model import Context
from repro.context.rules import ActivationRule, ProfileOverlay
from repro.personalization.profile import UserProfile


@dataclass
class ConditionalProfile:
    """A profile whose active form depends on context."""

    base: UserProfile
    overlays: List[Tuple[ActivationRule, ProfileOverlay]] = field(default_factory=list)

    def add_overlay(self, rule: ActivationRule, overlay: ProfileOverlay) -> None:
        """Attach a (rule, overlay) pair."""
        self.overlays.append((rule, overlay))

    def matching_rules(self, context: Context) -> List[ActivationRule]:
        """Rules firing under ``context``."""
        return [rule for rule, __ in self.overlays if rule.matches(context)]

    def active_profile(self, context: Context) -> UserProfile:
        """The profile in force under ``context``.

        Matching overlays apply in ascending specificity, so the most
        specific rule has the final word on any conflicting part.
        """
        matching = [
            (rule, overlay)
            for rule, overlay in self.overlays
            if rule.matches(context)
        ]
        matching.sort(key=lambda pair: pair[0].specificity)
        profile = self.base
        for __, overlay in matching:
            profile = overlay.apply(profile)
        return profile

    @property
    def is_static(self) -> bool:
        """Whether no overlays are attached."""
        return not self.overlays
