"""Profile learning from interaction logs.

"Profiling techniques need to be developed that will observe users during
their normal interaction with the system, interpret their actions
appropriately, and formulate their individual profiles" (§5).  The learner
consumes a stream of :class:`InteractionEvent` records (clicks, saves,
annotations, skips) and maintains an exponentially-decayed interest vector
plus mode-preference counts.

The learner never reads ground-truth latents: items are mapped into
concept space by a caller-supplied ``concept_fn`` (normally the
:class:`~repro.uncertainty.matching.ConceptLifter`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Optional

import numpy as np

from repro.data.items import InformationItem
from repro.personalization.profile import INTERACTION_MODES, UserProfile

ConceptFn = Callable[[InformationItem], np.ndarray]

#: evidence weight per action type; negative = disinterest signal
ACTION_WEIGHTS: Dict[str, float] = {
    "click": 1.0,
    "dwell": 1.5,
    "save": 3.0,
    "annotate": 4.0,
    "share": 2.5,
    "skip": -0.5,
}


@dataclass(frozen=True)
class InteractionEvent:
    """One observed user action."""

    user_id: str
    item: InformationItem
    action: str
    mode: str = "query"
    time: float = 0.0

    def __post_init__(self) -> None:
        if self.action not in ACTION_WEIGHTS:
            raise ValueError(
                f"unknown action {self.action!r}; known: {sorted(ACTION_WEIGHTS)}"
            )
        if self.mode not in INTERACTION_MODES:
            raise ValueError(f"unknown mode {self.mode!r}")


class ProfileLearner:
    """Builds and maintains a user's profile from events.

    Parameters
    ----------
    n_topics:
        Dimensionality of the concept space.
    concept_fn:
        Maps an item to its estimated concept vector.
    learning_rate:
        Weight of new evidence against the existing estimate.
    decay:
        Per-event multiplicative forgetting applied to old interests.
    """

    def __init__(
        self,
        n_topics: int,
        concept_fn: ConceptFn,
        learning_rate: float = 0.15,
        decay: float = 0.995,
    ):
        if n_topics < 1:
            raise ValueError("n_topics must be >= 1")
        if not 0.0 < learning_rate <= 1.0:
            raise ValueError("learning_rate must be in (0, 1]")
        if not 0.0 < decay <= 1.0:
            raise ValueError("decay must be in (0, 1]")
        self.n_topics = n_topics
        self.concept_fn = concept_fn
        self.learning_rate = learning_rate
        self.decay = decay
        self._interests: Dict[str, np.ndarray] = {}
        self._mode_counts: Dict[str, Dict[str, float]] = {}
        self._event_counts: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def observe(self, event: InteractionEvent) -> None:
        """Fold one event into the user's running estimate."""
        user_id = event.user_id
        interests = self._interests.get(user_id)
        if interests is None:
            interests = np.full(self.n_topics, 1.0 / self.n_topics)
        concept = np.asarray(self.concept_fn(event.item), dtype=float)
        if concept.shape != (self.n_topics,):
            raise ValueError(
                f"concept_fn returned shape {concept.shape}, expected ({self.n_topics},)"
            )
        weight = ACTION_WEIGHTS[event.action]
        updated = interests * self.decay + self.learning_rate * weight * concept
        updated = np.clip(updated, 1e-9, None)
        self._interests[user_id] = updated / updated.sum()
        modes = self._mode_counts.setdefault(
            user_id, {mode: 1.0 for mode in INTERACTION_MODES}
        )
        if weight > 0:
            modes[event.mode] += 1.0
        self._event_counts[user_id] = self._event_counts.get(user_id, 0) + 1

    def observe_all(self, events: Iterable[InteractionEvent]) -> None:
        """Fold a batch of events."""
        for event in events:
            self.observe(event)

    # ------------------------------------------------------------------
    def events_seen(self, user_id: str) -> int:
        """Events observed for ``user_id``."""
        return self._event_counts.get(user_id, 0)

    def interests(self, user_id: str) -> np.ndarray:
        """Current interest estimate (uniform for unseen users)."""
        interests = self._interests.get(user_id)
        if interests is None:
            return np.full(self.n_topics, 1.0 / self.n_topics)
        return interests.copy()

    def profile(self, user_id: str, base: Optional[UserProfile] = None) -> UserProfile:
        """Materialise the learned profile.

        ``base`` supplies the non-learnable parts (risk attitude, QoS
        weights); learned interests, mode preferences and confidence are
        filled in.
        """
        modes = self._mode_counts.get(
            user_id, {mode: 1.0 for mode in INTERACTION_MODES}
        )
        if base is None:
            return UserProfile(
                user_id=user_id,
                interests=self.interests(user_id),
                mode_preference=dict(modes),
                confidence=float(self.events_seen(user_id)),
            )
        return UserProfile(
            user_id=user_id,
            interests=self.interests(user_id),
            qos_weights=base.qos_weights,
            risk=base.risk,
            negotiation_style=base.negotiation_style,
            mode_preference=dict(modes),
            price_sensitivity=base.price_sensitivity,
            confidence=float(self.events_seen(user_id)),
        )
