"""Tests for user population generation and the click model."""

import numpy as np
import pytest

from repro.data import InformationItem
from repro.personalization import UserProfile
from repro.workloads import ClickModel, UserPopulationGenerator


@pytest.fixture
def generator(topic_space, streams):
    return UserPopulationGenerator(topic_space, streams.spawn("pop"))


class TestPopulation:
    def test_population_size(self, generator):
        assert len(generator.generate_population(12)) == 12

    def test_negative_count_rejected(self, generator):
        with pytest.raises(ValueError):
            generator.generate_population(-1)

    def test_unique_user_ids(self, generator):
        population = generator.generate_population(20)
        assert len({p.user_id for p in population}) == 20

    def test_profiles_valid(self, generator):
        for profile in generator.generate_population(10):
            assert profile.interests.sum() == pytest.approx(1.0)
            assert profile.negotiation_style

    def test_population_diverse(self, generator):
        population = generator.generate_population(30)
        peak_topics = {int(np.argmax(p.interests)) for p in population}
        styles = {p.negotiation_style for p in population}
        risks = {p.risk.name for p in population}
        assert len(peak_topics) >= 4
        assert len(styles) >= 3
        assert len(risks) >= 2

    def test_deterministic(self, topic_space, streams):
        from repro.sim import RngStreams

        a = UserPopulationGenerator(topic_space, RngStreams(4).spawn("p"))
        b = UserPopulationGenerator(topic_space, RngStreams(4).spawn("p"))
        pa = a.generate_population(5)
        pb = b.generate_population(5)
        for x, y in zip(pa, pb):
            np.testing.assert_allclose(x.interests, y.interests)


class TestClickModel:
    def _items(self, topic_space, on_topic, off_topic):
        items = []
        for i in range(on_topic):
            items.append(InformationItem(
                item_id=f"on-{i}", domain="d",
                latent=topic_space.basis(topic_space.names[0], 0.95),
            ))
        for i in range(off_topic):
            items.append(InformationItem(
                item_id=f"off-{i}", domain="d",
                latent=topic_space.basis(topic_space.names[5], 0.95),
            ))
        return items

    def test_clicks_follow_relevance(self, topic_space, streams):
        profile = UserProfile(
            user_id="u", interests=topic_space.basis(topic_space.names[0], 0.95),
        )
        model = ClickModel(topic_space, streams.spawn("cm"))
        items = self._items(topic_space, 5, 5)
        clicks_on, clicks_off = 0, 0
        for __ in range(50):
            events = model.simulate(profile, items)
            for event in events:
                if event.action in ("click", "save"):
                    if event.item.item_id.startswith("on"):
                        clicks_on += 1
                    else:
                        clicks_off += 1
        assert clicks_on > 3 * max(clicks_off, 1)

    def test_position_bias(self, topic_space, streams):
        profile = UserProfile(
            user_id="u", interests=topic_space.basis(topic_space.names[0], 0.95),
        )
        model = ClickModel(topic_space, streams.spawn("cm2"),
                           examination_decay=0.5)
        items = self._items(topic_space, 10, 0)
        first_interactions, last_interactions = 0, 0
        for __ in range(100):
            events = model.simulate(profile, items)
            ids = [e.item.item_id for e in events]
            if "on-0" in ids:
                first_interactions += 1
            if "on-9" in ids:
                last_interactions += 1
        assert first_interactions > last_interactions

    def test_invalid_decay(self, topic_space, streams):
        with pytest.raises(ValueError):
            ClickModel(topic_space, streams.spawn("cm3"), examination_decay=0.0)

    def test_events_carry_mode_and_time(self, topic_space, streams):
        profile = UserProfile(
            user_id="u", interests=topic_space.basis(topic_space.names[0], 0.95),
        )
        model = ClickModel(topic_space, streams.spawn("cm4"))
        items = self._items(topic_space, 3, 0)
        events = model.simulate(profile, items, mode="browse", time=12.0)
        for event in events:
            assert event.mode == "browse"
            assert event.time == 12.0
