"""Tests for the network message router."""

import pytest

from repro.net import Message, Network, NodeHealth, random_topology
from repro.sim import Simulator


@pytest.fixture
def setup():
    sim = Simulator(seed=5)
    streams = sim.rng.spawn("net")
    topo = random_topology(8, streams)
    net = Network(sim, topo, streams, jitter_fraction=0.0)
    return sim, topo, net


class TestMessages:
    def test_message_size_positive(self):
        with pytest.raises(ValueError):
            Message("a", "b", "query", size=0.0)

    def test_reply_addresses_sender(self):
        msg = Message("a", "b", "query")
        reply = msg.reply("answer")
        assert reply.sender == "b"
        assert reply.recipient == "a"
        assert reply.reply_to == msg.message_id


class TestDelivery:
    def test_message_delivered(self, setup):
        sim, topo, net = setup
        received = []
        net.register("n3", received.append)
        net.send(Message("n0", "n3", "query", payload="hello"))
        sim.run()
        assert len(received) == 1
        assert received[0].payload == "hello"

    def test_delivery_takes_time(self, setup):
        sim, topo, net = setup
        times = []
        net.register("n3", lambda m: times.append(sim.now))
        net.send(Message("n0", "n3", "query"))
        sim.run()
        assert times[0] > 0

    def test_self_message(self, setup):
        sim, topo, net = setup
        received = []
        net.register("n0", received.append)
        net.send(Message("n0", "n0", "note"))
        sim.run()
        assert len(received) == 1

    def test_unregistered_recipient_counted(self, setup):
        sim, topo, net = setup
        net.send(Message("n0", "n4", "query"))
        sim.run()
        assert sim.trace.counter("net.messages_unhandled") == 1

    def test_counters(self, setup):
        sim, topo, net = setup
        net.register("n1", lambda m: None)
        net.send(Message("n0", "n1", "query"))
        sim.run()
        assert sim.trace.counter("net.messages_sent") == 1
        assert sim.trace.counter("net.messages_delivered") == 1

    def test_register_unknown_node(self, setup):
        __, __, net = setup
        with pytest.raises(KeyError):
            net.register("n99", lambda m: None)

    def test_broadcast(self, setup):
        sim, topo, net = setup
        received = []
        for node in topo.nodes:
            net.register(node, received.append)
        sent = net.broadcast("n0", "announce")
        sim.run()
        assert sent == 7
        assert len(received) == 7

    def test_jitter_bounds(self):
        sim = Simulator(seed=5)
        streams = sim.rng.spawn("net")
        topo = random_topology(6, streams)
        net = Network(sim, topo, streams, jitter_fraction=0.5)
        msg = Message("n0", "n3", "q")
        base_net = Network(sim, topo, streams.spawn("nojit"), jitter_fraction=0.0)
        base = base_net.delivery_delay(msg)
        for __ in range(20):
            delay = net.delivery_delay(msg)
            assert 0.5 * base <= delay <= 1.5 * base

    def test_invalid_jitter(self, setup):
        sim, topo, __ = setup
        with pytest.raises(ValueError):
            Network(sim, topo, sim.rng.spawn("x"), jitter_fraction=1.0)


class TestDrops:
    def test_down_recipient_drops(self, setup):
        sim, topo, net = setup
        health = NodeHealth(sim, topo.nodes, sim.rng.spawn("health"), enabled=False)
        net.health = health
        received = []
        net.register("n3", received.append)
        health.set_state("n3", False)
        ok = net.send(Message("n0", "n3", "query"))
        sim.run()
        assert ok is False
        assert received == []
        assert sim.trace.counter("net.messages_dropped") == 1

    def test_drop_callback(self, setup):
        sim, topo, net = setup
        health = NodeHealth(sim, topo.nodes, sim.rng.spawn("health"), enabled=False)
        net.health = health
        drops = []
        net.on_drop = lambda msg, node: drops.append(node)
        health.set_state("n3", False)
        net.send(Message("n0", "n3", "query"))
        sim.run()
        assert drops == ["n3"]

    def test_recipient_goes_down_in_flight(self, setup):
        sim, topo, net = setup
        health = NodeHealth(sim, topo.nodes, sim.rng.spawn("health"), enabled=False)
        net.health = health
        received = []
        net.register("n3", received.append)
        net.send(Message("n0", "n3", "query"))
        health.set_state("n3", False)  # goes down before delivery event fires
        sim.run()
        assert received == []
