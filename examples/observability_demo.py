"""Record one seeded agora run's observability artifacts.

Builds a small agora with causal tracing and consumer-side resilience
enabled, degrades half the overlay so retries/failovers actually fire,
runs a batch of queries, and exports the full artifact set:

    runs/<name>/manifest.json   canonical run provenance
    runs/<name>/metrics.jsonl   counters + distribution summaries
    runs/<name>/spans.jsonl     the causal span forest

Two invocations with the same ``--seed`` produce byte-identical
manifests — attest it with::

    python examples/observability_demo.py --seed 11 --out runs/a
    python examples/observability_demo.py --seed 11 --out runs/b
    python -m repro.obs diff runs/a/manifest.json runs/b/manifest.json
"""

import argparse

import numpy as np

from repro import Consumer, UserProfile, build_agora
from repro.obs import export_run
from repro.resilience import ResilienceConfig
from repro.workloads import QueryWorkloadGenerator


def record(seed: int, out: str, n_queries: int = 8, availability: float = 0.5) -> dict:
    agora = build_agora(
        seed=seed, n_sources=8, items_per_source=12, calibration_pairs=0,
        enable_tracing=True,
    )
    rng = np.random.default_rng(seed + 1)
    for node in agora.topology.nodes[:-1]:  # keep the consumer node up
        agora.health.set_state(node, bool(rng.random() < availability))
    workload = QueryWorkloadGenerator(
        agora.topic_space, agora.vocabulary, agora.sim.rng.spawn("obs-demo"),
    )
    profile = UserProfile(
        user_id="obs-demo-user",
        interests=agora.topic_space.basis("folk-jewelry", 0.9),
    )
    consumer = Consumer(
        agora, profile, planner="trading",
        resilience=ResilienceConfig.default_enabled(),
    )
    for index in range(n_queries):
        topic = agora.topic_space.names[index % 5]
        consumer.ask(workload.topic_query(topic, k=10))
    manifest = agora.run_manifest(scenario="observability-demo")
    return export_run(
        out, manifest, registry=agora.sim.metrics, tracer=agora.tracer
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--out", default="runs/demo")
    parser.add_argument("--queries", type=int, default=8)
    parser.add_argument("--availability", type=float, default=0.5)
    args = parser.parse_args()
    written = record(args.seed, args.out, args.queries, args.availability)
    for kind in sorted(written):
        print(f"{kind}: {written[kind]}")


if __name__ == "__main__":
    main()
