"""Tests for shared workspaces and threads."""

import numpy as np

from repro.collaboration import ExplorationThread, SharedWorkspace, reset_thread_ids
from repro.data import InformationItem
from repro.uncertainty import UncertainMatch

from tests.conftest import make_topic_query


def _match(item_id, probability=0.5):
    item = InformationItem(item_id=item_id, domain="d", latent=np.array([1.0]))
    return UncertainMatch(item=item, score=probability, probability=probability)


class TestWorkspace:
    def test_contribute_counts_new(self):
        workspace = SharedWorkspace()
        added = workspace.contribute("iris", [_match("a"), _match("b")])
        assert added == 2
        assert len(workspace) == 2

    def test_duplicates_keep_discovery_credit(self):
        workspace = SharedWorkspace()
        workspace.contribute("iris", [_match("a", 0.5)], time=1.0)
        added = workspace.contribute("jason", [_match("a", 0.9)], time=2.0)
        assert added == 0
        assert workspace.first_finder("a") == "iris"
        # Confidence upgraded to the better evidence.
        assert workspace.matches().matches[0].probability == 0.9

    def test_lower_confidence_duplicate_ignored(self):
        workspace = SharedWorkspace()
        workspace.contribute("iris", [_match("a", 0.9)])
        workspace.contribute("jason", [_match("a", 0.1)])
        assert workspace.matches().matches[0].probability == 0.9

    def test_contributions_by_user(self):
        workspace = SharedWorkspace()
        workspace.contribute("iris", [_match("a")])
        workspace.contribute("jason", [_match("b"), _match("c")])
        assert len(workspace.contributions_by("jason")) == 2
        assert workspace.contributors() == ["iris", "jason"]

    def test_membership(self):
        workspace = SharedWorkspace()
        workspace.contribute("iris", [_match("a")])
        assert "a" in workspace
        assert "z" not in workspace
        assert workspace.first_finder("z") is None

    def test_items_in_discovery_order(self):
        workspace = SharedWorkspace()
        workspace.contribute("iris", [_match("z", 0.2)])
        workspace.contribute("iris", [_match("a", 0.9)])
        assert [i.item_id for i in workspace.items()] == ["z", "a"]


class TestThreads:
    def test_thread_lineage(self, topic_space, vocabulary):
        reset_thread_ids()
        thread = ExplorationThread(owner_id="iris")
        q1 = make_topic_query(topic_space, vocabulary, "folk-jewelry")
        q2 = make_topic_query(topic_space, vocabulary, "dance-forms")
        thread.extend(q1)
        thread.extend(q2)
        assert thread.last_query is q2
        assert len(thread.steps) == 2

    def test_pick_up_records_takeover(self, topic_space, vocabulary):
        thread = ExplorationThread(owner_id="iris")
        query = make_topic_query(topic_space, vocabulary, "folk-jewelry")
        thread.extend(query)
        continued = thread.pick_up("jason")
        assert continued is query
        assert thread.taken_over_by == ["jason"]

    def test_owner_pickup_not_recorded(self, topic_space, vocabulary):
        thread = ExplorationThread(owner_id="iris")
        thread.extend(make_topic_query(topic_space, vocabulary, "folk-jewelry"))
        thread.pick_up("iris")
        assert thread.taken_over_by == []

    def test_empty_thread_pickup(self):
        thread = ExplorationThread(owner_id="iris")
        assert thread.pick_up("jason") is None
