"""Information objects and synthetic content generation (substrate).

Public API:

- :class:`TopicSpace` — shared latent topic space (the relevance oracle).
- :class:`InformationItem` and subclasses — typed objects.
- :class:`FeatureExtractor`, :class:`FeatureSetSpec` — observable features.
- :class:`Vocabulary` — topic-conditioned term generation.
- :class:`CorpusGenerator`, :class:`DomainSpec`, :func:`iris_domains` —
  multi-domain synthetic corpora.
- :class:`ProvenanceChain` — item origin tracking.
"""

from repro.data.corpus import CorpusGenerator, DomainSpec, iris_domains
from repro.data.features import (
    DEFAULT_FEATURE_SETS,
    FeatureExtractor,
    FeatureSetSpec,
)
from repro.data.items import (
    Annotation,
    CompoundObject,
    InformationItem,
    MediaObject,
    TextDocument,
    combined_latent,
    item_census,
    make_item_id,
    reset_item_ids,
)
from repro.data.provenance import ProvenanceChain, ProvenanceHop, originate
from repro.data.topics import TopicSpace
from repro.data.vocabulary import Vocabulary

__all__ = [
    "Annotation",
    "CompoundObject",
    "CorpusGenerator",
    "DEFAULT_FEATURE_SETS",
    "DomainSpec",
    "FeatureExtractor",
    "FeatureSetSpec",
    "InformationItem",
    "MediaObject",
    "ProvenanceChain",
    "ProvenanceHop",
    "TextDocument",
    "TopicSpace",
    "Vocabulary",
    "combined_latent",
    "iris_domains",
    "item_census",
    "make_item_id",
    "originate",
    "reset_item_ids",
]
