"""Deterministic random-number streams for reproducible simulation.

Every stochastic component in the library draws from a *named child stream*
of a single root seed.  Two runs with the same root seed produce identical
results regardless of the order in which components were created, because
each stream is derived from the root seed and the stream's name alone.

Draw accounting
---------------
Every generator handed out by :meth:`RngStreams.stream` is wrapped in a
:class:`CountingGenerator`: a transparent proxy that counts each draw call
per stream name with **zero bitstream change** (the proxy invokes the very
same methods on the very same underlying generator).  The counters make a
run's randomness consumption attributable — the flight recorder
(:mod:`repro.obs.flight`) snapshots them per event so the divergence
debugger can name the exact streams whose consumption forked between two
runs.

Example
-------
>>> streams = RngStreams(seed=42)
>>> a = streams.stream("network.latency")
>>> b = streams.stream("sources.availability")
>>> a is streams.stream("network.latency")
True
>>> _ = a.random(3)
>>> streams.draw_counts()["network.latency"]
1
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Iterator, cast

import numpy as np

#: ``numpy.random.Generator`` methods that consume bits from the stream.
#: Attribute access to anything else passes through the counting proxy
#: untouched (``bit_generator``, ``spawn``, dunders, ...).
DRAW_METHODS = frozenset(
    {
        "beta", "binomial", "bytes", "chisquare", "choice", "dirichlet",
        "exponential", "f", "gamma", "geometric", "gumbel",
        "hypergeometric", "integers", "laplace", "logistic", "lognormal",
        "logseries", "multinomial", "multivariate_hypergeometric",
        "multivariate_normal", "negative_binomial",
        "noncentral_chisquare", "noncentral_f", "normal", "pareto",
        "permutation", "permuted", "poisson", "power", "random",
        "rayleigh", "shuffle", "standard_cauchy", "standard_exponential",
        "standard_gamma", "standard_normal", "standard_t", "triangular",
        "uniform", "vonmises", "wald", "weibull", "zipf",
    }
)


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``root_seed`` and a stream ``name``.

    The derivation is stable across platforms and Python versions: it hashes
    the UTF-8 encoding of the name together with the root seed using SHA-256
    and keeps the low 64 bits.
    """
    payload = f"{root_seed}:{name}".encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "little")


class CountingGenerator:
    """A transparent draw-counting proxy around one ``numpy`` generator.

    Draw methods (see :data:`DRAW_METHODS`) are wrapped so each *call*
    increments the owning registry's per-stream counter before delegating
    to the untouched underlying generator — the produced bitstream is
    bit-for-bit what the raw generator would produce.  Wrapped methods
    are cached in the instance ``__dict__`` on first access, so the
    ``__getattr__`` indirection is paid once per method name, not per
    draw.
    """

    def __init__(
        self, generator: np.random.Generator, owner: "RngStreams", name: str
    ) -> None:
        self._generator = generator
        self._owner = owner
        self._name = name

    @property
    def raw(self) -> np.random.Generator:
        """The unwrapped underlying generator (escape hatch)."""
        return self._generator

    def __getattr__(self, attr: str) -> Any:
        value = getattr(self._generator, attr)
        if attr in DRAW_METHODS:
            owner, name = self._owner, self._name

            def counted(*args: Any, **kwargs: Any) -> Any:
                owner._count_draw(name)
                return value(*args, **kwargs)

            counted.__name__ = attr
            # Cache the bound wrapper: later accesses hit the instance
            # dict directly and never re-enter __getattr__.
            self.__dict__[attr] = counted
            return counted
        return value

    def __getstate__(self) -> Dict[str, Any]:
        # The memoized ``counted`` closures cached in ``__dict__`` are
        # local functions and cannot be pickled; drop them.  The proxy is
        # fully reconstructable from the generator, owner and name — the
        # unpickled copy re-wraps draw methods lazily on first access, and
        # the underlying numpy generator pickles its bit state exactly, so
        # a round-tripped stream replays the identical bitstream.
        return {
            "_generator": self._generator,
            "_owner": self._owner,
            "_name": self._name,
        }

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)

    def __repr__(self) -> str:
        return f"CountingGenerator({self._name!r})"


class RngStreams:
    """A registry of named, independently seeded ``numpy`` generators.

    Parameters
    ----------
    seed:
        The root seed.  All child streams are pure functions of this seed
        and their name.
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}
        self._draw_counts: Dict[str, int] = {}
        self._draw_total = 0

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        if name not in self._streams:
            child_seed = derive_seed(self.seed, name)
            self._draw_counts.setdefault(name, 0)
            self._streams[name] = cast(
                np.random.Generator,
                CountingGenerator(np.random.default_rng(child_seed), self, name),
            )
        return self._streams[name]

    def fresh(self, name: str) -> np.random.Generator:
        """Return a *new* generator for ``name``, resetting any prior state.

        Draw counters are cumulative across ``fresh`` resets: a draw is a
        draw, whichever incarnation of the stream produced it.
        """
        self._streams.pop(name, None)
        return self.stream(name)

    def names(self) -> Iterator[str]:
        """Iterate over the names of streams created so far (sorted)."""
        return iter(sorted(self._streams))

    def spawn(self, prefix: str) -> "ScopedStreams":
        """Return a view that prefixes every stream name with ``prefix``."""
        return ScopedStreams(self, prefix)

    # -- draw accounting ---------------------------------------------------
    def _count_draw(self, name: str) -> None:
        self._draw_counts[name] += 1
        self._draw_total += 1

    @property
    def draw_total(self) -> int:
        """Total draw calls across every stream (cheap: one int read)."""
        return self._draw_total

    def draw_counts(self) -> Dict[str, int]:
        """Per-stream draw-call counts, sorted by stream name.

        Streams that were created but never drawn from report 0 — an
        *unconsumed* stream is itself diagnostic.
        """
        return {name: self._draw_counts[name] for name in sorted(self._draw_counts)}

    def reset(self) -> None:
        """Drop every stream and zero all draw accounting.

        After a reset the registry behaves exactly like a freshly
        constructed ``RngStreams(seed)``: the same stream names replay
        the same bitstreams from the start.
        """
        self._streams.clear()
        self._draw_counts.clear()
        self._draw_total = 0

    def __repr__(self) -> str:
        return f"RngStreams(seed={self.seed}, streams={len(self._streams)})"


class ScopedStreams:
    """A prefixed view over an :class:`RngStreams` registry.

    Components receive a scoped view so that their stream names cannot
    collide with other components' names.
    """

    def __init__(self, parent: RngStreams, prefix: str):
        self._parent = parent
        self._prefix = prefix

    @property
    def seed(self) -> int:
        """The root seed of the underlying registry."""
        return self._parent.seed

    def stream(self, name: str) -> np.random.Generator:
        """The named generator (prefix applied)."""
        return self._parent.stream(f"{self._prefix}.{name}")

    def fresh(self, name: str) -> np.random.Generator:
        """A reset named generator (prefix applied)."""
        return self._parent.fresh(f"{self._prefix}.{name}")

    def spawn(self, prefix: str) -> "ScopedStreams":
        """A nested scope with an extended prefix."""
        return ScopedStreams(self._parent, f"{self._prefix}.{prefix}")

    def draw_counts(self) -> Dict[str, int]:
        """Draw counts of the streams under this scope's prefix.

        Keys keep their full (prefixed) names so they line up with
        :meth:`RngStreams.draw_counts` and flight-recorder checkpoints.
        """
        prefix = f"{self._prefix}."
        return {
            name: count
            for name, count in self._parent.draw_counts().items()
            if name.startswith(prefix)
        }

    def __repr__(self) -> str:
        return f"ScopedStreams(prefix={self._prefix!r}, seed={self.seed})"
