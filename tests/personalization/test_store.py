"""Tests for the profile store."""

import numpy as np
import pytest

from repro.personalization import ProfileStore, UserProfile


def _profile(user_id, interests):
    return UserProfile(user_id=user_id, interests=np.asarray(interests, float))


@pytest.fixture
def store():
    store = ProfileStore(index_top_n=2)
    store.save(_profile("jewelry-fan", [0.8, 0.1, 0.05, 0.05]))
    store.save(_profile("dance-fan", [0.05, 0.8, 0.1, 0.05]))
    store.save(_profile("mixed", [0.45, 0.45, 0.05, 0.05]))
    return store


class TestStore:
    def test_save_load(self, store):
        assert store.load("jewelry-fan").user_id == "jewelry-fan"

    def test_load_missing(self, store):
        with pytest.raises(KeyError):
            store.load("nobody")

    def test_get_missing_returns_none(self, store):
        assert store.get("nobody") is None

    def test_len_contains(self, store):
        assert len(store) == 3
        assert "mixed" in store
        assert "nobody" not in store

    def test_delete(self, store):
        store.delete("mixed")
        assert "mixed" not in store
        assert "mixed" not in store.candidates_by_topic(0)

    def test_save_replaces_and_reindexes(self, store):
        store.save(_profile("jewelry-fan", [0.02, 0.03, 0.15, 0.8]))
        assert "jewelry-fan" not in store.candidates_by_topic(0)
        assert "jewelry-fan" in store.candidates_by_topic(3)

    def test_topic_index(self, store):
        assert "jewelry-fan" in store.candidates_by_topic(0)
        assert "dance-fan" in store.candidates_by_topic(1)

    def test_invalid_index_top_n(self):
        with pytest.raises(ValueError):
            ProfileStore(index_top_n=0)


class TestSimilarity:
    def test_find_similar_ranks_by_cosine(self, store):
        query = _profile("query-user", [0.9, 0.05, 0.025, 0.025])
        results = store.find_similar(query, k=2)
        assert results[0][0] == "jewelry-fan"

    def test_self_excluded(self, store):
        me = store.load("mixed")
        results = store.find_similar(me, k=5)
        assert all(user_id != "mixed" for user_id, __ in results)

    def test_self_included_when_requested(self, store):
        me = store.load("mixed")
        results = store.find_similar(me, k=5, exclude_self=False)
        assert results[0][0] == "mixed"

    def test_k_limits_results(self, store):
        query = _profile("q", [0.5, 0.5, 0.0, 0.0])
        assert len(store.find_similar(query, k=1)) == 1

    def test_invalid_k(self, store):
        with pytest.raises(ValueError):
            store.find_similar(_profile("q", [1, 0, 0, 0]), k=0)
