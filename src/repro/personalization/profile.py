"""User profiles.

§5 asks for user models that capture "the personality, background,
interests, and other characteristics" of users, and notes that even the
*negotiation style* belongs in the profile.  A :class:`UserProfile`
therefore carries:

- topic interests (a vector in the shared concept space),
- QoS trade-off weights (query-time vs result-quality preference),
- a risk attitude (§2's choice under uncertainty),
- a negotiation style (mapped to a concession strategy),
- interaction-mode preferences (query vs browse vs feed, §9).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

import numpy as np

from repro.negotiation.strategies import (
    ConcessionStrategy,
    FirmStrategy,
    TitForTatStrategy,
    boulware,
    conceder,
    linear,
)
from repro.qos.vector import QoSWeights
from repro.uncertainty.risk import RiskProfile, risk_neutral

NEGOTIATION_STYLES = ("boulware", "conceder", "linear", "tit-for-tat", "firm")
INTERACTION_MODES = ("query", "browse", "feed")


def make_strategy(style: str) -> ConcessionStrategy:
    """Map a profile's negotiation style to a concession strategy."""
    factories = {
        "boulware": boulware,
        "conceder": conceder,
        "linear": linear,
        "tit-for-tat": TitForTatStrategy,
        "firm": FirmStrategy,
    }
    try:
        return factories[style]()
    except KeyError:
        raise ValueError(
            f"unknown negotiation style {style!r}; known: {NEGOTIATION_STYLES}"
        ) from None


@dataclass
class UserProfile:
    """Everything the agora knows (or believes) about one user.

    Attributes
    ----------
    user_id:
        Stable identity.
    interests:
        Topic-interest vector (non-negative, L1-normalised).
    qos_weights:
        Trade-off weights over QoS dimensions.
    risk:
        Attitude towards uncertain outcomes.
    negotiation_style:
        One of :data:`NEGOTIATION_STYLES`.
    mode_preference:
        Probability of choosing each interaction mode.
    price_sensitivity:
        How much a unit of price subtracts from utility.
    confidence:
        How much evidence backs this profile (observation count).
    """

    user_id: str
    interests: np.ndarray
    qos_weights: QoSWeights = field(default_factory=QoSWeights)
    risk: RiskProfile = field(default_factory=risk_neutral)
    negotiation_style: str = "linear"
    mode_preference: Dict[str, float] = field(
        default_factory=lambda: {"query": 0.6, "browse": 0.25, "feed": 0.15}
    )
    price_sensitivity: float = 0.02
    confidence: float = 0.0

    def __post_init__(self) -> None:
        self.interests = np.asarray(self.interests, dtype=float)
        if np.any(self.interests < -1e-12):
            raise ValueError("interests must be non-negative")
        total = self.interests.sum()
        if total <= 0:
            raise ValueError("interests must have positive mass")
        self.interests = np.clip(self.interests, 0.0, None) / total
        if self.negotiation_style not in NEGOTIATION_STYLES:
            raise ValueError(f"unknown negotiation style {self.negotiation_style!r}")
        if set(self.mode_preference) != set(INTERACTION_MODES):
            raise ValueError(f"mode_preference must cover {INTERACTION_MODES}")
        mode_total = sum(self.mode_preference.values())
        if mode_total <= 0:
            raise ValueError("mode_preference must have positive mass")
        self.mode_preference = {
            k: v / mode_total for k, v in self.mode_preference.items()
        }
        if self.price_sensitivity < 0:
            raise ValueError("price_sensitivity must be non-negative")
        if self.confidence < 0:
            raise ValueError("confidence must be non-negative")

    # ------------------------------------------------------------------
    def interest_in(self, concept: np.ndarray) -> float:
        """Cosine affinity between the profile and a concept vector."""
        concept = np.asarray(concept, dtype=float)
        if concept.shape != self.interests.shape:
            raise ValueError("concept dimensionality mismatch")
        norm_a = np.linalg.norm(self.interests)
        norm_b = np.linalg.norm(concept)
        if norm_a == 0 or norm_b == 0:
            return 0.0
        return float(np.clip(np.dot(self.interests, concept) / (norm_a * norm_b), 0.0, 1.0))

    def strategy(self) -> ConcessionStrategy:
        """The concession strategy matching the profile's style."""
        return make_strategy(self.negotiation_style)

    def similarity(self, other: "UserProfile") -> float:
        """Interest-vector similarity to another profile, in [0, 1]."""
        return self.interest_in(other.interests)

    def with_interests(self, interests: np.ndarray) -> "UserProfile":
        """A copy with a different interest vector."""
        return replace(self, interests=np.asarray(interests, dtype=float))

    def copy(self) -> "UserProfile":
        """A deep-enough copy safe to mutate."""
        return replace(self, interests=self.interests.copy(),
                       mode_preference=dict(self.mode_preference))
