"""Tests for activation rules and overlays."""

import numpy as np
import pytest

from repro.context import ActivationRule, Context, ProfileOverlay
from repro.personalization import UserProfile
from repro.qos import QoSWeights


def _profile():
    return UserProfile(user_id="iris", interests=np.array([0.5, 0.3, 0.2]))


class TestRules:
    def test_single_condition(self):
        rule = ActivationRule({"task": "leisure"})
        assert rule.matches(Context(task="leisure"))
        assert not rule.matches(Context(task="paper-writing"))

    def test_set_condition(self):
        rule = ActivationRule({"time_of_day": {"morning", "afternoon"}})
        assert rule.matches(Context(time_of_day="morning"))
        assert not rule.matches(Context(time_of_day="evening"))

    def test_conjunction(self):
        rule = ActivationRule({"task": "leisure", "location": "Paris"})
        assert rule.matches(Context(task="leisure", location="Paris"))
        assert not rule.matches(Context(task="leisure", location="Athens"))

    def test_companions_alone(self):
        rule = ActivationRule({"companions": "alone"})
        assert rule.matches(Context())
        assert not rule.matches(Context(companions=("jason",)))

    def test_companions_accompanied(self):
        rule = ActivationRule({"companions": "accompanied"})
        assert rule.matches(Context(companions=("jason",)))

    def test_unknown_dimension_rejected(self):
        with pytest.raises(ValueError):
            ActivationRule({"mood": "happy"})

    def test_empty_rule_rejected(self):
        with pytest.raises(ValueError):
            ActivationRule({})

    def test_specificity(self):
        assert ActivationRule({"task": "leisure"}).specificity == 1
        assert ActivationRule({"task": "leisure", "location": "x"}).specificity == 2


class TestOverlays:
    def test_interest_shift(self):
        overlay = ProfileOverlay(interest_shift=np.array([0.0, 0.0, 1.0]))
        updated = overlay.apply(_profile())
        assert np.argmax(updated.interests) == 2
        assert updated.interests.sum() == pytest.approx(1.0)

    def test_shift_dimension_checked(self):
        overlay = ProfileOverlay(interest_shift=np.array([1.0]))
        with pytest.raises(ValueError):
            overlay.apply(_profile())

    def test_qos_weights_replaced(self):
        overlay = ProfileOverlay(qos_weights=QoSWeights(response_time=9.0))
        updated = overlay.apply(_profile())
        assert updated.qos_weights.response_time == 9.0

    def test_mode_preference_replaced_and_normalised(self):
        overlay = ProfileOverlay(mode_preference={"query": 1.0, "browse": 3.0, "feed": 0.0})
        updated = overlay.apply(_profile())
        assert updated.mode_preference["browse"] == 0.75

    def test_style_replaced(self):
        overlay = ProfileOverlay(negotiation_style="firm")
        assert overlay.apply(_profile()).negotiation_style == "firm"

    def test_base_untouched(self):
        profile = _profile()
        ProfileOverlay(negotiation_style="firm").apply(profile)
        assert profile.negotiation_style == "linear"
