"""Rule base class and the per-file context handed to every rule.

The :class:`RuleContext` pre-computes the pieces most rules need: the
parsed AST, an import-alias table that resolves local names to canonical
dotted paths (``np.random.seed`` → ``numpy.random.seed`` even under
``import numpy as np``), and the set of line numbers inside
``if TYPE_CHECKING:`` blocks (type-only imports are exempt from the
layering rule because they cannot affect runtime behaviour).
"""

from __future__ import annotations

import ast
from abc import ABC, abstractmethod
from typing import Dict, Iterable, List, Optional, Set

from repro.analysis.violations import Violation


def _is_type_checking_test(test: ast.expr) -> bool:
    if isinstance(test, ast.Name) and test.id == "TYPE_CHECKING":
        return True
    return isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING"


class RuleContext:
    """Everything a rule may inspect about one module."""

    def __init__(self, path: str, source: str, tree: ast.Module, module: Optional[str]):
        self.path = path
        self.source = source
        self.tree = tree
        #: Dotted module name (``repro.sim.kernel``) when known, else ``None``.
        self.module = module
        self.lines: List[str] = source.splitlines()
        self._aliases = self._collect_aliases(tree)
        self.type_checking_linenos: Set[int] = self._collect_type_checking(tree)

    # ------------------------------------------------------------------
    @staticmethod
    def _collect_aliases(tree: ast.Module) -> Dict[str, str]:
        aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for name in node.names:
                    local = name.asname or name.name.split(".")[0]
                    canonical = name.name if name.asname else name.name.split(".")[0]
                    aliases[local] = canonical
            elif isinstance(node, ast.ImportFrom):
                if node.module is None or node.level:
                    continue
                for name in node.names:
                    if name.name == "*":
                        continue
                    local = name.asname or name.name
                    aliases[local] = f"{node.module}.{name.name}"
        return aliases

    @staticmethod
    def _collect_type_checking(tree: ast.Module) -> Set[int]:
        linenos: Set[int] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.If) and _is_type_checking_test(node.test):
                for child in node.body:
                    for sub in ast.walk(child):
                        if hasattr(sub, "lineno"):
                            linenos.add(sub.lineno)
        return linenos

    # ------------------------------------------------------------------
    def resolve(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted name of a ``Name``/``Attribute`` chain.

        Returns ``None`` when the chain does not bottom out in an imported
        (or builtin) name — e.g. ``self.x.y`` resolves to ``None``.
        """
        parts: List[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        base = self._aliases.get(current.id, current.id)
        parts.append(base)
        return ".".join(reversed(parts))

    def in_package(self, *prefixes: str) -> bool:
        """Whether this module sits under any of the dotted ``prefixes``."""
        if self.module is None:
            return False
        return any(
            self.module == prefix or self.module.startswith(prefix + ".")
            for prefix in prefixes
        )


class Rule(ABC):
    """One statically checkable determinism/simulation-safety contract."""

    # AGR000 is reserved for the engine's unused-suppression finding, so
    # the placeholder must not collide with it; a registered rule that
    # forgets to set its id fails registry validation loudly instead.
    rule_id: str = ""
    title: str = ""
    rationale: str = ""

    @abstractmethod
    def check(self, ctx: RuleContext) -> Iterable[Violation]:
        """Yield every violation of this rule in ``ctx``'s module."""

    def violation(self, ctx: RuleContext, node: ast.AST, message: str) -> Violation:
        """Build a :class:`Violation` anchored at ``node``."""
        return Violation(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule_id=self.rule_id,
            message=message,
        )
