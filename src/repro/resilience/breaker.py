"""Per-source circuit breakers.

A breaker protects consumers from repeatedly paying the round-trip cost of
a source that keeps declining or breaching: after ``failure_threshold``
consecutive failures the breaker *opens* and the source is skipped
outright; after ``recovery_time`` of virtual time it *half-opens* and
admits a limited number of probe requests; probes decide whether it closes
again or re-opens.

Breakers are fed from two directions: execution-time declines (via
:meth:`BreakerBoard.record_failure`) and settlement-time compliance events
from the :class:`repro.qos.monitor.ContractMonitor` (via
:meth:`BreakerBoard.observe_compliance`).
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, List, Optional, Tuple

from repro.resilience.policy import BreakerPolicy
from repro.sim.trace import TraceRecorder

NowFn = Callable[[], float]
TransitionListener = Callable[[str, "BreakerState", "BreakerState"], None]


class BreakerState(enum.Enum):
    """The classic three breaker states."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class CircuitBreaker:
    """State machine guarding one source.

    Transitions:

    - CLOSED → OPEN after ``failure_threshold`` consecutive failures;
    - OPEN → HALF_OPEN once ``recovery_time`` has elapsed (evaluated
      lazily inside :meth:`allow`);
    - HALF_OPEN → CLOSED after ``half_open_trials`` consecutive probe
      successes, → OPEN again on any probe failure.
    """

    def __init__(self, policy: BreakerPolicy, now_fn: NowFn):
        self.policy = policy
        self._now = now_fn
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._probe_successes = 0
        self._opened_at = 0.0
        self._transitions: List[Tuple[float, BreakerState]] = []

    # ------------------------------------------------------------------
    @property
    def state(self) -> BreakerState:
        """Current state (after lazy OPEN → HALF_OPEN promotion)."""
        self._maybe_half_open()
        return self._state

    @property
    def transitions(self) -> List[Tuple[float, BreakerState]]:
        """Timestamped state changes so far (for tests and traces)."""
        return list(self._transitions)

    def allow(self) -> bool:
        """Whether a request may be sent to the guarded source now."""
        return self.state is not BreakerState.OPEN

    def record_success(self) -> None:
        """Note a successful (non-declined, compliant) interaction."""
        self._maybe_half_open()
        self._consecutive_failures = 0
        if self._state is BreakerState.HALF_OPEN:
            self._probe_successes += 1
            if self._probe_successes >= self.policy.half_open_trials:
                self._transition(BreakerState.CLOSED)

    def record_failure(self) -> None:
        """Note a decline, breach, or other failed interaction."""
        self._maybe_half_open()
        if self._state is BreakerState.HALF_OPEN:
            self._transition(BreakerState.OPEN)
            return
        if self._state is BreakerState.CLOSED:
            self._consecutive_failures += 1
            if self._consecutive_failures >= self.policy.failure_threshold:
                self._transition(BreakerState.OPEN)

    # ------------------------------------------------------------------
    def _maybe_half_open(self) -> None:
        if (
            self._state is BreakerState.OPEN
            and self._now() - self._opened_at >= self.policy.recovery_time
        ):
            self._transition(BreakerState.HALF_OPEN)

    def _transition(self, new_state: BreakerState) -> None:
        if new_state is self._state:
            return
        self._state = new_state
        self._transitions.append((self._now(), new_state))
        if new_state is BreakerState.OPEN:
            self._opened_at = self._now()
            self._consecutive_failures = 0
            self._probe_successes = 0
        elif new_state is BreakerState.HALF_OPEN:
            self._probe_successes = 0
        else:  # CLOSED
            self._consecutive_failures = 0

    def __repr__(self) -> str:
        return f"CircuitBreaker(state={self._state.value!r})"


class BreakerBoard:
    """One breaker per source, shared across an agora's consumers.

    Register :meth:`observe_compliance` on the contract monitor so SLA
    breaches trip breakers the same way execution-time declines do.
    """

    def __init__(
        self,
        policy: Optional[BreakerPolicy] = None,
        now_fn: NowFn = lambda: 0.0,
        trace: Optional[TraceRecorder] = None,
    ):
        self.policy = policy if policy is not None else BreakerPolicy()
        self._now = now_fn
        self._trace = trace
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._listeners: List[TransitionListener] = []

    # ------------------------------------------------------------------
    def breaker(self, source_id: str) -> CircuitBreaker:
        """The breaker guarding ``source_id`` (created closed on demand)."""
        if source_id not in self._breakers:
            self._breakers[source_id] = CircuitBreaker(self.policy, self._now)
        return self._breakers[source_id]

    def allow(self, source_id: str) -> bool:
        """Whether requests to ``source_id`` are currently admitted."""
        return self.breaker(source_id).allow()

    def state(self, source_id: str) -> BreakerState:
        """Current state of ``source_id``'s breaker."""
        return self.breaker(source_id).state

    def on_transition(self, listener: TransitionListener) -> None:
        """Register ``listener(source_id, old_state, new_state)``."""
        self._listeners.append(listener)

    # ------------------------------------------------------------------
    def record_success(self, source_id: str) -> None:
        """Fold an execution-time success into the breaker."""
        self._observe(source_id, ok=True)

    def record_failure(self, source_id: str) -> None:
        """Fold an execution-time decline into the breaker."""
        self._observe(source_id, ok=False)

    def observe_compliance(self, source_id: str, compliance: float) -> None:
        """Contract-monitor listener: low compliance counts as a failure."""
        self._observe(source_id, ok=compliance >= self.policy.compliance_floor)

    def _observe(self, source_id: str, ok: bool) -> None:
        breaker = self.breaker(source_id)
        before = breaker.state
        if ok:
            breaker.record_success()
        else:
            breaker.record_failure()
        after = breaker.state
        if before is not after:
            for listener in self._listeners:
                listener(source_id, before, after)
            if self._trace is not None:
                self._trace.count(f"resilience.breaker_{after.value}")
                self._trace.record(
                    self._now(), "resilience", "breaker_transition",
                    payload={"source": source_id, "from": before.value,
                             "to": after.value},
                )

    # ------------------------------------------------------------------
    def open_sources(self) -> List[str]:
        """Sorted ids of sources whose breaker is currently open."""
        return sorted(
            source_id
            for source_id, breaker in self._breakers.items()
            if breaker.state is BreakerState.OPEN
        )

    def __len__(self) -> int:
        return len(self._breakers)
