"""Push gossip for disseminating registry state.

Sources advertise themselves by gossiping small catalog digests to random
neighbours; after O(log n) rounds most of the overlay knows them.  The
registry uses this to stay *eventually* consistent — the paper's agora has
no central catalog authority.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Set

from repro.net.messages import Message
from repro.net.router import Network
from repro.sim.rng import ScopedStreams

GossipHandler = Callable[[str, Any], None]


class GossipProtocol:
    """Epidemic (push) dissemination over the overlay.

    Each node that knows a rumour forwards it to ``fanout`` random
    neighbours every ``round_interval`` time units, for at most
    ``max_rounds`` rounds.  Duplicate suppression is per (node, rumour id).
    """

    def __init__(
        self,
        network: Network,
        streams: ScopedStreams,
        fanout: int = 2,
        round_interval: float = 1.0,
        max_rounds: int = 10,
    ):
        if fanout < 1:
            raise ValueError("fanout must be >= 1")
        if max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")
        self.network = network
        self._rng = streams.stream("gossip")
        self.fanout = fanout
        self.round_interval = round_interval
        self.max_rounds = max_rounds
        self._seen: Dict[str, Set[str]] = {}
        self._subscribers: Dict[str, GossipHandler] = {}

    # ------------------------------------------------------------------
    def subscribe(self, node: str, handler: GossipHandler) -> None:
        """Register ``node`` to receive rumours as ``handler(rumour_id, data)``."""
        self._subscribers[node] = handler
        self._seen.setdefault(node, set())

    def knows(self, node: str, rumour_id: str) -> bool:
        """Whether ``node`` has seen ``rumour_id``."""
        return rumour_id in self._seen.get(node, set())

    def coverage(self, rumour_id: str) -> float:
        """Fraction of subscribed nodes that have seen ``rumour_id``."""
        if not self._subscribers:
            return 0.0
        knowing = sum(
            1 for node in self._subscribers if rumour_id in self._seen.get(node, set())
        )
        return knowing / len(self._subscribers)

    # ------------------------------------------------------------------
    def start(self, origin: str, rumour_id: str, data: Any) -> None:
        """Inject a rumour at ``origin`` and begin gossiping."""
        self._learn(origin, rumour_id, data)
        self._schedule_round(origin, rumour_id, data, round_number=0)

    def _learn(self, node: str, rumour_id: str, data: Any) -> None:
        seen = self._seen.setdefault(node, set())
        if rumour_id in seen:
            return
        seen.add(rumour_id)
        handler = self._subscribers.get(node)
        if handler is not None:
            handler(rumour_id, data)

    def _schedule_round(self, node: str, rumour_id: str, data: Any, round_number: int) -> None:
        if round_number >= self.max_rounds:
            return

        def push() -> None:
            neighbors = self.network.topology.neighbors(node)
            if neighbors:
                k = min(self.fanout, len(neighbors))
                chosen = self._rng.choice(len(neighbors), size=k, replace=False)
                for index in chosen:
                    target = neighbors[int(index)]
                    self.network.send(
                        Message(node, target, "gossip", payload=(rumour_id, data), size=0.1)
                    )
            self._schedule_round(node, rumour_id, data, round_number + 1)

        self.network.sim.schedule(self.round_interval, push, tag=f"gossip:{rumour_id}")

    def make_handler(self, node: str) -> Callable[[Message], None]:
        """Build the network-level message handler for ``node``.

        Applications that also receive other message kinds should dispatch
        ``kind == "gossip"`` messages here themselves.
        """

        def handle(message: Message) -> None:
            if message.kind != "gossip":
                return
            rumour_id, data = message.payload
            if not self.knows(node, rumour_id):
                self._learn(node, rumour_id, data)
                self._schedule_round(node, rumour_id, data, round_number=0)

        return handle
