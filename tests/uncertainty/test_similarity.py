"""Tests for similarity primitives."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.uncertainty import (
    EnsembleSimilarity,
    bag_cosine,
    cosine_similarity,
    jaccard_similarity,
    nonnegative_cosine,
    sublinear_tf,
    weighted_jaccard,
)

vectors = st.lists(
    st.floats(min_value=-5, max_value=5, allow_nan=False), min_size=3, max_size=3
).map(np.array)


class TestCosine:
    def test_identical_vectors(self):
        v = np.array([1.0, 2.0, 3.0])
        assert cosine_similarity(v, v) == pytest.approx(1.0)

    def test_opposite_vectors(self):
        v = np.array([1.0, 0.0])
        assert cosine_similarity(v, -v) == pytest.approx(0.0)

    def test_orthogonal_is_half(self):
        assert cosine_similarity(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == 0.5

    def test_zero_vector(self):
        assert cosine_similarity(np.zeros(2), np.array([1.0, 0.0])) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            cosine_similarity(np.zeros(2), np.zeros(3))

    @given(vectors, vectors)
    def test_bounded(self, a, b):
        assert 0.0 <= cosine_similarity(a, b) <= 1.0

    def test_nonnegative_cosine_bounds(self):
        a = np.array([1.0, 0.0])
        b = np.array([0.5, 0.5])
        assert 0.0 <= nonnegative_cosine(a, b) <= 1.0


class TestJaccard:
    def test_identical_sets(self):
        assert jaccard_similarity({"a", "b"}, {"a", "b"}) == 1.0

    def test_disjoint_sets(self):
        assert jaccard_similarity({"a"}, {"b"}) == 0.0

    def test_both_empty(self):
        assert jaccard_similarity(set(), set()) == 1.0

    def test_partial_overlap(self):
        assert jaccard_similarity({"a", "b"}, {"b", "c"}) == pytest.approx(1 / 3)

    def test_weighted_identical(self):
        bag = {"a": 2.0, "b": 1.0}
        assert weighted_jaccard(bag, bag) == 1.0

    def test_weighted_disjoint(self):
        assert weighted_jaccard({"a": 1.0}, {"b": 1.0}) == 0.0

    def test_weighted_empty(self):
        assert weighted_jaccard({}, {}) == 1.0


class TestBagCosine:
    def test_identical(self):
        bag = {"a": 1.0, "b": 2.0}
        assert bag_cosine(bag, bag) == pytest.approx(1.0)

    def test_disjoint(self):
        assert bag_cosine({"a": 1.0}, {"b": 1.0}) == 0.0

    def test_empty(self):
        assert bag_cosine({}, {"a": 1.0}) == 0.0

    def test_sublinear_tf(self):
        weights = sublinear_tf({"a": 1, "b": 10, "zero": 0})
        assert weights["a"] == pytest.approx(1.0)
        assert weights["b"] == pytest.approx(1.0 + np.log(10))
        assert "zero" not in weights


class TestEnsemble:
    def test_weighted_average(self):
        def always_one(q, c):
            return 1.0

        def always_zero(q, c):
            return 0.0

        ensemble = EnsembleSimilarity([always_one, always_zero], weights=[3.0, 1.0])
        assert ensemble(None, None) == pytest.approx(0.75)

    def test_default_uniform_weights(self):
        ensemble = EnsembleSimilarity([lambda q, c: 0.2, lambda q, c: 0.8])
        assert ensemble(None, None) == pytest.approx(0.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            EnsembleSimilarity([])

    def test_weight_mismatch(self):
        with pytest.raises(ValueError):
            EnsembleSimilarity([lambda q, c: 1.0], weights=[1.0, 2.0])

    def test_negative_weight(self):
        with pytest.raises(ValueError):
            EnsembleSimilarity([lambda q, c: 1.0], weights=[-1.0])
