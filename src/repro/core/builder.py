"""Convenience constructors."""

from __future__ import annotations

from typing import Optional

from repro.core.agora import Agora
from repro.core.config import AgoraConfig


def build_agora(config: Optional[AgoraConfig] = None, **overrides) -> Agora:
    """Build an agora from a config (or keyword overrides of the default).

    Example
    -------
    >>> agora = build_agora(seed=1, n_sources=5, items_per_source=20)
    >>> len(agora.sources)
    5
    """
    if config is None:
        config = AgoraConfig(**overrides)
    elif overrides:
        raise ValueError("pass either a config object or keyword overrides, not both")
    return Agora(config)
