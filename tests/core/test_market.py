"""Tests for the asynchronous (message-driven) marketplace."""

import pytest

from repro import Consumer, QoSRequirement, QoSWeights, UserProfile, build_agora
from repro.core import AsyncMarketplace
from repro.query import ExecutionContext, QueryExecutor
from repro.workloads import QueryWorkloadGenerator


@pytest.fixture
def market_setup():
    agora = build_agora(seed=33, n_sources=6, items_per_source=25,
                        calibration_pairs=200)
    workload = QueryWorkloadGenerator(
        agora.topic_space, agora.vocabulary, agora.sim.rng.spawn("am"),
    )
    marketplace = AsyncMarketplace(agora)
    return agora, workload, marketplace


def _query(workload, **kwargs):
    defaults = dict(k=6, issuer_id="iris",
                    requirement=QoSRequirement(min_completeness=0.1))
    defaults.update(kwargs)
    return workload.topic_query("folk-jewelry", **defaults)


class TestAsyncNegotiation:
    def test_callback_fires_with_full_plan(self, market_setup):
        agora, workload, marketplace = market_setup
        outcomes = []
        marketplace.negotiate(_query(workload), QoSWeights(), outcomes.append)
        assert outcomes == []  # nothing before virtual time advances
        agora.run(until=agora.now + 10.0)
        assert len(outcomes) == 1
        outcome = outcomes[0]
        assert outcome.fully_served
        assert len(outcome.contracts) == 5  # one per domain
        assert marketplace.bids_received >= 5

    def test_bids_travel_over_the_network(self, market_setup):
        agora, workload, marketplace = market_setup
        before = agora.sim.trace.counter("net.messages_sent")
        marketplace.negotiate(_query(workload), QoSWeights(), lambda o: None)
        agora.run(until=agora.now + 10.0)
        sent = agora.sim.trace.counter("net.messages_sent") - before
        # CFPs out + proposals back + awards: strictly more than job count.
        assert sent > 10

    def test_negotiated_plan_executes(self, market_setup):
        agora, workload, marketplace = market_setup
        outcomes = []
        query = _query(workload)
        marketplace.negotiate(query, QoSWeights(), outcomes.append)
        agora.run(until=agora.now + 10.0)
        context = ExecutionContext(
            registry=agora.registry, oracle=agora.oracle,
            now=agora.now, consumer_id="iris",
        )
        result = QueryExecutor(context).execute(outcomes[0].plan, query)
        assert len(result.results) > 0

    def test_tight_deadline_misses_bids(self, market_setup):
        agora, workload, marketplace = market_setup
        outcomes = []
        # Deadline shorter than network latency + thinking time: most bids
        # arrive late and the jobs go unserved.
        marketplace.negotiate(
            _query(workload), QoSWeights(), outcomes.append,
            bid_deadline=0.001,
        )
        agora.run(until=agora.now + 10.0)
        assert len(outcomes) == 1
        assert outcomes[0].unserved_jobs
        assert marketplace.bids_late > 0

    def test_down_sources_never_bid(self, market_setup):
        agora, workload, marketplace = market_setup
        for source in agora.sources.values():
            agora.health.set_state(source.node_id, False)
        outcomes = []
        marketplace.negotiate(_query(workload), QoSWeights(), outcomes.append)
        agora.run(until=agora.now + 10.0)
        assert len(outcomes) == 1
        assert not outcomes[0].fully_served
        assert len(outcomes[0].unserved_jobs) == 5

    def test_invalid_deadline(self, market_setup):
        agora, workload, marketplace = market_setup
        with pytest.raises(ValueError):
            marketplace.negotiate(
                _query(workload), QoSWeights(), lambda o: None, bid_deadline=0.0,
            )

    def test_invalid_thinking_time(self, market_setup):
        agora, __, __m = market_setup
        with pytest.raises(ValueError):
            AsyncMarketplace(agora, thinking_time=-1.0)

    def test_async_matches_sync_award_quality(self, market_setup):
        """The async market should award the same providers as the
        synchronous optimizer when every bid makes the deadline."""
        agora, workload, marketplace = market_setup
        profile = UserProfile(
            user_id="iris",
            interests=agora.topic_space.basis("folk-jewelry", 0.9),
            qos_weights=QoSWeights(),
        )
        query = _query(workload)
        sync_consumer = Consumer(agora, profile, planner="trading")
        sync_plan, sync_contracts, __ = sync_consumer.plan_query(query)
        outcomes = []
        marketplace.negotiate(query, QoSWeights(), outcomes.append,
                              bid_deadline=5.0)
        agora.run(until=agora.now + 20.0)
        async_providers = sorted(c.provider_id for c in outcomes[0].contracts)
        sync_providers = sorted(c.provider_id for c in sync_contracts)
        assert async_providers == sync_providers
