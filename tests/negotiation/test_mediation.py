"""Tests for post-settlement mediation."""

import pytest

from repro.negotiation import (
    AlternatingOffersProtocol,
    Mediator,
    NegotiationPreferences,
    Negotiator,
    buyer_utility,
    linear,
    seller_utility,
    standard_qos_issue_space,
)
from repro.sim import RngStreams

SPACE = standard_qos_issue_space(max_price=10.0, max_response_time=10.0)


def _mediator(seed=3, proposals=300):
    return Mediator(SPACE, RngStreams(seed).spawn("med"), proposals=proposals)


def _opposed_weights():
    """Buyer cares about quality issues; seller about price — integrative."""
    buyer_w = {"price": 0.5, "response_time": 0.5, "completeness": 3.0,
               "freshness": 3.0, "correctness": 3.0}
    seller_w = {"price": 4.0, "response_time": 1.0, "completeness": 0.3,
                "freshness": 0.3, "correctness": 0.3}
    return buyer_utility(SPACE, buyer_w), seller_utility(SPACE, seller_w)


class TestMediator:
    def test_never_hurts_either_party(self):
        buyer, seller = _opposed_weights()
        deal = {name: (SPACE.issue(name).low + SPACE.issue(name).high) / 2
                for name in SPACE.names}
        outcome = _mediator().improve(deal, buyer, seller)
        assert outcome.buyer_gain >= -1e-9
        assert outcome.seller_gain >= -1e-9

    def test_finds_integrative_value_on_diagonal_deal(self):
        """A negotiated midpoint deal leaves surplus a mediator recovers."""
        buyer, seller = _opposed_weights()
        protocol = AlternatingOffersProtocol(max_rounds=40)
        negotiated = protocol.run(
            Negotiator("b", NegotiationPreferences(buyer, 0.25), linear()),
            Negotiator("s", NegotiationPreferences(seller, 0.25), linear()),
        )
        assert negotiated.agreed
        outcome = _mediator().improve(negotiated.deal, buyer, seller)
        assert outcome.improved_anything
        assert outcome.joint_gain > 0.05

    def test_pareto_optimal_corner_cannot_improve_much(self):
        buyer, seller = _opposed_weights()
        # Give every issue to whoever weights it more: near Pareto-optimal.
        corner = {}
        for issue in SPACE.issues:
            if buyer.weights[issue.name] >= seller.weights[issue.name]:
                corner[issue.name] = buyer.ideal()[issue.name]
            else:
                corner[issue.name] = seller.ideal()[issue.name]
        outcome = _mediator().improve(corner, buyer, seller)
        assert outcome.joint_gain < 0.05

    def test_improved_offer_is_valid(self):
        buyer, seller = _opposed_weights()
        deal = buyer.iso_utility_offer(0.5)
        outcome = _mediator().improve(deal, buyer, seller)
        SPACE.validate(outcome.improved)

    def test_deterministic_given_seed(self):
        buyer, seller = _opposed_weights()
        deal = buyer.iso_utility_offer(0.5)
        a = _mediator(seed=9).improve(deal, buyer, seller)
        b = _mediator(seed=9).improve(deal, buyer, seller)
        assert a.improved == b.improved

    def test_invalid_params(self):
        streams = RngStreams(1).spawn("m")
        with pytest.raises(ValueError):
            Mediator(SPACE, streams, proposals=0)
        with pytest.raises(ValueError):
            Mediator(SPACE, streams, step_scale=0.0)
