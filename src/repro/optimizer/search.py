"""Plan search: exhaustive, greedy, and local-search planners.

"Finding the appropriate source in the Open Agora from which to obtain
each piece of the relevant information corresponds to a query optimization
problem that is beyond current technology" (§4).  The search space is the
product of per-job candidate sets (optionally with replication).  Small
spaces are enumerated exhaustively; larger ones are handled by greedy
construction plus hill-climbing swaps.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.optimizer.candidates import CandidateAssignment
from repro.optimizer.pareto import pareto_front
from repro.optimizer.plans import CandidatePlan, PlanEvaluation, evaluate_plan
from repro.qos.vector import QoSWeights
from repro.sim.rng import ScopedStreams
from repro.uncertainty.risk import RiskProfile

CandidateTable = Dict[str, List[CandidateAssignment]]
Evaluator = Callable[[CandidatePlan], PlanEvaluation]


def make_evaluator(
    weights: QoSWeights,
    price_sensitivity: float = 0.02,
    risk_profile: Optional[RiskProfile] = None,
) -> Evaluator:
    """Bind user preferences into a plan evaluator."""

    def evaluate(plan: CandidatePlan) -> PlanEvaluation:
        return evaluate_plan(
            plan, weights,
            price_sensitivity=price_sensitivity,
            risk_profile=risk_profile,
        )

    return evaluate


@dataclass
class SearchResult:
    """Output of one planner run."""

    best: PlanEvaluation
    front: List[PlanEvaluation] = field(default_factory=list)
    explored: int = 0

    @property
    def best_plan(self) -> CandidatePlan:
        """The winning plan of the search."""
        return self.best.plan


class ExhaustiveSearch:
    """Enumerates every single-source-per-job plan (plus replications).

    Parameters
    ----------
    max_plans:
        Refuse to enumerate spaces bigger than this (combinatorial guard).
    max_replication:
        Also consider assigning each job its best-r candidates together,
        for r up to this value.
    """

    def __init__(self, max_plans: int = 20000, max_replication: int = 1):
        if max_plans < 1:
            raise ValueError("max_plans must be >= 1")
        if max_replication < 1:
            raise ValueError("max_replication must be >= 1")
        self.max_plans = max_plans
        self.max_replication = max_replication

    def search(self, table: CandidateTable, evaluator: Evaluator) -> SearchResult:
        """Search the candidate table; returns the best plan and front."""
        if not table:
            raise ValueError("candidate table is empty")
        job_ids = sorted(table)
        space = 1
        for job_id in job_ids:
            space *= len(table[job_id])
        if space > self.max_plans:
            raise ValueError(
                f"plan space {space} exceeds max_plans={self.max_plans}; "
                "use GreedySearch or LocalSearch"
            )
        evaluations: List[PlanEvaluation] = []
        for combination in itertools.product(*(table[j] for j in job_ids)):
            plan = CandidatePlan(
                {job_id: [choice] for job_id, choice in zip(job_ids, combination)}
            )
            evaluations.append(evaluator(plan))
        if self.max_replication > 1:
            evaluations.extend(
                self._replicated_plans(table, evaluator)
            )
        best = max(
            evaluations,
            key=lambda e: (e.risk_adjusted_utility, -e.price),
        )
        return SearchResult(
            best=best, front=pareto_front(evaluations), explored=len(evaluations)
        )

    def _replicated_plans(
        self, table: CandidateTable, evaluator: Evaluator
    ) -> List[PlanEvaluation]:
        """Plans that replicate every job across its top-r candidates."""
        evaluations = []
        for r in range(2, self.max_replication + 1):
            assignments = {}
            feasible = True
            for job_id, candidates in table.items():
                ranked = sorted(
                    candidates,
                    key=lambda c: (-c.expected.completeness, c.cost.mean, c.source_id),
                )
                if len(ranked) < r:
                    feasible = False
                    break
                assignments[job_id] = ranked[:r]
            if feasible:
                evaluations.append(evaluator(CandidatePlan(assignments)))
        return evaluations


class GreedySearch:
    """Chooses each job's source independently by local evaluation."""

    def search(self, table: CandidateTable, evaluator: Evaluator) -> SearchResult:
        """Search the candidate table; returns the best plan and front."""
        if not table:
            raise ValueError("candidate table is empty")
        assignments: Dict[str, List[CandidateAssignment]] = {}
        explored = 0
        for job_id, candidates in sorted(table.items()):
            best_candidate = None
            best_value = float("-inf")
            for candidate in candidates:
                trial = CandidatePlan({job_id: [candidate]})
                value = evaluator(trial).risk_adjusted_utility
                explored += 1
                if value > best_value:
                    best_value = value
                    best_candidate = candidate
            assert best_candidate is not None
            assignments[job_id] = [best_candidate]
        plan = CandidatePlan(assignments)
        evaluation = evaluator(plan)
        return SearchResult(best=evaluation, front=[evaluation], explored=explored)


class EvolutionarySearch:
    """A (μ+λ) evolutionary search over source assignments.

    For plan spaces too large to enumerate: individuals are per-job source
    choices; mutation re-assigns a random job; uniform crossover mixes two
    parents' assignments.  Selection is by risk-adjusted utility; the
    non-dominated individuals encountered anywhere along the run form the
    returned Pareto front.
    """

    def __init__(
        self,
        streams: "ScopedStreams",
        population_size: int = 16,
        generations: int = 20,
        mutation_rate: float = 0.3,
    ):
        if population_size < 2:
            raise ValueError("population_size must be >= 2")
        if generations < 1:
            raise ValueError("generations must be >= 1")
        if not 0.0 <= mutation_rate <= 1.0:
            raise ValueError("mutation_rate must be in [0, 1]")
        self._rng = streams.stream("evolutionary-search")
        self.population_size = population_size
        self.generations = generations
        self.mutation_rate = mutation_rate

    def _random_individual(self, table: CandidateTable) -> Dict[str, CandidateAssignment]:
        return {
            job_id: candidates[int(self._rng.integers(len(candidates)))]
            for job_id, candidates in sorted(table.items())
        }

    def _mutate(self, individual, table):
        child = dict(individual)
        job_ids = sorted(table)
        job_id = job_ids[int(self._rng.integers(len(job_ids)))]
        candidates = table[job_id]
        child[job_id] = candidates[int(self._rng.integers(len(candidates)))]
        return child

    def _crossover(self, a, b, table):
        child = {}
        for job_id in sorted(table):
            child[job_id] = a[job_id] if self._rng.random() < 0.5 else b[job_id]
        return child

    def search(self, table: CandidateTable, evaluator: Evaluator) -> SearchResult:
        """Search the candidate table; returns the best plan and front."""
        if not table:
            raise ValueError("candidate table is empty")
        explored = 0
        archive: Dict[tuple, PlanEvaluation] = {}

        def evaluate(individual) -> PlanEvaluation:
            nonlocal explored
            plan = CandidatePlan({j: [c] for j, c in individual.items()})
            evaluation = evaluator(plan)
            explored += 1
            archive[plan.signature()] = evaluation
            return evaluation

        population = [
            self._random_individual(table) for __ in range(self.population_size)
        ]
        scored = [(evaluate(ind), ind) for ind in population]
        for __ in range(self.generations):
            offspring = []
            for __child in range(self.population_size):
                i = int(self._rng.integers(len(scored)))
                j = int(self._rng.integers(len(scored)))
                parent_a, parent_b = scored[i][1], scored[j][1]
                child = self._crossover(parent_a, parent_b, table)
                if self._rng.random() < self.mutation_rate:
                    child = self._mutate(child, table)
                offspring.append((evaluate(child), child))
            scored = sorted(
                scored + offspring,
                key=lambda pair: -pair[0].risk_adjusted_utility,
            )[: self.population_size]
        best = scored[0][0]
        return SearchResult(
            best=best,
            front=pareto_front(list(archive.values())),
            explored=explored,
        )


class LocalSearch:
    """Greedy construction followed by best-improvement swaps.

    Each step tries replacing one job's source by an alternative; stops at
    a local optimum or after ``max_iterations`` sweeps.
    """

    def __init__(self, max_iterations: int = 50):
        if max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        self.max_iterations = max_iterations

    def search(self, table: CandidateTable, evaluator: Evaluator) -> SearchResult:
        """Search the candidate table; returns the best plan and front."""
        seed = GreedySearch().search(table, evaluator)
        current = seed.best
        explored = seed.explored
        for __ in range(self.max_iterations):
            improved = False
            for job_id in sorted(table):
                for candidate in table[job_id]:
                    if candidate.source_id == current.plan.assignments[job_id][0].source_id:
                        continue
                    assignments = {
                        j: list(replicas)
                        for j, replicas in current.plan.assignments.items()
                    }
                    assignments[job_id] = [candidate]
                    trial = evaluator(CandidatePlan(assignments))
                    explored += 1
                    if trial.risk_adjusted_utility > current.risk_adjusted_utility + 1e-12:
                        current = trial
                        improved = True
            if not improved:
                break
        return SearchResult(best=current, front=[current], explored=explored)
