"""Violation and suppression records produced by the analysis engine.

A :class:`Violation` pinpoints one broken determinism/simulation-safety
rule at a (path, line, col).  A :class:`Suppression` is one inline
``# agora: ignore[AGR00x] reason`` comment; the engine matches the two up
and reports both what fired and what was silenced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Tuple


@dataclass(frozen=True, order=True)
class Violation:
    """One rule violation at a concrete source location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict form for the JSON reporter."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
        }

    def render(self) -> str:
        """The canonical one-line text form."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"


@dataclass(frozen=True)
class Suppression:
    """One inline ``# agora: ignore[...]`` comment.

    Attributes
    ----------
    path / line:
        Where the comment sits; it silences violations on that line.
    rule_ids:
        The rule ids listed inside the brackets.
    reason:
        Free text after the bracket — the justification.  The engine
        accepts an empty reason but reporters surface it so review can
        push back.
    """

    path: str
    line: int
    rule_ids: Tuple[str, ...]
    reason: str = ""
    used: bool = field(default=False, compare=False)

    def covers(self, violation: Violation) -> bool:
        """Whether this comment silences ``violation``."""
        return (
            violation.path == self.path
            and violation.line == self.line
            and violation.rule_id in self.rule_ids
        )

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict form for the JSON reporter."""
        return {
            "path": self.path,
            "line": self.line,
            "rules": list(self.rule_ids),
            "reason": self.reason,
        }
