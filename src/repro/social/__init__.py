"""Socialization: graphs, privacy, affinity, fusion (paper §6).

Public API:

- :class:`SocialGraph` — weighted friendship graph.
- :class:`PrivacyPolicy`, :class:`PrivacyRegistry`, :class:`Visibility`,
  :data:`PROFILE_PARTS` — access control on profile parts.
- :func:`affinity`, :class:`AffinityIndex`, :class:`AffineNeighbour`.
- :class:`SocialRanker`, :func:`learn_from_peer_queries`.
"""

from repro.social.affinity import AffineNeighbour, AffinityIndex, affinity
from repro.social.fusion import SocialRanker, learn_from_peer_queries
from repro.social.graph import SocialGraph
from repro.social.privacy import (
    PROFILE_PARTS,
    PrivacyPolicy,
    PrivacyRegistry,
    Visibility,
)
from repro.social.trust import SocialTrustView, TrustOpinion

__all__ = [
    "AffineNeighbour",
    "AffinityIndex",
    "PROFILE_PARTS",
    "PrivacyPolicy",
    "PrivacyRegistry",
    "SocialGraph",
    "SocialRanker",
    "SocialTrustView",
    "TrustOpinion",
    "Visibility",
    "affinity",
    "learn_from_peer_queries",
]
