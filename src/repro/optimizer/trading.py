"""Trading-based query optimization.

This is the paper's central §4 idea made concrete: "query optimization
should be modeled as a trading negotiation process".  For every job of a
decomposed query the consumer issues a call-for-proposals; sources (and
intermediaries) bid price + promised QoS; the consumer awards each job and
signs SLAs; the awarded assignments assemble into an executable plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.negotiation.contract_net import (
    Bidder,
    CallForProposals,
    ContractNetOutcome,
    ContractNetProtocol,
    Proposal,
    consumer_bid_score,
)
from repro.qos.breach import breach_probability
from repro.qos.pricing import PricingPolicy, RiskPricedPremium
from repro.qos.sla import SLAContract
from repro.qos.vector import QoSWeights
from repro.query.algebra import PlanNode, Retrieve, standard_plan
from repro.query.model import Query, decompose
from repro.sources.source import InformationSource


class SourceBidder:
    """Adapts an :class:`InformationSource` to the contract-net Bidder API.

    The source knows its own true quality, estimates its breach risk for
    the requested requirement honestly, declines jobs it would almost
    surely breach, and prices the rest through its pricing policy.  What
    it *promises* (the advertised vector) may still be rosier than the
    truth — that gap is what reputation eventually punishes.
    """

    def __init__(
        self,
        source: InformationSource,
        pricing: Optional[PricingPolicy] = None,
        risk_tolerance: float = 0.9,
        now: float = 0.0,
    ):
        if not 0.0 <= risk_tolerance <= 1.0:
            raise ValueError("risk_tolerance must be in [0, 1]")
        self.source = source
        self.pricing = pricing if pricing is not None else RiskPricedPremium()
        self.risk_tolerance = risk_tolerance
        self.now = now

    def __call__(self, cfp: CallForProposals) -> Optional[Proposal]:
        source = self.source
        if cfp.domain not in source.domains:
            return None
        ok, __ = source.accepts(cfp.consumer_id, self.now)
        if not ok:
            return None
        truth = source.true_quality_vector(self.now, cfp.domain)
        risk = breach_probability(truth, cfp.requirement)
        if risk > self.risk_tolerance:
            return None
        base_cost = truth.response_time
        quote = self.pricing.quote(cfp.requirement, base_cost, risk)
        return Proposal(
            provider_id=source.source_id,
            cfp=cfp,
            quote=quote,
            promised=source.advertised_quality(self.now, cfp.domain),
        )


@dataclass
class NegotiatedPlan:
    """The outcome of trading one query in the market."""

    query: Query
    plan: Optional[PlanNode]
    contracts: List[SLAContract] = field(default_factory=list)
    outcomes: List[ContractNetOutcome] = field(default_factory=list)
    unserved_jobs: List[str] = field(default_factory=list)

    @property
    def total_price(self) -> float:
        """Sum of contract totals across the plan."""
        return sum(contract.total_price for contract in self.contracts)

    @property
    def providers(self) -> List[str]:
        """Sorted distinct contracted providers."""
        return sorted({contract.provider_id for contract in self.contracts})

    @property
    def fully_served(self) -> bool:
        """Whether every decomposed job got a contract."""
        return self.plan is not None and not self.unserved_jobs


class TradingOptimizer:
    """Plans queries by running one contract-net auction per job.

    Parameters
    ----------
    bidders:
        The market's bidder pool (source adapters and intermediaries).
    weights:
        Consumer trade-off weights used to score proposals.
    price_sensitivity:
        Price term in the bid score.
    min_score:
        Consumer's outside option; lower-scoring markets go unserved.
    """

    def __init__(
        self,
        bidders: Sequence[Bidder],
        weights: QoSWeights,
        price_sensitivity: float = 0.02,
        min_score: float = 0.0,
    ):
        self.bidders = list(bidders)
        self.weights = weights
        self.price_sensitivity = price_sensitivity
        self.min_score = min_score

    def _protocol(self) -> ContractNetProtocol:
        protocol = ContractNetProtocol(
            consumer_bid_score(self.weights, self.price_sensitivity),
            min_score=self.min_score,
        )
        for bidder in self.bidders:
            hook = getattr(bidder, "on_award", None)
            if hook is not None:
                protocol.on_award(hook)
        return protocol

    def negotiate(
        self,
        query: Query,
        domains: Sequence[str],
        now: float = 0.0,
    ) -> NegotiatedPlan:
        """Trade every job of ``query`` and assemble the awarded plan."""
        result = NegotiatedPlan(query=query, plan=None)
        retrieves: List[Retrieve] = []
        for subquery in decompose(query, domains):
            cfp = CallForProposals(
                job_id=subquery.subquery_id,
                domain=subquery.domain,
                requirement=query.requirement,
                consumer_id=query.issuer_id,
                issued_at=now,
            )
            outcome = self._protocol().run(cfp, self.bidders, now=now)
            result.outcomes.append(outcome)
            if outcome.contract is None:
                result.unserved_jobs.append(subquery.subquery_id)
                continue
            result.contracts.append(outcome.contract)
            retrieves.append(Retrieve(subquery, outcome.awarded.executor_id))
        if retrieves:
            result.plan = standard_plan(retrieves, k=query.k, tau=query.threshold)
        return result
