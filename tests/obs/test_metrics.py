"""Tests for the metrics registry."""

import pytest

from repro.obs import DEFAULT_BUCKETS, Histogram, MetricsRegistry


class TestCountersAndGauges:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("events").inc()
        registry.counter("events").inc(2.5)
        assert registry.counter_value("events") == 3.5

    def test_gauge_set_and_add(self):
        registry = MetricsRegistry()
        registry.gauge("depth").set(4.0)
        registry.gauge("depth").add(-1.0)
        assert registry.gauge_value("depth") == 3.0

    def test_name_cannot_change_kind(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")
        with pytest.raises(ValueError):
            registry.histogram("x")


class TestReadSidePurity:
    def test_reading_unknown_metrics_creates_nothing(self):
        registry = MetricsRegistry()
        assert registry.counter_value("ghost") == 0.0
        assert registry.gauge_value("ghost") == 0.0
        assert registry.histogram_or_none("ghost") is None
        assert registry.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }

    def test_snapshot_is_detached(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        snapshot = registry.snapshot()
        snapshot["counters"]["x"] = 99.0
        snapshot["counters"]["phantom"] = 1.0
        assert registry.counter_value("x") == 1.0
        assert registry.counter_value("phantom") == 0.0


class TestHistogram:
    def test_counts_sum_min_max(self):
        histogram = Histogram("t", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0, 9.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.total == 14.0
        assert histogram.minimum == 0.5
        assert histogram.maximum == 9.0
        assert histogram.bucket_counts() == (1, 1, 1, 1)  # last = overflow
        assert histogram.mean == 3.5

    def test_buckets_must_ascend(self):
        with pytest.raises(ValueError):
            Histogram("bad", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("bad", buckets=())

    def test_quantiles_are_clamped_to_observed_range(self):
        histogram = Histogram("t", buckets=DEFAULT_BUCKETS)
        for value in (2.0, 2.0, 2.0):
            histogram.observe(value)
        assert histogram.quantile(0.0) <= 2.0
        assert histogram.quantile(0.5) == 2.0
        assert histogram.quantile(1.0) == 2.0

    def test_quantile_orders_sensibly(self):
        histogram = Histogram("t")
        for value in (0.01, 0.02, 0.2, 0.4, 3.0, 30.0):
            histogram.observe(value)
        p50, p90, p99 = (histogram.quantile(q) for q in (0.5, 0.9, 0.99))
        assert histogram.minimum <= p50 <= p90 <= p99 <= histogram.maximum

    def test_quantile_validates_range(self):
        with pytest.raises(ValueError):
            Histogram("t").quantile(1.5)
        with pytest.raises(ValueError):
            Histogram("t").quantile(-0.1)

    def test_empty_histogram_quantile_is_zero(self):
        histogram = Histogram("t")
        for q in (0.0, 0.5, 0.99, 1.0):
            assert histogram.quantile(q) == 0.0

    def test_single_sample_quantile_is_the_sample(self):
        histogram = Histogram("t")
        histogram.observe(3.7)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert histogram.quantile(q) == 3.7

    def test_all_samples_in_overflow_bucket_stay_in_observed_range(self):
        histogram = Histogram("t", buckets=(1.0, 2.0))
        for value in (50.0, 70.0, 90.0):
            histogram.observe(value)
        for q in (0.0, 0.5, 0.9, 0.99, 1.0):
            assert 50.0 <= histogram.quantile(q) <= 90.0
        assert histogram.quantile(0.0) == 50.0
        assert histogram.quantile(1.0) == 90.0

    def test_empty_histogram_summary(self):
        summary = Histogram("t").summary()
        assert summary["count"] == 0.0
        assert summary["p99"] == 0.0

    def test_summary_keys(self):
        histogram = Histogram("t")
        histogram.observe(1.0)
        assert set(histogram.summary()) == {
            "count", "mean", "min", "max", "p50", "p90", "p99",
        }

    def test_registry_honours_custom_buckets_once(self):
        registry = MetricsRegistry()
        first = registry.histogram("t", buckets=(1.0, 2.0))
        again = registry.histogram("t", buckets=(5.0, 6.0, 7.0))
        assert again is first
        assert again.buckets == (1.0, 2.0)


class TestDeterminism:
    def test_snapshot_sorted_and_reproducible(self):
        def build():
            registry = MetricsRegistry()
            for name in ("z", "a", "m"):
                registry.counter(name).inc()
            registry.histogram("lat").observe(0.3)
            registry.gauge("g").set(7.0)
            return registry.snapshot()

        first, second = build(), build()
        assert first == second
        assert list(first["counters"]) == ["a", "m", "z"]
