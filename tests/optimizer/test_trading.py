"""Tests for the trading-based optimizer."""

import pytest

from repro.data import DomainSpec
from repro.optimizer import SourceBidder, TradingOptimizer
from repro.qos import QoSRequirement, QoSWeights, RiskPricedPremium
from repro.query import ExecutionContext, QueryExecutor
from repro.sources import SourceQuality, SourceRegistry

from tests.conftest import make_source, make_topic_query


@pytest.fixture
def market(corpus_generator, matching_engine, streams):
    registry = SourceRegistry()
    museum = DomainSpec(name="museum", topic_prior={"folk-jewelry": 1.0})
    auction = DomainSpec(name="auction", topic_prior={"auction-market": 1.0})
    specs = {
        "m-good": (museum, SourceQuality(coverage=0.95, freshness_lag=0.0, error_rate=0.02)),
        "m-poor": (museum, SourceQuality(coverage=0.4, freshness_lag=0.0, error_rate=0.3)),
        "a-only": (auction, SourceQuality(coverage=0.9, freshness_lag=0.0, error_rate=0.05)),
    }
    sources = {}
    for source_id, (spec, quality) in specs.items():
        source = make_source(
            source_id, corpus_generator, matching_engine, streams,
            domain_spec=spec, quality=quality,
        )
        registry.register(source)
        sources[source_id] = source
    bidders = [SourceBidder(source) for source in sources.values()]
    return registry, sources, bidders


class TestSourceBidder:
    def test_bids_on_covered_domain(self, market, topic_space, vocabulary):
        registry, sources, bidders = market
        from repro.negotiation import CallForProposals
        cfp = CallForProposals(
            job_id="j", domain="museum",
            requirement=QoSRequirement(min_completeness=0.3),
            consumer_id="iris",
        )
        proposal = SourceBidder(sources["m-good"])(cfp)
        assert proposal is not None
        assert proposal.provider_id == "m-good"
        assert proposal.quote.total > 0

    def test_ignores_other_domains(self, market):
        registry, sources, bidders = market
        from repro.negotiation import CallForProposals
        cfp = CallForProposals(
            job_id="j", domain="auction",
            requirement=QoSRequirement(),
            consumer_id="iris",
        )
        assert SourceBidder(sources["m-good"])(cfp) is None

    def test_declines_hopeless_requirements(self, market):
        registry, sources, bidders = market
        from repro.negotiation import CallForProposals
        cfp = CallForProposals(
            job_id="j", domain="museum",
            requirement=QoSRequirement(min_completeness=0.99, max_response_time=0.0001),
            consumer_id="iris",
        )
        assert SourceBidder(sources["m-poor"], risk_tolerance=0.5)(cfp) is None

    def test_riskier_requirements_cost_more(self, market):
        registry, sources, bidders = market
        from repro.negotiation import CallForProposals
        easy = CallForProposals(
            job_id="j1", domain="museum",
            requirement=QoSRequirement(min_completeness=0.1),
            consumer_id="iris",
        )
        hard = CallForProposals(
            job_id="j2", domain="museum",
            requirement=QoSRequirement(min_completeness=0.9, min_correctness=0.97),
            consumer_id="iris",
        )
        bidder = SourceBidder(sources["m-good"], pricing=RiskPricedPremium(), risk_tolerance=1.0)
        easy_bid = bidder(easy)
        hard_bid = bidder(hard)
        assert hard_bid.quote.premium > easy_bid.quote.premium

    def test_invalid_risk_tolerance(self, market):
        registry, sources, __ = market
        with pytest.raises(ValueError):
            SourceBidder(sources["m-good"], risk_tolerance=1.5)


class TestTradingOptimizer:
    def test_negotiates_full_plan(self, market, topic_space, vocabulary):
        registry, sources, bidders = market
        optimizer = TradingOptimizer(bidders, QoSWeights())
        query = make_topic_query(
            topic_space, vocabulary, "folk-jewelry",
            requirement=QoSRequirement(min_completeness=0.2),
            issuer_id="iris",
        )
        outcome = optimizer.negotiate(query, registry.domains())
        assert outcome.fully_served
        assert len(outcome.contracts) == 2  # museum + auction jobs
        assert outcome.total_price > 0

    def test_prefers_better_source(self, market, topic_space, vocabulary):
        registry, sources, bidders = market
        optimizer = TradingOptimizer(bidders, QoSWeights(), price_sensitivity=0.001)
        query = make_topic_query(
            topic_space, vocabulary, "folk-jewelry",
            requirement=QoSRequirement(min_completeness=0.2),
            issuer_id="iris", target_domains=("museum",),
        )
        outcome = optimizer.negotiate(query, registry.domains())
        assert outcome.providers == ["m-good"]

    def test_unserved_jobs_reported(self, market, topic_space, vocabulary):
        registry, sources, __ = market
        cautious_bidders = [
            SourceBidder(source, risk_tolerance=0.3) for source in sources.values()
        ]
        optimizer = TradingOptimizer(cautious_bidders, QoSWeights())
        query = make_topic_query(
            topic_space, vocabulary, "folk-jewelry",
            requirement=QoSRequirement(min_completeness=0.999,
                                       max_response_time=1e-6),
            issuer_id="iris",
        )
        outcome = optimizer.negotiate(query, registry.domains())
        assert not outcome.fully_served
        assert outcome.plan is None
        assert len(outcome.unserved_jobs) == 2

    def test_negotiated_plan_executes(
        self, market, topic_space, vocabulary, oracle
    ):
        registry, sources, bidders = market
        optimizer = TradingOptimizer(bidders, QoSWeights())
        query = make_topic_query(
            topic_space, vocabulary, "folk-jewelry",
            requirement=QoSRequirement(min_completeness=0.1),
            issuer_id="iris",
        )
        outcome = optimizer.negotiate(query, registry.domains())
        context = ExecutionContext(registry=registry, oracle=oracle,
                                   consumer_id="iris")
        result = QueryExecutor(context).execute(outcome.plan, query)
        assert len(result.results) > 0
