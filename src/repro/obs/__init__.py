"""Observability substrate: causal spans, metrics, manifests, exporters.

``repro.obs`` sits at the very bottom of the layer DAG (below even the
simulation kernel) so every layer — kernel, network, QoS, resilience,
executor, experiments — can record into one shared vocabulary:

- :class:`SpanTracer` / :class:`Span` — causal span trees over the
  virtual clock, propagated through the kernel's event queue.
- :class:`MetricsRegistry` — counters, gauges and fixed-bucket
  histograms with deterministic snapshots.
- :class:`RunManifest` / :func:`diff_manifests` — canonical run
  provenance; two runs are attested identical iff their diff is clean.
- JSONL exporters, a markdown dashboard renderer, and the
  ``python -m repro.obs`` CLI (``summary`` / ``spans`` / ``diff``).
"""

from repro.obs.dashboard import append_dashboard, render_dashboard, span_cost_rows
from repro.obs.export import (
    export_run,
    load_manifest,
    load_metrics_jsonl,
    load_spans_jsonl,
    write_manifest,
    write_metrics_jsonl,
    write_spans_jsonl,
)
from repro.obs.manifest import (
    Drift,
    ManifestDiff,
    RunManifest,
    canonical_json,
    config_digest,
    diff_manifests,
    flatten_manifest,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.spans import (
    NULL_SPAN,
    NULL_TRACER,
    Span,
    SpanTracer,
    ancestors,
    child_map,
    descendants_of,
    span_index,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "NULL_SPAN",
    "NULL_TRACER",
    "Counter",
    "Drift",
    "Gauge",
    "Histogram",
    "ManifestDiff",
    "MetricsRegistry",
    "RunManifest",
    "Span",
    "SpanTracer",
    "ancestors",
    "append_dashboard",
    "canonical_json",
    "child_map",
    "config_digest",
    "descendants_of",
    "diff_manifests",
    "export_run",
    "flatten_manifest",
    "load_manifest",
    "load_metrics_jsonl",
    "load_spans_jsonl",
    "render_dashboard",
    "span_cost_rows",
    "span_index",
    "write_manifest",
    "write_metrics_jsonl",
    "write_spans_jsonl",
]
