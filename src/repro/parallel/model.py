"""Critical-path cost model for sharded candidate scanning.

Every benchmark in this repository reports *simulated* latency — the
virtual-time cost model of :class:`repro.sources.source.InformationSource`
(``STARTUP_TIME`` + ``PER_CANDIDATE_TIME`` per visible candidate), with
parallel branches costing the maximum of their legs, not the sum.  The
shard-scaling story follows the same discipline: this model prices a
sharded rank as its critical path — the slowest shard's scan plus the
per-worker dispatch and the coordinator's merge — so speedup curves are
a deterministic function of pool size and shard count, reproducible on
any machine (the CI box has no spare cores; wall-clock parallel speedup
there would measure the scheduler, not the architecture).

The defaults mirror the source cost constants so a 1-shard scan prices
the same work as the in-process scan, plus explicit sharding overheads
that keep the model honest: sharding is *not* free, and below a few
hundred candidates the model correctly reports a slowdown.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

#: mirrors InformationSource.STARTUP_TIME
DEFAULT_STARTUP_TIME = 0.05
#: mirrors InformationSource.PER_CANDIDATE_TIME
DEFAULT_PER_CANDIDATE_TIME = 0.002


@dataclass(frozen=True)
class ScanCostModel:
    """Virtual-time cost of scanning ``n`` candidates over ``s`` shards.

    Attributes
    ----------
    startup_time:
        Fixed per-rank setup cost, paid once (coordinator side).
    per_candidate_time:
        Scan cost per candidate, paid by whichever worker scans it.
    shard_overhead:
        Per-rank cost of dispatching to and collecting from the worker
        pool (request encode/decode, one round trip); paid once when any
        sharding is used, covering all workers in parallel.
    merge_per_item:
        Coordinator-side merge cost per returned partial entry.
    """

    startup_time: float = DEFAULT_STARTUP_TIME
    per_candidate_time: float = DEFAULT_PER_CANDIDATE_TIME
    shard_overhead: float = 0.004
    merge_per_item: float = 0.00002

    def __post_init__(self) -> None:
        for name in ("startup_time", "per_candidate_time",
                     "shard_overhead", "merge_per_item"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    # agora: shard-safe
    def rank_latency(self, n_candidates: int, n_shards: int = 1) -> float:
        """Critical-path latency of one rank over ``n_candidates``.

        ``n_shards == 1`` with zero-overhead semantics is the in-process
        scan: startup plus the full sequential scan.  With sharding, the
        scan runs as ``n_shards`` parallel legs (cost of the largest
        slice), plus the dispatch overhead and the merge.
        """
        if n_candidates < 0:
            raise ValueError("n_candidates must be non-negative")
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if n_shards == 1:
            return self.startup_time + self.per_candidate_time * n_candidates
        largest_slice = -(-n_candidates // n_shards)  # ceil division
        return (
            self.startup_time
            + self.shard_overhead
            + self.per_candidate_time * largest_slice
            + self.merge_per_item * n_candidates
        )

    # agora: shard-safe
    def speedup(self, n_candidates: int, n_shards: int) -> float:
        """Single-process latency over sharded latency (>1 is a win)."""
        sharded = self.rank_latency(n_candidates, n_shards)
        if sharded <= 0.0:
            return float("inf")
        return self.rank_latency(n_candidates, 1) / sharded

    # agora: shard-safe
    def speedup_curve(
        self, n_candidates: int, shard_counts: Sequence[int]
    ) -> Dict[int, float]:
        """Speedup at each shard count (the bench figure series)."""
        return {s: self.speedup(n_candidates, s) for s in shard_counts}
