"""Tests for the matching engines (text, media, compound, cross-type)."""

import numpy as np
import pytest

from repro.data import (
    DomainSpec,
    FeatureExtractor,
)
from repro.data.items import CompoundObject, TextDocument, make_item_id
from repro.uncertainty import ConceptLifter, LruCache, build_matching_engine
from repro.uncertainty.matching import MediaMatcher, TextMatcher


@pytest.fixture
def extractor(streams):
    return FeatureExtractor(true_dimensions=16, streams=streams.spawn("fx"))


def _media_domain(name="museum", topic="folk-jewelry"):
    return DomainSpec(
        name=name, topic_prior={topic: 1.0},
        type_mix={"text": 0.0, "media": 1.0, "compound": 0.0},
        concentration=0.3,
    )


def _text_domain(name="thesis", topic="academic-theses"):
    return DomainSpec(
        name=name, topic_prior={topic: 1.0},
        type_mix={"text": 1.0, "media": 0.0, "compound": 0.0},
        concentration=0.3,
    )


def _compound_domain(name="auction", topic="auction-market"):
    return DomainSpec(
        name=name, topic_prior={topic: 1.0},
        type_mix={"text": 0.0, "media": 0.0, "compound": 1.0},
        concentration=0.3,
    )


@pytest.fixture
def engine(corpus_generator, vocabulary, extractor):
    sample = corpus_generator.generate(_media_domain("sample"), 80)
    return build_matching_engine(vocabulary, extractor, lifter_sample=sample)


class TestTextMatcher:
    def test_identical_docs_score_high(self, corpus_generator):
        doc = corpus_generator.generate(_text_domain(), 1)[0]
        assert TextMatcher().score(doc, doc) == pytest.approx(1.0)

    def test_same_topic_beats_different_topic(self, corpus_generator):
        same = corpus_generator.generate(_text_domain("a", "dance-forms"), 20)
        other = corpus_generator.generate(_text_domain("b", "auction-market"), 20)
        matcher = TextMatcher()
        same_scores = [matcher.score(same[0], d) for d in same[1:]]
        cross_scores = [matcher.score(same[0], d) for d in other]
        assert np.mean(same_scores) > np.mean(cross_scores)


class TestMediaMatcher:
    def test_score_bounded(self, corpus_generator, extractor):
        items = corpus_generator.generate(_media_domain(), 10)
        matcher = MediaMatcher(extractor, "content_metadata")
        for item in items[1:]:
            assert 0.0 <= matcher.score(items[0], item) <= 1.0

    def test_high_fidelity_separates_topics_better(self, corpus_generator, extractor):
        jewelry = corpus_generator.generate(_media_domain("j", "folk-jewelry"), 15)
        tourism = corpus_generator.generate(_media_domain("t", "tourism"), 15)

        def separation(feature_set):
            matcher = MediaMatcher(extractor, feature_set)
            within = [
                matcher.score(jewelry[i], jewelry[j])
                for i in range(5) for j in range(5, 10)
            ]
            across = [
                matcher.score(jewelry[i], tourism[j])
                for i in range(5) for j in range(5)
            ]
            return np.mean(within) - np.mean(across)

        assert separation("content_metadata") > separation("color_histogram")


class TestConceptLifter:
    def test_unfitted_media_lift_raises(self, vocabulary, extractor, corpus_generator):
        lifter = ConceptLifter(vocabulary, extractor)
        item = corpus_generator.generate(_media_domain(), 1)[0]
        with pytest.raises(RuntimeError):
            lifter.lift(item)

    def test_fit_empty_sample_rejected(self, vocabulary, extractor):
        with pytest.raises(ValueError):
            ConceptLifter(vocabulary, extractor).fit([])

    def test_lift_text_normalised(self, vocabulary, extractor, corpus_generator):
        lifter = ConceptLifter(vocabulary, extractor)
        doc = corpus_generator.generate(_text_domain(), 1)[0]
        lifted = lifter.lift(doc)
        assert lifted.sum() == pytest.approx(1.0)
        assert np.all(lifted >= 0)

    def test_lift_media_recovers_topic(self, vocabulary, extractor, corpus_generator, topic_space):
        sample = corpus_generator.generate(_media_domain("train"), 100)
        lifter = ConceptLifter(vocabulary, extractor).fit(sample)
        corpus_generator.generate(_media_domain("test", "dance-forms"), 1)
        # Training was jewelry; test a differently-themed item set to check the
        # lift tracks latents rather than memorising: use items from training topic.
        probe = corpus_generator.generate(_media_domain("probe", "folk-jewelry"), 10)
        jewelry_index = topic_space.names.index("folk-jewelry")
        lifted = np.stack([lifter.lift(item) for item in probe])
        assert np.argmax(lifted.mean(axis=0)) == jewelry_index

    def test_lift_compound(self, vocabulary, extractor, corpus_generator):
        sample = corpus_generator.generate(_media_domain("train"), 60)
        lifter = ConceptLifter(vocabulary, extractor).fit(sample)
        compound = corpus_generator.generate(_compound_domain(), 1)[0]
        lifted = lifter.lift(compound)
        assert lifted.sum() == pytest.approx(1.0)

    def test_lift_compound_zero_weights_is_uniform(self, vocabulary, extractor):
        """Regression: all-zero part weights used to produce 0/0 = NaN."""
        lifter = ConceptLifter(vocabulary, extractor)
        part = TextDocument(
            item_id=make_item_id(), domain="d", latent=np.zeros(2),
            terms={"w00001": 3},
        )
        compound = CompoundObject(
            item_id=make_item_id(), domain="d", latent=np.zeros(2),
            parts=[(part, 0.0)],
        )
        lifted = lifter.lift(compound)
        assert np.all(np.isfinite(lifted))
        n = vocabulary.topic_space.n_topics
        assert np.allclose(lifted, np.full(n, 1.0 / n))

    def test_lift_compound_no_parts_is_uniform(self, vocabulary, extractor):
        lifter = ConceptLifter(vocabulary, extractor)
        compound = CompoundObject(
            item_id=make_item_id(), domain="d", latent=np.zeros(2), parts=[],
        )
        lifted = lifter.lift(compound)
        n = vocabulary.topic_space.n_topics
        assert np.allclose(lifted, np.full(n, 1.0 / n))

    def test_lift_is_memoized_and_cleared_on_fit(
        self, vocabulary, extractor, corpus_generator
    ):
        sample = corpus_generator.generate(_media_domain("train"), 60)
        lifter = ConceptLifter(vocabulary, extractor).fit(sample)
        item = corpus_generator.generate(_media_domain(), 1)[0]
        first = lifter.lift(item)
        assert lifter.lift(item) is first  # served from the cache
        lifter.fit(sample)
        assert lifter.lift(item) is not first  # cache dropped with weights


class TestLruCache:
    def test_eviction_respects_bound(self):
        cache = LruCache("probe", maxsize=2)
        for key in ("a", "b", "c"):
            cache.get_or_compute(key, lambda k=key: k.upper())
        assert len(cache) == 2
        assert cache.evictions == 1
        # "a" was evicted; recomputing it is a miss.
        assert cache.get_or_compute("a", lambda: "A2") == "A2"
        assert cache.misses == 4

    def test_recent_use_protects_entry(self):
        cache = LruCache("probe", maxsize=2)
        cache.get_or_compute("a", lambda: 1)
        cache.get_or_compute("b", lambda: 2)
        cache.get_or_compute("a", lambda: -1)  # refresh "a"
        cache.get_or_compute("c", lambda: 3)   # evicts "b", not "a"
        assert cache.get_or_compute("a", lambda: -1) == 1
        assert cache.hits == 2

    def test_rejects_nonpositive_maxsize(self):
        with pytest.raises(ValueError):
            LruCache("probe", maxsize=0)

    def test_media_matcher_cache_is_bounded(self, corpus_generator, extractor):
        items = corpus_generator.generate(_media_domain(), 12)
        matcher = MediaMatcher(extractor, "content_metadata", cache_size=4)
        for item in items[1:]:
            matcher.score(items[0], item)
        assert len(matcher._cache) <= 4


class TestScoreManyEdges:
    def test_empty_candidates(self, engine, corpus_generator):
        query = corpus_generator.generate(_text_domain(), 1)[0]
        assert engine.score_many(query, []).shape == (0,)
        assert engine.rank(query, []) == []

    def test_single_candidate_matches_score(self, engine, corpus_generator):
        query = corpus_generator.generate(_text_domain(), 1)[0]
        candidate = corpus_generator.generate(_media_domain(), 1)[0]
        batch = engine.score_many(query, [candidate])
        assert batch[0] == engine.score(query, candidate)

    def test_compound_query_batch(self, engine, corpus_generator):
        query = corpus_generator.generate(_compound_domain(), 1)[0]
        pool = corpus_generator.generate(_text_domain(), 3) + \
            corpus_generator.generate(_compound_domain("a2"), 2)
        batch = engine.score_many(query, pool)
        single = np.array([engine.score(query, c) for c in pool])
        assert np.array_equal(batch, single)


class TestMatchingEngine:
    def test_dispatch_text_text(self, engine, corpus_generator):
        docs = corpus_generator.generate(_text_domain(), 2)
        assert 0.0 <= engine.score(docs[0], docs[1]) <= 1.0

    def test_dispatch_cross_type(self, engine, corpus_generator):
        doc = corpus_generator.generate(_text_domain("a", "folk-jewelry"), 1)[0]
        media = corpus_generator.generate(_media_domain("b", "folk-jewelry"), 1)[0]
        score = engine.score(doc, media)
        assert 0.0 <= score <= 1.0

    def test_cross_type_same_topic_beats_other_topic(self, engine, corpus_generator):
        jewelry_docs = corpus_generator.generate(_text_domain("a", "folk-jewelry"), 10)
        jewelry_media = corpus_generator.generate(_media_domain("b", "folk-jewelry"), 10)
        thesis_media = corpus_generator.generate(_media_domain("c", "academic-theses"), 10)
        same = np.mean([
            engine.score(doc, media)
            for doc, media in zip(jewelry_docs, jewelry_media)
        ])
        cross = np.mean([
            engine.score(doc, media)
            for doc, media in zip(jewelry_docs, thesis_media)
        ])
        assert same > cross

    def test_compound_dispatch(self, engine, corpus_generator):
        compound = corpus_generator.generate(_compound_domain(), 1)[0]
        doc = corpus_generator.generate(_text_domain(), 1)[0]
        assert 0.0 <= engine.score(compound, doc) <= 1.0

    def test_compound_compound(self, engine, corpus_generator):
        compounds = corpus_generator.generate(_compound_domain(), 2)
        assert 0.0 <= engine.score(compounds[0], compounds[1]) <= 1.0

    def test_rank_orders_descending(self, engine, corpus_generator):
        query = corpus_generator.generate(_text_domain("q", "dance-forms"), 1)[0]
        candidates = corpus_generator.generate(_text_domain("c", "dance-forms"), 5)
        ranked = engine.rank(query, candidates)
        scores = [score for __, score in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_rank_finds_relevant_first(self, engine, corpus_generator):
        query = corpus_generator.generate(_text_domain("q", "dance-forms"), 1)[0]
        relevant = corpus_generator.generate(_text_domain("r", "dance-forms"), 5)
        irrelevant = corpus_generator.generate(_text_domain("i", "auction-market"), 5)
        ranked = engine.rank(query, relevant + irrelevant)
        top_domains = {item.domain for item, __ in ranked[:3]}
        assert "r" in top_domains
