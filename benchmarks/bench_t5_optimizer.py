"""T5 (§4 Optimization): multi-objective plan search vs naive baselines.

Regenerates the T5 table: over randomly generated candidate markets
(jobs × sources with varied quality/cost/risk), compare the exhaustive,
local-search and greedy planners against random / cost-greedy /
quality-greedy / round-robin baselines on mean utility, mean regret
(vs the exhaustive optimum) and Pareto-front size.  Expected shape:
exhaustive ≥ local ≥ greedy > every baseline.
"""

import numpy as np
import pytest

from repro.data import TextDocument
from repro.experiments import ExperimentResult, summarize
from repro.optimizer import (
    CandidateAssignment,
    EvolutionarySearch,
    ExhaustiveSearch,
    GreedySearch,
    LocalSearch,
    baseline_suite,
    make_evaluator,
    pareto_front,
)
from repro.qos import QoSVector, QoSWeights
from repro.query import Query, QueryKind
from repro.sim import RngStreams
from repro.uncertainty import UncertainEstimate


def _random_table(rng, n_jobs, n_sources):
    query = Query(
        kind=QueryKind.SIMILARITY,
        reference_item=TextDocument(
            item_id=f"ref-{rng.integers(1 << 30)}", domain="museum",
            latent=np.array([1.0]), terms={"w00001": 1},
        ),
    )
    table = {}
    for job_index in range(n_jobs):
        subquery = query.restricted_to(f"domain-{job_index}")
        candidates = []
        for source_index in range(n_sources):
            response_time = float(rng.uniform(0.2, 8.0))
            # Fast sources are shallow: completeness correlates with the
            # time a source invests, plus idiosyncratic noise — the
            # trade-off that makes planning a genuine multi-objective
            # problem (a cost-greedy baseline picks shallow sources).
            depth = response_time / 8.0
            completeness = float(np.clip(
                0.15 + 0.7 * depth + rng.normal(0, 0.12), 0.05, 1.0,
            ))
            candidates.append(CandidateAssignment(
                subquery=subquery,
                source_id=f"s{source_index}",
                expected=QoSVector(
                    response_time=response_time,
                    completeness=completeness,
                    freshness=float(rng.uniform(0.3, 1.0)),
                    correctness=float(rng.uniform(0.5, 1.0)),
                    trust=float(rng.uniform(0.3, 1.0)),
                ),
                cost=UncertainEstimate(
                    mean=response_time, std=0.2 * response_time,
                    low=0.0, high=4 * response_time,
                ),
                breach_risk=0.0,  # risk-aware choice is ablated in A-experiments
            ))
        table[subquery.subquery_id] = candidates
    return table


def run_t5(seed=29, trials=15, n_jobs=4, n_sources=6) -> ExperimentResult:
    rng = np.random.default_rng(seed)
    evaluator = make_evaluator(QoSWeights(), price_sensitivity=0.02)
    evolutionary = EvolutionarySearch(
        RngStreams(seed).spawn("t5-evo"), population_size=16, generations=15,
    )
    planners = {
        "exhaustive": lambda table: ExhaustiveSearch().search(table, evaluator).best,
        "local": lambda table: LocalSearch().search(table, evaluator).best,
        "evolutionary": lambda table: evolutionary.search(table, evaluator).best,
        "greedy": lambda table: GreedySearch().search(table, evaluator).best,
    }
    baselines = {
        planner.name: planner
        for planner in baseline_suite(RngStreams(seed).spawn("t5"))
    }
    utilities = {name: [] for name in list(planners) + list(baselines)}
    regrets = {name: [] for name in utilities}
    front_sizes = []
    for __ in range(trials):
        table = _random_table(rng, n_jobs, n_sources)
        exhaustive = ExhaustiveSearch().search(table, evaluator)
        all_evaluations = exhaustive.front
        front_sizes.append(len(pareto_front(all_evaluations)))
        for name, plan_fn in planners.items():
            evaluation = plan_fn(table)
            utilities[name].append(evaluation.utility)
            regrets[name].append(
                max(0.0, exhaustive.best.utility - evaluation.utility)
            )
        for name, planner in baselines.items():
            evaluation = evaluator(planner.plan(table))
            utilities[name].append(evaluation.utility)
            regrets[name].append(
                max(0.0, exhaustive.best.utility - evaluation.utility)
            )
    result = ExperimentResult(
        "T5", "Plan search vs baselines (random candidate markets)",
        ["planner", "mean_utility", "mean_regret", "win_vs_random"],
    )
    random_utilities = utilities["random"]
    for name in ["exhaustive", "local", "evolutionary", "greedy",
                 "quality-greedy", "cost-greedy", "round-robin", "random"]:
        wins = sum(
            1 for mine, theirs in zip(utilities[name], random_utilities)
            if mine > theirs
        )
        result.add_row(
            name,
            summarize(utilities[name]).mean,
            summarize(regrets[name]).mean,
            wins / len(random_utilities),
        )
    result.add_note(
        "mean Pareto-front size over the plan space: "
        f"{np.mean(front_sizes):.1f} plans (multi-objective structure exists)"
    )
    return result


@pytest.mark.benchmark(group="T5")
def test_t5_optimizer(benchmark):
    result = benchmark.pedantic(run_t5, rounds=1, iterations=1)
    result.print()
    rows = {row[0]: row for row in result.rows}
    assert rows["exhaustive"][2] == 0.0  # zero regret by construction
    assert rows["local"][1] >= rows["greedy"][1] - 1e-9
    assert rows["evolutionary"][1] >= 0.9 * rows["exhaustive"][1]
    assert rows["greedy"][1] > rows["random"][1]
    assert rows["exhaustive"][1] > rows["cost-greedy"][1]
    assert rows["exhaustive"][1] > rows["quality-greedy"][1]


if __name__ == "__main__":
    run_t5().print()
