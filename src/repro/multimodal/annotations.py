"""Annotations and annotation-triggered comparisons.

"While examining the contents of a thesis from the repository, relevant
parts of it, whether specified by Iris through some annotation or
identified as important by the system, are compared against the catalog
material as well as other resources" (§9).

Annotating an item does two things here: it records the note (an
:class:`~repro.data.items.Annotation` object, itself an information item
that can live in a personal information base), and it spawns or extends a
standing comparison in the feed service so future material is matched
against the annotated part automatically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.data.items import Annotation, CompoundObject, InformationItem, make_item_id
from repro.multimodal.feeds import FeedService, StandingQuery
from repro.uncertainty.matching import ConceptLifter
from repro.uncertainty.salience import salient_parts


@dataclass
class AnnotationRecord:
    """An annotation plus the standing comparison it drives."""

    annotation: Annotation
    standing_id: Optional[int] = None


class AnnotationService:
    """Creates annotations and wires them into the feed machinery."""

    def __init__(self, feeds: Optional[FeedService] = None, auto_compare: bool = True):
        self.feeds = feeds
        self.auto_compare = auto_compare and feeds is not None
        self._records: Dict[str, List[AnnotationRecord]] = {}

    # ------------------------------------------------------------------
    def annotate(
        self,
        author_id: str,
        target: InformationItem,
        text: str = "",
        created_at: float = 0.0,
        comparison_threshold: float = 0.6,
    ) -> AnnotationRecord:
        """Attach a note to ``target``; optionally start a comparison.

        The annotation inherits the target's latent (the note is *about*
        that content), so the triggered standing query matches material
        similar to the annotated item.
        """
        annotation = Annotation(
            item_id=make_item_id("annotation"),
            domain=target.domain,
            latent=target.latent,
            created_at=created_at,
            author_id=author_id,
            target_item_id=target.item_id,
            text=text,
        )
        record = AnnotationRecord(annotation=annotation)
        if self.auto_compare:
            standing = StandingQuery(
                owner_id=author_id,
                comparison_items=[target],
                threshold=comparison_threshold,
            )
            assert self.feeds is not None
            record.standing_id = self.feeds.register(standing)
        self._records.setdefault(author_id, []).append(record)
        return record

    def extend_comparison(
        self, author_id: str, record: AnnotationRecord, item: InformationItem
    ) -> None:
        """Add another object to an annotation's running comparison."""
        if record.standing_id is None or self.feeds is None:
            raise ValueError("annotation has no standing comparison")
        standing = self.feeds.standing_query(record.standing_id)
        if standing.owner_id != author_id:
            raise PermissionError("only the author may modify the comparison")
        standing.add_comparison_item(item)

    def auto_annotate(
        self,
        author_id: str,
        compound: CompoundObject,
        lifter: ConceptLifter,
        k: int = 2,
        created_at: float = 0.0,
        comparison_threshold: float = 0.6,
    ) -> List[AnnotationRecord]:
        """System-identified important parts → automatic comparisons (§9).

        Detects the ``k`` most salient parts of ``compound`` and annotates
        each on the author's behalf, spawning standing comparisons exactly
        as a manual annotation would.
        """
        records = []
        for salient in salient_parts(compound, lifter, k=k):
            records.append(self.annotate(
                author_id,
                salient.part,
                text=f"[auto] salient part of {compound.item_id} "
                     f"(salience {salient.salience:.2f})",
                created_at=created_at,
                comparison_threshold=comparison_threshold,
            ))
        return records

    # ------------------------------------------------------------------
    def annotations_by(self, author_id: str) -> List[Annotation]:
        """Annotations authored by ``author_id``."""
        return [record.annotation for record in self._records.get(author_id, [])]

    def records_by(self, author_id: str) -> List[AnnotationRecord]:
        """Annotation records authored by ``author_id``."""
        return list(self._records.get(author_id, []))
