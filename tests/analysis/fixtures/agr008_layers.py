# module: repro.sim.fixture_layers
"""Fixture: layering violations that AGR008 must flag.

The sim kernel is a leaf of the layer DAG: importing any other repro
package from here is the canonical violation.
"""

from typing import TYPE_CHECKING

from repro.qos.vector import QoSVector  # expect: AGR008

import repro.core  # expect: AGR008

if TYPE_CHECKING:  # fine: annotation-only imports are exempt
    from repro.query.model import Query


def touch(query: "Query"):
    return QoSVector, repro.core, query
