"""Tests for QoS vectors, weights and requirements."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.qos import (
    QoSRequirement,
    QoSVector,
    QoSWeights,
    scalarize,
    time_utility,
)

unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
qos_vectors = st.builds(
    QoSVector,
    response_time=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    completeness=unit,
    freshness=unit,
    correctness=unit,
    trust=unit,
)


class TestQoSVector:
    def test_defaults_are_perfect(self):
        vector = QoSVector()
        assert vector.completeness == 1.0
        assert vector.response_time == 0.0

    def test_negative_response_time_rejected(self):
        with pytest.raises(ValueError):
            QoSVector(response_time=-1.0)

    def test_quality_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            QoSVector(completeness=1.5)

    def test_dominates(self):
        better = QoSVector(response_time=1.0, completeness=0.9)
        worse = QoSVector(response_time=2.0, completeness=0.8)
        assert better.dominates(worse)
        assert not worse.dominates(better)

    def test_no_self_domination(self):
        vector = QoSVector(response_time=1.0)
        assert not vector.dominates(vector)

    def test_incomparable_vectors(self):
        fast_incomplete = QoSVector(response_time=1.0, completeness=0.5)
        slow_complete = QoSVector(response_time=5.0, completeness=0.9)
        assert not fast_incomplete.dominates(slow_complete)
        assert not slow_complete.dominates(fast_incomplete)

    @given(qos_vectors, qos_vectors)
    def test_dominance_antisymmetric(self, a, b):
        assert not (a.dominates(b) and b.dominates(a))

    def test_worst_case(self):
        a = QoSVector(response_time=1.0, completeness=0.9, trust=0.5)
        b = QoSVector(response_time=3.0, completeness=0.7, trust=0.8)
        combined = a.worst_case(b)
        assert combined.response_time == 3.0
        assert combined.completeness == 0.7
        assert combined.trust == 0.5

    def test_as_dict(self):
        d = QoSVector(response_time=2.0).as_dict()
        assert d["response_time"] == 2.0
        assert set(d) == {
            "response_time", "completeness", "freshness", "correctness", "trust",
        }


class TestScalarization:
    def test_time_utility_half_life(self):
        assert time_utility(10.0, half_life=10.0) == pytest.approx(0.5)

    def test_time_utility_zero(self):
        assert time_utility(0.0, half_life=10.0) == 1.0

    def test_time_utility_negative_rejected(self):
        with pytest.raises(ValueError):
            time_utility(-1.0, half_life=10.0)

    def test_perfect_vector_scores_one(self):
        assert scalarize(QoSVector(), QoSWeights()) == pytest.approx(1.0)

    @given(qos_vectors)
    def test_scalarize_bounded(self, vector):
        value = scalarize(vector, QoSWeights())
        assert 0.0 <= value <= 1.0 + 1e-9

    def test_weights_shift_ranking(self):
        fast_incomplete = QoSVector(response_time=0.5, completeness=0.2)
        slow_complete = QoSVector(response_time=50.0, completeness=1.0)
        speed_lover = QoSWeights(response_time=10.0, completeness=0.1,
                                 freshness=0.1, correctness=0.1, trust=0.1)
        completeness_lover = QoSWeights(response_time=0.1, completeness=10.0,
                                        freshness=0.1, correctness=0.1, trust=0.1)
        assert scalarize(fast_incomplete, speed_lover) > scalarize(slow_complete, speed_lover)
        assert scalarize(slow_complete, completeness_lover) > scalarize(
            fast_incomplete, completeness_lover
        )

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            QoSWeights(trust=-1.0)

    def test_all_zero_weights_rejected(self):
        weights = QoSWeights(response_time=0, completeness=0, freshness=0,
                             correctness=0, trust=0)
        with pytest.raises(ValueError):
            weights.normalised()

    def test_normalised_sums_to_one(self):
        weights = QoSWeights(response_time=2.0, completeness=3.0).normalised()
        total = (weights.response_time + weights.completeness + weights.freshness
                 + weights.correctness + weights.trust)
        assert total == pytest.approx(1.0)


class TestRequirement:
    def test_trivial(self):
        assert QoSRequirement().is_trivial()
        assert not QoSRequirement(min_trust=0.5).is_trivial()

    def test_meets(self):
        requirement = QoSRequirement(max_response_time=5.0, min_completeness=0.8)
        assert QoSVector(response_time=4.0, completeness=0.9).meets(requirement)
        assert not QoSVector(response_time=6.0, completeness=0.9).meets(requirement)

    def test_violated_dimensions(self):
        requirement = QoSRequirement(
            max_response_time=5.0, min_completeness=0.8, min_trust=0.9
        )
        delivered = QoSVector(response_time=6.0, completeness=0.7, trust=0.95)
        assert requirement.violated_dimensions(delivered) == [
            "response_time", "completeness",
        ]

    def test_tighten(self):
        requirement = QoSRequirement(min_trust=0.5).tighten(min_trust=0.9)
        assert requirement.min_trust == 0.9

    def test_as_promise_meets_requirement(self):
        requirement = QoSRequirement(
            max_response_time=5.0, min_completeness=0.8, min_freshness=0.6
        )
        assert requirement.as_promise().meets(requirement)

    @given(qos_vectors)
    def test_trivial_requirement_always_met(self, vector):
        assert vector.meets(QoSRequirement())
