"""Tests for blacklists."""

from repro.trust import Blacklist, BlacklistRegistry


class TestBlacklist:
    def test_permanent_ban(self):
        blacklist = Blacklist("source-1")
        blacklist.ban("iris")
        assert blacklist.is_banned("iris", now=1e9)

    def test_temporary_ban_expires(self):
        blacklist = Blacklist("source-1")
        blacklist.ban("iris", until=10.0)
        assert blacklist.is_banned("iris", now=5.0)
        assert not blacklist.is_banned("iris", now=10.0)

    def test_lift(self):
        blacklist = Blacklist("s")
        blacklist.ban("iris")
        blacklist.lift("iris")
        assert not blacklist.is_banned("iris")

    def test_unbanned_subject(self):
        assert not Blacklist("s").is_banned("anyone")

    def test_banned_listing(self):
        blacklist = Blacklist("s")
        blacklist.ban("b")
        blacklist.ban("a")
        blacklist.ban("expired", until=1.0)
        assert blacklist.banned(now=5.0) == ["a", "b"]


class TestRegistry:
    def test_blocks(self):
        registry = BlacklistRegistry()
        registry.for_owner("source-1").ban("iris")
        assert registry.blocks("source-1", "iris")
        assert not registry.blocks("source-2", "iris")

    def test_unknown_owner_blocks_nothing(self):
        assert not BlacklistRegistry().blocks("anyone", "x")
