"""Personalization: profiles, learning, storage, integration (paper §5).

Public API:

- :class:`UserProfile`, :func:`make_strategy`,
  :data:`NEGOTIATION_STYLES`, :data:`INTERACTION_MODES`.
- :class:`ProfileLearner`, :class:`InteractionEvent`,
  :data:`ACTION_WEIGHTS`.
- :class:`ProfileStore`.
- :class:`LocalProfile`, :func:`integrate_profiles`,
  :func:`integrated_profile`, :class:`IntegrationReport`.
- :class:`PersonalizedRanker`, :func:`generic_ranking`.
"""

from repro.personalization.behavior import (
    ObservedChoice,
    RiskAttitudeLearner,
    classify_negotiation_style,
    fit_concession_exponent,
    trace_from_strategy,
)
from repro.personalization.integration import (
    IntegrationReport,
    LocalProfile,
    integrate_profiles,
    integrated_profile,
)
from repro.personalization.learning import (
    ACTION_WEIGHTS,
    InteractionEvent,
    ProfileLearner,
)
from repro.personalization.profile import (
    INTERACTION_MODES,
    NEGOTIATION_STYLES,
    UserProfile,
    make_strategy,
)
from repro.personalization.ranking import PersonalizedRanker, generic_ranking
from repro.personalization.store import ProfileStore

__all__ = [
    "ACTION_WEIGHTS",
    "INTERACTION_MODES",
    "IntegrationReport",
    "InteractionEvent",
    "LocalProfile",
    "NEGOTIATION_STYLES",
    "ObservedChoice",
    "PersonalizedRanker",
    "ProfileLearner",
    "ProfileStore",
    "RiskAttitudeLearner",
    "UserProfile",
    "classify_negotiation_style",
    "fit_concession_exponent",
    "generic_ranking",
    "trace_from_strategy",
    "integrate_profiles",
    "integrated_profile",
    "make_strategy",
]
