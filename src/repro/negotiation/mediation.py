"""Post-settlement mediation: Pareto-improving the struck deal.

Bilateral bargaining under asymmetric information (§4: "information
providers and consumers have asymmetric knowledge") typically lands on the
zero-sum diagonal and leaves integrative value on the table.  A classic
remedy (in the spirit of the paper's Rosenschein & Zlotkin reference) is a
*mediator*: after agreement, it proposes random perturbations of the deal
and keeps any that **both** parties weakly prefer.  Parties reveal only
accept/reject votes — never their utility functions — so the mechanism
respects the information asymmetry.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.negotiation.offers import IssueSpace, Offer
from repro.negotiation.utility import AdditiveUtility
from repro.sim.rng import ScopedStreams


@dataclass
class MediationOutcome:
    """The result of one mediation session."""

    initial: Offer
    improved: Offer
    rounds_accepted: int
    proposals_made: int
    buyer_gain: float
    seller_gain: float

    @property
    def improved_anything(self) -> bool:
        """Whether any proposal was mutually accepted."""
        return self.rounds_accepted > 0

    @property
    def joint_gain(self) -> float:
        """Buyer gain plus seller gain."""
        return self.buyer_gain + self.seller_gain


class Mediator:
    """Proposes Pareto improvements to an agreed deal.

    Parameters
    ----------
    space:
        The issue space the deal lives in.
    streams:
        RNG scope for proposal sampling.
    proposals:
        How many perturbations to try.
    step_scale:
        Perturbation size as a fraction of each issue's range.
    """

    def __init__(
        self,
        space: IssueSpace,
        streams: ScopedStreams,
        proposals: int = 200,
        step_scale: float = 0.15,
    ):
        if proposals < 1:
            raise ValueError("proposals must be >= 1")
        if not 0.0 < step_scale <= 1.0:
            raise ValueError("step_scale must be in (0, 1]")
        self.space = space
        self._rng = streams.stream("mediator")
        self.proposals = proposals
        self.step_scale = step_scale

    def improve(
        self,
        deal: Offer,
        buyer: AdditiveUtility,
        seller: AdditiveUtility,
    ) -> MediationOutcome:
        """Hill-climb the deal through mutually acceptable perturbations.

        The mediator only ever observes the two accept/reject votes; the
        utilities are called here in lieu of asking the (simulated)
        parties.
        """
        current = self.space.validate(deal)
        buyer_start = buyer(current)
        seller_start = seller(current)
        accepted = 0
        for __ in range(self.proposals):
            candidate = dict(current)
            for issue in self.space.issues:
                span = issue.high - issue.low
                candidate[issue.name] = issue.clip(
                    candidate[issue.name]
                    + float(self._rng.normal(0, self.step_scale * span))
                )
            buyer_accepts = buyer(candidate) >= buyer(current) - 1e-12
            seller_accepts = seller(candidate) >= seller(current) - 1e-12
            if buyer_accepts and seller_accepts:
                current = candidate
                accepted += 1
        return MediationOutcome(
            initial=dict(deal),
            improved=current,
            rounds_accepted=accepted,
            proposals_made=self.proposals,
            buyer_gain=buyer(current) - buyer_start,
            seller_gain=seller(current) - seller_start,
        )
