"""Quality-of-service vectors and requirements.

Section 3 of the paper: query results carry several quality indicators
"beyond the traditional response time or work: completeness, freshness,
trustworthiness, etc.", and users trade these off against each other.

A :class:`QoSVector` holds the five indicators this library tracks.  All
quality dimensions are "higher is better" in [0, 1] except
``response_time``, which is "lower is better" and unbounded; utilities map
it through a half-life transform so vectors can be compared on a common
scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

QUALITY_DIMENSIONS = ("completeness", "freshness", "correctness", "trust")
ALL_DIMENSIONS = ("response_time",) + QUALITY_DIMENSIONS


@dataclass(frozen=True)
class QoSVector:
    """Delivered or promised quality of a query result.

    Attributes
    ----------
    response_time:
        Virtual time to deliver (lower better, >= 0).
    completeness:
        Fraction of truly relevant reachable items returned, in [0, 1].
    freshness:
        How current the returned items are, in [0, 1].
    correctness:
        Fraction of returned items that are sound, in [0, 1].
    trust:
        Trustworthiness of the providing sources, in [0, 1].
    """

    response_time: float = 0.0
    completeness: float = 1.0
    freshness: float = 1.0
    correctness: float = 1.0
    trust: float = 1.0

    def __post_init__(self) -> None:
        if self.response_time < 0:
            raise ValueError("response_time must be non-negative")
        for dim in QUALITY_DIMENSIONS:
            value = getattr(self, dim)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{dim} must be in [0, 1], got {value}")

    # ------------------------------------------------------------------
    def dominates(self, other: "QoSVector") -> bool:
        """Strict Pareto dominance: at least as good everywhere, better somewhere."""
        at_least = self.response_time <= other.response_time and all(
            getattr(self, dim) >= getattr(other, dim) for dim in QUALITY_DIMENSIONS
        )
        strictly = self.response_time < other.response_time or any(
            getattr(self, dim) > getattr(other, dim) for dim in QUALITY_DIMENSIONS
        )
        return at_least and strictly

    def meets(self, requirement: "QoSRequirement") -> bool:
        """Whether this vector satisfies every bound of ``requirement``."""
        return not requirement.violated_dimensions(self)

    def as_dict(self) -> Dict[str, float]:
        """All five dimensions as a plain dictionary."""
        return {dim: getattr(self, dim) for dim in ALL_DIMENSIONS}

    def clamped(self) -> "QoSVector":
        """Return a copy with quality dimensions clipped into [0, 1]."""
        values = {
            dim: min(1.0, max(0.0, getattr(self, dim))) for dim in QUALITY_DIMENSIONS
        }
        return replace(self, **values)

    def worst_case(self, other: "QoSVector") -> "QoSVector":
        """Pointwise pessimistic combination (used for plan composition)."""
        return QoSVector(
            response_time=max(self.response_time, other.response_time),
            completeness=min(self.completeness, other.completeness),
            freshness=min(self.freshness, other.freshness),
            correctness=min(self.correctness, other.correctness),
            trust=min(self.trust, other.trust),
        )


@dataclass(frozen=True)
class QoSWeights:
    """A user's trade-off weights over QoS dimensions.

    Weights need not sum to one; :meth:`normalised` rescales them.
    ``response_half_life`` sets the response time at which the time-utility
    falls to 0.5.
    """

    response_time: float = 1.0
    completeness: float = 1.0
    freshness: float = 1.0
    correctness: float = 1.0
    trust: float = 1.0
    response_half_life: float = 10.0

    def __post_init__(self) -> None:
        for dim in ALL_DIMENSIONS:
            if getattr(self, dim) < 0:
                raise ValueError(f"weight {dim} must be non-negative")
        if self.response_half_life <= 0:
            raise ValueError("response_half_life must be positive")

    def normalised(self) -> "QoSWeights":
        """A copy whose weights sum to one."""
        total = sum(getattr(self, dim) for dim in ALL_DIMENSIONS)
        if total <= 0:
            raise ValueError("at least one weight must be positive")
        return QoSWeights(
            **{dim: getattr(self, dim) / total for dim in ALL_DIMENSIONS},
            response_half_life=self.response_half_life,
        )


def time_utility(response_time: float, half_life: float) -> float:
    """Map response time to a utility in (0, 1]; 0.5 at ``half_life``."""
    if response_time < 0:
        raise ValueError("response_time must be non-negative")
    return half_life / (half_life + response_time)


def scalarize(vector: QoSVector, weights: QoSWeights) -> float:
    """Weighted utility of a QoS vector in [0, 1]."""
    weights = weights.normalised()
    utility = weights.response_time * time_utility(
        vector.response_time, weights.response_half_life
    )
    for dim in QUALITY_DIMENSIONS:
        utility += getattr(weights, dim) * getattr(vector, dim)
    return utility


@dataclass(frozen=True)
class QoSRequirement:
    """Bounds a consumer (or an SLA) places on delivered QoS.

    ``None`` means the dimension is unconstrained.
    """

    max_response_time: Optional[float] = None
    min_completeness: Optional[float] = None
    min_freshness: Optional[float] = None
    min_correctness: Optional[float] = None
    min_trust: Optional[float] = None

    _BOUNDS: Tuple[Tuple[str, str], ...] = field(
        default=(
            ("max_response_time", "response_time"),
            ("min_completeness", "completeness"),
            ("min_freshness", "freshness"),
            ("min_correctness", "correctness"),
            ("min_trust", "trust"),
        ),
        repr=False,
        compare=False,
    )

    def violated_dimensions(self, delivered: QoSVector) -> List[str]:
        """List the QoS dimensions of ``delivered`` that break this requirement."""
        violations: List[str] = []
        if (
            self.max_response_time is not None
            and delivered.response_time > self.max_response_time + 1e-12
        ):
            violations.append("response_time")
        for bound_name, dim in self._BOUNDS[1:]:
            bound = getattr(self, bound_name)
            if bound is not None and getattr(delivered, dim) < bound - 1e-12:
                violations.append(dim)
        return violations

    def is_trivial(self) -> bool:
        """True when no dimension is constrained."""
        return all(getattr(self, bound) is None for bound, __ in self._BOUNDS)

    def tighten(self, **bounds: float) -> "QoSRequirement":
        """Return a copy with the given bounds replaced."""
        return replace(self, **bounds)

    def relaxed(self, factor: float) -> "QoSRequirement":
        """Loosen every bound by ``factor`` ∈ [0, 1].

        Quality floors shrink towards 0 by ``factor``; the response-time
        ceiling grows by ``1/(1-factor)``.  ``factor=0`` is a no-op;
        ``factor`` near 1 approaches an unconstrained requirement.  Used
        when a market refuses the original terms and the consumer trades
        quality for service (§3).
        """
        if not 0.0 <= factor < 1.0:
            raise ValueError("factor must be in [0, 1)")
        scale = 1.0 - factor
        return QoSRequirement(
            max_response_time=(
                self.max_response_time / scale
                if self.max_response_time is not None else None
            ),
            min_completeness=(
                self.min_completeness * scale
                if self.min_completeness is not None else None
            ),
            min_freshness=(
                self.min_freshness * scale
                if self.min_freshness is not None else None
            ),
            min_correctness=(
                self.min_correctness * scale
                if self.min_correctness is not None else None
            ),
            min_trust=(
                self.min_trust * scale if self.min_trust is not None else None
            ),
        )

    def as_promise(self) -> QoSVector:
        """The weakest QoS vector that still meets this requirement.

        Unconstrained quality dimensions default to 0 and unconstrained
        response time to infinity — the promise a provider makes when it
        signs an SLA at exactly these bounds.
        """
        return QoSVector(
            response_time=(
                self.max_response_time if self.max_response_time is not None else 0.0
            ),
            completeness=self.min_completeness or 0.0,
            freshness=self.min_freshness or 0.0,
            correctness=self.min_correctness or 0.0,
            trust=self.min_trust or 0.0,
        )
