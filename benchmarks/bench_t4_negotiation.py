"""T4 (§4 Negotiation): strategy tournament.

Regenerates the T4 tables: a round-robin tournament of the five concession
strategies over many bilateral encounters with randomised stakes.  Reports
deal rate, mean utility earned (as buyer), and mean rounds to agreement.
Expected shape: Boulware extracts more utility than Conceder when a deal
happens, but Firm-vs-Firm fails; Conceder agrees fastest.
"""

import numpy as np
import pytest

from repro.experiments import ExperimentResult, summarize
from repro.negotiation import (
    AlternatingOffersProtocol,
    NegotiationPreferences,
    Negotiator,
    buyer_utility,
    seller_utility,
    standard_qos_issue_space,
    standard_strategy_suite,
)

SPACE = standard_qos_issue_space(max_price=10.0, max_response_time=10.0)


def _random_weights(rng):
    return {name: float(rng.uniform(0.5, 2.0)) for name in SPACE.names}


def run_t4(seed=17, encounters=40, max_rounds=30) -> ExperimentResult:
    strategies = standard_strategy_suite()
    protocol = AlternatingOffersProtocol(max_rounds=max_rounds)
    rng = np.random.default_rng(seed)
    result = ExperimentResult(
        "T4", "Negotiation strategy tournament (row = buyer strategy)",
        ["buyer_strategy", "deal_rate", "mean_buyer_utility",
         "mean_seller_utility", "mean_rounds"],
    )
    for buyer_strategy in strategies:
        deals, buyer_utilities, seller_utilities, rounds = [], [], [], []
        for seller_strategy in strategies:
            for __ in range(encounters // len(strategies)):
                reservation = float(rng.uniform(0.15, 0.35))
                buyer = Negotiator(
                    "buyer",
                    NegotiationPreferences(
                        buyer_utility(SPACE, _random_weights(rng)), reservation,
                    ),
                    buyer_strategy,
                )
                seller = Negotiator(
                    "seller",
                    NegotiationPreferences(
                        seller_utility(SPACE, _random_weights(rng)), reservation,
                    ),
                    seller_strategy,
                )
                outcome = protocol.run(buyer, seller)
                deals.append(1.0 if outcome.agreed else 0.0)
                rounds.append(outcome.rounds)
                if outcome.agreed:
                    buyer_utilities.append(outcome.buyer_utility)
                    seller_utilities.append(outcome.seller_utility)
        result.add_row(
            buyer_strategy.name,
            summarize(deals).mean,
            summarize(buyer_utilities).mean,
            summarize(seller_utilities).mean,
            summarize(rounds).mean,
        )
    result.add_note(
        "expected shape: boulware wins on utility-per-deal, conceder on "
        "deal rate and speed; firm risks no-deal"
    )
    return result


def run_t4_head_to_head(seed=17, encounters=60, max_rounds=40) -> ExperimentResult:
    """Boulware vs Conceder head-to-head (the canonical asymmetry)."""
    from repro.negotiation import boulware, conceder

    protocol = AlternatingOffersProtocol(max_rounds=max_rounds)
    rng = np.random.default_rng(seed)
    result = ExperimentResult(
        "T4b", "Boulware vs Conceder head-to-head",
        ["matchup", "deal_rate", "boulware_side_utility", "conceder_side_utility"],
    )
    for label, buyer_is_boulware in [("boulware buyer", True), ("boulware seller", False)]:
        deals, boulware_u, conceder_u = [], [], []
        for __ in range(encounters):
            buyer = Negotiator(
                "buyer",
                NegotiationPreferences(buyer_utility(SPACE, _random_weights(rng)), 0.2),
                boulware() if buyer_is_boulware else conceder(),
            )
            seller = Negotiator(
                "seller",
                NegotiationPreferences(seller_utility(SPACE, _random_weights(rng)), 0.2),
                conceder() if buyer_is_boulware else boulware(),
            )
            outcome = protocol.run(buyer, seller)
            deals.append(1.0 if outcome.agreed else 0.0)
            if outcome.agreed:
                if buyer_is_boulware:
                    boulware_u.append(outcome.buyer_utility)
                    conceder_u.append(outcome.seller_utility)
                else:
                    boulware_u.append(outcome.seller_utility)
                    conceder_u.append(outcome.buyer_utility)
        result.add_row(
            label, summarize(deals).mean,
            summarize(boulware_u).mean, summarize(conceder_u).mean,
        )
    result.add_note("expected shape: the boulware side wins on both sides of the table")
    return result


@pytest.mark.benchmark(group="T4")
def test_t4_negotiation(benchmark):
    result = benchmark.pedantic(run_t4, rounds=1, iterations=1)
    result.print()
    head_to_head = run_t4_head_to_head()
    head_to_head.print()
    rows = {row[0]: row for row in result.rows}
    # Conceder reaches more deals than firm.
    assert rows["conceder"][1] >= rows["firm"][1]
    # The boulware side extracts more utility in the head-to-head.
    for row in head_to_head.rows:
        assert row[2] > row[3]


if __name__ == "__main__":
    run_t4().print()
    run_t4_head_to_head().print()
