"""Query optimization as trading (paper §4).

Public API:

- Candidates: :class:`CandidateEnumerator`, :class:`CandidateAssignment`,
  :func:`discount_by_trust`.
- Plans: :class:`CandidatePlan`, :class:`PlanEvaluation`,
  :func:`evaluate_plan`.
- Pareto: :func:`pareto_front`, :func:`dominates`, :func:`hypervolume`,
  :func:`regret`.
- Search: :class:`ExhaustiveSearch`, :class:`GreedySearch`,
  :class:`LocalSearch`, :class:`SearchResult`, :func:`make_evaluator`.
- Baselines: :class:`RandomPlanner`, :class:`CostGreedyPlanner`,
  :class:`QualityGreedyPlanner`, :class:`RoundRobinPlanner`,
  :func:`baseline_suite`.
- Trading: :class:`TradingOptimizer`, :class:`SourceBidder`,
  :class:`NegotiatedPlan`.
"""

from repro.optimizer.baselines import (
    CostGreedyPlanner,
    QualityGreedyPlanner,
    RandomPlanner,
    RoundRobinPlanner,
    baseline_suite,
)
from repro.optimizer.candidates import (
    CandidateAssignment,
    CandidateEnumerator,
    discount_by_trust,
)
from repro.optimizer.parametric import (
    DEFAULT_REGIMES,
    LoadRegime,
    ParametricPlan,
    ParametricPlanner,
    scale_candidate,
)
from repro.optimizer.pareto import dominates, hypervolume, pareto_front, regret
from repro.optimizer.plans import CandidatePlan, PlanEvaluation, evaluate_plan
from repro.optimizer.search import (
    EvolutionarySearch,
    ExhaustiveSearch,
    GreedySearch,
    LocalSearch,
    SearchResult,
    make_evaluator,
)
from repro.optimizer.trading import NegotiatedPlan, SourceBidder, TradingOptimizer

__all__ = [
    "CandidateAssignment",
    "CandidateEnumerator",
    "CandidatePlan",
    "CostGreedyPlanner",
    "DEFAULT_REGIMES",
    "EvolutionarySearch",
    "ExhaustiveSearch",
    "GreedySearch",
    "LoadRegime",
    "LocalSearch",
    "NegotiatedPlan",
    "ParametricPlan",
    "ParametricPlanner",
    "PlanEvaluation",
    "QualityGreedyPlanner",
    "RandomPlanner",
    "RoundRobinPlanner",
    "SearchResult",
    "SourceBidder",
    "TradingOptimizer",
    "baseline_suite",
    "discount_by_trust",
    "dominates",
    "evaluate_plan",
    "hypervolume",
    "make_evaluator",
    "pareto_front",
    "regret",
    "scale_candidate",
]
