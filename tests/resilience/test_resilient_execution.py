"""End-to-end tests for the resilient execution path.

The scenarios mirror §2's pathologies: an unavailable primary fails over,
a slow primary gets hedged, retries stay inside the deadline budget, an
open breaker short-circuits, and a mid-query outage degrades to partial
results instead of raising.
"""

import numpy as np
import pytest

from repro.core import Consumer
from repro.core.builder import build_agora
from repro.data import DomainSpec, reset_item_ids
from repro.net import LoadModel, LoadSpec, NodeHealth, reset_message_ids
from repro.personalization import UserProfile
from repro.query import (
    ExecutionContext,
    QueryExecutor,
    Retrieve,
    reset_query_ids,
    standard_plan,
)
from repro.resilience import (
    BreakerBoard,
    BreakerPolicy,
    FaultScript,
    HedgePolicy,
    ResilienceConfig,
    ResilienceRuntime,
    RetryPolicy,
)
from repro.sim import Simulator
from repro.sources import SourceRegistry
from repro.workloads import QueryWorkloadGenerator

from tests.conftest import make_source, make_topic_query


@pytest.fixture
def stack(corpus_generator, matching_engine, streams, oracle):
    """Two mirrored museum sources + one auction source, health-aware."""
    sim = Simulator(seed=5)
    nodes = ["node-m1", "node-m2", "node-a1"]
    health = NodeHealth(sim, nodes, sim.rng.spawn("h"), enabled=False)
    load = LoadModel(nodes, sim.rng.spawn("l"), LoadSpec(capacity=10.0))
    registry = SourceRegistry()
    museum = DomainSpec(name="museum", topic_prior={"folk-jewelry": 1.0})
    auction = DomainSpec(name="auction", topic_prior={"auction-market": 1.0})
    shared = corpus_generator.generate(museum, 25)
    for source_id in ("m1", "m2"):
        registry.register(make_source(
            source_id, corpus_generator, matching_engine, streams,
            domain_spec=museum, health=health, load=load, items=shared,
        ))
    registry.register(make_source(
        "a1", corpus_generator, matching_engine, streams,
        domain_spec=auction, n_items=15, health=health, load=load,
    ))
    return sim, health, load, registry, oracle


def make_context(sim, registry, oracle, config, latency=None, seed=11):
    board = BreakerBoard(
        config.breaker, now_fn=lambda: sim.now, trace=sim.trace
    )
    runtime = ResilienceRuntime(
        config, registry=registry, breakers=board,
        rng=np.random.default_rng(seed), trace=sim.trace,
        now_fn=lambda: sim.now,
    )
    return ExecutionContext(
        registry=registry, oracle=oracle, now=sim.now,
        consumer_id="iris", latency=latency, resilience=runtime,
    )


def museum_plan(topic_space, vocabulary, source_id="m1", k=8, **query_kwargs):
    query = make_topic_query(topic_space, vocabulary, "folk-jewelry", k=k,
                             **query_kwargs)
    plan = standard_plan([Retrieve(query.restricted_to("museum"), source_id)], k=k)
    return query, plan


class TestFailover:
    def test_down_primary_fails_over_to_mirror(
        self, stack, topic_space, vocabulary
    ):
        sim, health, load, registry, oracle = stack
        health.set_state("node-m1", False)
        context = make_context(
            sim, registry, oracle, ResilienceConfig.default_enabled()
        )
        query, plan = museum_plan(topic_space, vocabulary)
        result = QueryExecutor(context).execute(plan, query)
        assert len(result.results) > 0
        assert result.sources_used == ["m2"]
        assert result.resilience_events.get("failovers", 0) >= 1
        assert result.resilience_events.get("leaf_recoveries", 0) == 1
        assert [h.winner for h in result.hedge_outcomes] == ["m2"]

    def test_breaker_short_circuits_after_repeated_failures(
        self, stack, topic_space, vocabulary
    ):
        sim, health, load, registry, oracle = stack
        health.set_state("node-m1", False)
        config = ResilienceConfig(
            enabled=True,
            retry=RetryPolicy(max_attempts=1),
            breaker=BreakerPolicy(failure_threshold=1, recovery_time=1e9),
        )
        context = make_context(sim, registry, oracle, config)
        query, plan = museum_plan(topic_space, vocabulary)
        executor = QueryExecutor(context)
        first = executor.execute(plan, query)  # trips m1's breaker
        assert "m1" in first.declined_sources
        second = executor.execute(plan, query)
        # m1 was never even asked the second time round.
        assert all(a.source_id != "m1" for a in second.answers)
        assert second.resilience_events.get("breaker_short_circuits", 0) == 1
        assert second.sources_used == ["m2"]

    def test_mid_query_outage_degrades_to_partial_results(
        self, stack, topic_space, vocabulary
    ):
        sim, health, load, registry, oracle = stack
        health.set_state("node-a1", False)  # auction has no mirror
        context = make_context(
            sim, registry, oracle, ResilienceConfig.default_enabled()
        )
        query = make_topic_query(topic_space, vocabulary, "folk-jewelry", k=10)
        plan = standard_plan(
            [
                Retrieve(query.restricted_to("museum"), "m1"),
                Retrieve(query.restricted_to("auction"), "a1"),
            ],
            k=10,
        )
        result = QueryExecutor(context).execute(plan, query)
        assert len(result.results) > 0  # museum still answered
        assert result.declined_sources == ["a1"]
        assert result.resilience_events.get("leaf_failures", 0) >= 1
        assert all(m.item.domain == "museum" for m in result.results)


class TestRetryBudget:
    def test_retries_stop_at_policy_deadline(
        self, stack, topic_space, vocabulary
    ):
        sim, health, load, registry, oracle = stack
        health.set_state("node-a1", False)
        config = ResilienceConfig(
            enabled=True,
            retry=RetryPolicy(max_attempts=10, base_delay=1.0, multiplier=1.0,
                              jitter=0.0, deadline=2.5),
        )
        context = make_context(sim, registry, oracle, config)
        query = make_topic_query(topic_space, vocabulary, "folk-jewelry", k=5)
        plan = standard_plan([Retrieve(query.restricted_to("auction"), "a1")], k=5)
        result = QueryExecutor(context).execute(plan, query)
        # initial try + 2 retries fit in the 2.5 budget; the 3rd would not
        assert len(result.answers) == 3
        assert result.resilience_events.get("retries", 0) == 2
        assert result.resilience_events.get("deadline_stops", 0) == 1
        assert len(result.results) == 0

    def test_query_requirement_bounds_retries_when_no_policy_deadline(
        self, stack, topic_space, vocabulary
    ):
        from repro.qos import QoSRequirement

        sim, health, load, registry, oracle = stack
        health.set_state("node-m1", False)
        config = ResilienceConfig(
            enabled=True,
            retry=RetryPolicy(max_attempts=10, base_delay=1.0, multiplier=1.0,
                              jitter=0.0, deadline=None),
        )
        context = make_context(sim, registry, oracle, config)
        query, plan = museum_plan(
            topic_space, vocabulary,
            requirement=QoSRequirement(max_response_time=0.5),
        )
        result = QueryExecutor(context).execute(plan, query)
        # No retry fits a 0.5 budget, but the instant failover does.
        assert result.resilience_events.get("retries", 0) == 0
        assert result.resilience_events.get("deadline_stops", 0) == 1
        assert result.sources_used == ["m2"]

    def test_retry_eventually_recovers_flaky_source(
        self, stack, topic_space, vocabulary
    ):
        sim, health, load, registry, oracle = stack
        # Overload a1's node so it declines most requests but not all.
        load.begin("node-a1", 10.0)  # utilisation 1.0 -> ~50% declines
        config = ResilienceConfig(
            enabled=True,
            retry=RetryPolicy(max_attempts=8, base_delay=0.01, jitter=0.0),
        )
        context = make_context(sim, registry, oracle, config, seed=2)
        query = make_topic_query(topic_space, vocabulary, "folk-jewelry", k=5)
        plan = standard_plan([Retrieve(query.restricted_to("auction"), "a1")], k=5)
        result = QueryExecutor(context).execute(plan, query)
        assert len(result.results) > 0
        assert result.sources_used == ["a1"]
        assert result.resilience_events.get("retries", 0) >= 1


class TestHedging:
    def test_hedged_leaf_never_double_counts_items(
        self, stack, topic_space, vocabulary
    ):
        sim, health, load, registry, oracle = stack
        config = ResilienceConfig(
            enabled=True,
            retry=RetryPolicy(max_attempts=1),
            hedge=HedgePolicy(threshold=0.01, max_hedges=1),
        )
        context = make_context(sim, registry, oracle, config)
        query, plan = museum_plan(topic_space, vocabulary, k=25)
        result = QueryExecutor(context).execute(plan, query)
        ids = [m.item.item_id for m in result.results]
        assert len(ids) == len(set(ids))
        assert result.resilience_events.get("hedges", 0) == 1
        assert {a.source_id for a in result.answers} == {"m1", "m2"}
        assert {m.source_id for m in result.results} <= {"m1", "m2"}

    def test_hedge_win_cuts_response_time(self, stack, topic_space, vocabulary):
        sim, health, load, registry, oracle = stack
        # m1 sits behind a slow link; its mirror m2 is local.
        latency = {"m1": 0.5, "m2": 0.0, "a1": 0.0}.__getitem__
        config = ResilienceConfig(
            enabled=True,
            retry=RetryPolicy(max_attempts=1),
            hedge=HedgePolicy(threshold=0.5, max_hedges=1),
        )
        context = make_context(sim, registry, oracle, config, latency=latency)
        query, plan = museum_plan(topic_space, vocabulary)
        result = QueryExecutor(context).execute(plan, query)
        slow_context = make_context(
            sim, registry, oracle,
            ResilienceConfig(enabled=True, retry=RetryPolicy(max_attempts=1),
                             hedge=HedgePolicy(threshold=0.5, max_hedges=0)),
            latency=latency,
        )
        unhedged = QueryExecutor(slow_context).execute(plan, query)
        assert result.resilience_events.get("hedge_wins", 0) == 1
        assert result.response_time < unhedged.response_time
        assert any(h.hedge_won for h in result.hedge_outcomes)


class TestDeterministicRecovery:
    def _run_scenario(self, seed=29):
        reset_item_ids()
        reset_query_ids()
        reset_message_ids()
        agora = build_agora(seed=seed, n_sources=6, items_per_source=8,
                            calibration_pairs=0)
        script = FaultScript()
        for source_id in sorted(agora.sources)[:3]:
            node = agora.registry.source(source_id).node_id
            script.outage(node, start=1.0, duration=50.0)
        agora.inject_faults(script)
        agora.run(until=5.0)
        profile = UserProfile(
            user_id="iris",
            interests=agora.topic_space.basis("folk-jewelry", 0.9),
        )
        consumer = Consumer(
            agora, profile,
            resilience=ResilienceConfig(
                enabled=True,
                retry=RetryPolicy(max_attempts=3, jitter=0.5),
                hedge=HedgePolicy(threshold=0.2, max_hedges=1),
            ),
        )
        workload = QueryWorkloadGenerator(
            agora.topic_space, agora.vocabulary, agora.sim.rng.spawn("det"),
        )
        trail = []
        for index in range(4):
            topic = agora.topic_space.names[index % 5]
            outcome = consumer.ask(workload.topic_query(topic, k=6))
            trail.append((
                sorted(item.item_id for item in outcome.results.items()),
                [round(m.probability, 12) for m in outcome.results],
                dict(outcome.resilience_events),
                round(outcome.response_time, 12),
            ))
        counters = {
            name: value
            for name, value in agora.sim.trace.counters().items()
            if name.startswith("resilience.") or name.startswith("faults.")
        }
        return trail, counters

    def test_same_seed_same_faults_replays_bit_for_bit(self):
        first = self._run_scenario(seed=29)
        second = self._run_scenario(seed=29)
        assert first == second

    def test_counters_mirrored_into_trace(self, stack, topic_space, vocabulary):
        sim, health, load, registry, oracle = stack
        health.set_state("node-m1", False)
        context = make_context(
            sim, registry, oracle, ResilienceConfig.default_enabled()
        )
        query, plan = museum_plan(topic_space, vocabulary)
        result = QueryExecutor(context).execute(plan, query)
        assert result.resilience_events  # something happened
        for name, value in result.resilience_events.items():
            assert sim.trace.counter(f"resilience.{name}") >= value
