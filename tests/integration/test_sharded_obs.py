"""Cross-process round trip: two real worker processes, one merged trace.

The acceptance bar for shard-ready observability: the sharded demo —
a coordinator plus >= 2 spawned worker processes, each continuing the
coordinator's trace through an attached ``TraceContext`` — run twice
with the same seed produces byte-identical merged span/metric JSONL
and identical merged-manifest digests.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.obs import load_manifest, load_spans_jsonl, shard_of

REPO_ROOT = Path(__file__).resolve().parents[2]
DEMO = REPO_ROOT / "examples" / "sharded_obs_demo.py"

MERGED_ARTIFACTS = ("manifest.json", "merged_spans.jsonl",
                    "merged_metrics.jsonl", "profile.folded", "slo.json")


def run_demo(out_dir, seed=11, shards=2, ops=25):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env["PYTHONHASHSEED"] = "0"
    subprocess.run(
        [sys.executable, str(DEMO), "--seed", str(seed),
         "--shards", str(shards), "--ops", str(ops), "--out", str(out_dir)],
        check=True, env=env, timeout=120,
    )
    return Path(out_dir)


@pytest.mark.slow
class TestShardedRoundTrip:
    @pytest.fixture(scope="class")
    def runs(self, tmp_path_factory):
        base = tmp_path_factory.mktemp("sharded")
        first = run_demo(base / "a")
        second = run_demo(base / "b")
        return first, second

    def test_merged_artifacts_are_byte_identical(self, runs):
        first, second = runs
        for artifact in MERGED_ARTIFACTS:
            left = (first / artifact).read_bytes()
            right = (second / artifact).read_bytes()
            assert left == right, f"{artifact} differs between same-seed runs"

    def test_merged_manifest_digests_match(self, runs):
        first, second = runs
        left = load_manifest(first / "manifest.json")
        right = load_manifest(second / "manifest.json")
        assert left.digest() == right.digest()
        assert sorted(left.shards) == ["0", "1", "2"]

    def test_worker_spans_continue_the_coordinator_trace(self, runs):
        first, _ = runs
        spans = load_spans_jsonl(first / "merged_spans.jsonl")
        by_shard = {}
        for span in spans:
            by_shard.setdefault(shard_of(span.span_id), []).append(span)
        assert sorted(by_shard) == [0, 1, 2]
        ids = {span.span_id for span in spans}
        assert len(ids) == len(spans)  # collision-free across shards
        # Every worker shard's root span parents onto a coordinator span.
        coordinator_ids = {s.span_id for s in by_shard[0]}
        for shard_id in (1, 2):
            roots = [s for s in by_shard[shard_id]
                     if s.parent_id not in {x.span_id for x in by_shard[shard_id]}]
            assert roots
            for root in roots:
                assert root.parent_id in coordinator_ids

    def test_worker_snapshots_carry_the_shared_trace_id(self, runs):
        first, _ = runs
        trace_ids = set()
        for shard_id in (1, 2):
            payload = json.loads(
                (first / f"shard-{shard_id}" / "shard.json").read_text()
            )
            assert payload["shard_id"] == shard_id
            trace_ids.add(payload["trace_id"])
        assert len(trace_ids) == 1
        assert trace_ids.pop()  # non-empty: derived from the seed

    def test_different_seed_drifts(self, runs, tmp_path):
        first, _ = runs
        other = run_demo(tmp_path / "c", seed=12)
        left = load_manifest(first / "manifest.json")
        right = load_manifest(other / "manifest.json")
        assert left.digest() != right.digest()
