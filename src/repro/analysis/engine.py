"""The analysis engine: walk files, run rules, apply suppressions.

The engine is deterministic by construction — files are visited in
sorted order, violations are sorted by location, and no state leaks
between files — so its own output is stable run-to-run, which the tests
rely on.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.analysis.rules import DEFAULT_RULES, Rule, RuleContext
from repro.analysis.suppressions import parse_suppressions
from repro.analysis.violations import Suppression, Violation

_MODULE_OVERRIDE_PREFIX = "# module:"

#: rule id for "this suppression silences nothing" (mirrors unused-noqa)
UNUSED_SUPPRESSION_RULE_ID = "AGR000"


def apply_suppressions(
    raw: Sequence[Violation],
    suppressions: Sequence[Suppression],
    executed_rule_ids: Optional[Set[str]] = None,
    flag_unused: bool = False,
) -> Tuple[List[Violation], List[Violation], List[Suppression]]:
    """Match violations against inline suppressions.

    Returns ``(active, silenced, marked)`` where ``marked`` carries the
    ``used`` flag per suppression.  With ``flag_unused`` set, an unused
    suppression raises an :data:`UNUSED_SUPPRESSION_RULE_ID` violation —
    but only when *every* rule id it lists belongs to
    ``executed_rule_ids``: a run that never executes AGR101 must not
    declare an ``ignore[AGR101]`` stale.  A suppression listing
    ``AGR000`` itself silences its own unused-report (the escape hatch
    for intentionally speculative suppressions).
    """
    active: List[Violation] = []
    silenced: List[Violation] = []
    used_keys: Set[Tuple[int, Tuple[str, ...]]] = set()
    for violation in sorted(raw):
        covering = next((s for s in suppressions if s.covers(violation)), None)
        if covering is None:
            active.append(violation)
        else:
            silenced.append(violation)
            used_keys.add((covering.line, covering.rule_ids))
    if flag_unused:
        executed = set(executed_rule_ids or ())
        executed.add(UNUSED_SUPPRESSION_RULE_ID)
        for suppression in suppressions:
            if (suppression.line, suppression.rule_ids) in used_keys:
                continue
            if not all(rid in executed for rid in suppression.rule_ids):
                continue
            listed = ",".join(suppression.rule_ids)
            violation = Violation(
                path=suppression.path,
                line=suppression.line,
                col=0,
                rule_id=UNUSED_SUPPRESSION_RULE_ID,
                message=(
                    f"unused suppression [{listed}]: no violation on this "
                    "line matches it; remove the stale comment"
                ),
            )
            if UNUSED_SUPPRESSION_RULE_ID in suppression.rule_ids:
                silenced.append(violation)
                used_keys.add((suppression.line, suppression.rule_ids))
            else:
                active.append(violation)
    marked = [
        Suppression(
            path=s.path,
            line=s.line,
            rule_ids=s.rule_ids,
            reason=s.reason,
            used=(s.line, s.rule_ids) in used_keys,
        )
        for s in suppressions
    ]
    return sorted(active), sorted(silenced), marked


@dataclass
class FileReport:
    """Outcome of analysing one file."""

    path: str
    module: Optional[str]
    violations: List[Violation] = field(default_factory=list)
    suppressed: List[Violation] = field(default_factory=list)
    suppressions: List[Suppression] = field(default_factory=list)
    parse_error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """Whether the file is clean (no active violations, parseable)."""
        return not self.violations and self.parse_error is None


@dataclass
class AnalysisReport:
    """Aggregate outcome over a set of files."""

    files: List[FileReport] = field(default_factory=list)

    @property
    def violations(self) -> List[Violation]:
        """All active (non-suppressed) violations, sorted by location."""
        found = [v for report in self.files for v in report.violations]
        return sorted(found)

    @property
    def suppressed(self) -> List[Violation]:
        """All violations silenced by an inline suppression."""
        found = [v for report in self.files for v in report.suppressed]
        return sorted(found)

    @property
    def suppressions(self) -> List[Suppression]:
        """Every suppression comment found, used or not."""
        return [s for report in self.files for s in report.suppressions]

    @property
    def parse_errors(self) -> List[Tuple[str, str]]:
        """(path, error) pairs for files that failed to parse."""
        return [
            (report.path, report.parse_error)
            for report in self.files
            if report.parse_error is not None
        ]

    @property
    def ok(self) -> bool:
        """Whether the whole run is clean."""
        return all(report.ok for report in self.files)


def module_name_for(path: Union[str, Path]) -> Optional[str]:
    """Derive the dotted module name of a file under a ``src`` layout.

    ``.../src/repro/sim/kernel.py`` → ``repro.sim.kernel``;
    ``__init__.py`` maps to its package.  The ``benchmarks`` and
    ``examples`` trees are anchored the same way so the lint sweep
    covers them.  Returns ``None`` for files outside every known root.
    """
    parts = Path(path).with_suffix("").parts
    for anchor in ("repro", "benchmarks", "examples"):
        if anchor in parts:
            index = parts.index(anchor)
            dotted = list(parts[index:])
            if dotted[-1] == "__init__":
                dotted.pop()
            return ".".join(dotted)
    return None


def _module_override(source: str) -> Optional[str]:
    for line in source.splitlines()[:5]:
        stripped = line.strip()
        if stripped.startswith(_MODULE_OVERRIDE_PREFIX):
            return stripped[len(_MODULE_OVERRIDE_PREFIX):].strip() or None
    return None


class AnalysisEngine:
    """Runs a rule set over source files and applies suppressions."""

    def __init__(
        self,
        rules: Optional[Sequence[Rule]] = None,
        flag_unused_suppressions: bool = True,
    ):
        self.rules: Tuple[Rule, ...] = tuple(rules if rules is not None else DEFAULT_RULES)
        #: report stale ``# agora: ignore[...]`` comments as AGR000
        self.flag_unused_suppressions = flag_unused_suppressions

    # ------------------------------------------------------------------
    def check_source(
        self,
        source: str,
        path: str = "<string>",
        module: Optional[str] = None,
    ) -> FileReport:
        """Analyse one in-memory module.

        A leading ``# module: dotted.name`` comment overrides ``module`` —
        this is how fixture files declare where they pretend to live.
        """
        override = _module_override(source)
        if override is not None:
            module = override
        try:
            tree = ast.parse(source)
        except SyntaxError as error:
            return FileReport(
                path=path,
                module=module,
                parse_error=f"line {error.lineno}: {error.msg}",
            )
        ctx = RuleContext(path=path, source=source, tree=tree, module=module)
        raw: List[Violation] = []
        for rule in self.rules:
            raw.extend(rule.check(ctx))
        suppressions = parse_suppressions(source, path)
        active, silenced, marked = apply_suppressions(
            raw,
            suppressions,
            executed_rule_ids={rule.rule_id for rule in self.rules},
            flag_unused=self.flag_unused_suppressions,
        )
        return FileReport(
            path=path,
            module=module,
            violations=active,
            suppressed=silenced,
            suppressions=marked,
        )

    def check_file(self, path: Union[str, Path]) -> FileReport:
        """Analyse one file on disk."""
        file_path = Path(path)
        source = file_path.read_text(encoding="utf-8")
        return self.check_source(
            source, path=str(file_path), module=module_name_for(file_path)
        )

    def check_paths(self, paths: Iterable[Union[str, Path]]) -> AnalysisReport:
        """Analyse files and directories (recursing into ``*.py``)."""
        report = AnalysisReport()
        for path in paths:
            target = Path(path)
            if target.is_dir():
                for file_path in sorted(target.rglob("*.py")):
                    report.files.append(self.check_file(file_path))
            else:
                report.files.append(self.check_file(target))
        return report
