"""Tests for profile learning."""

import numpy as np
import pytest

from repro.data import InformationItem
from repro.personalization import InteractionEvent, ProfileLearner


def _item(latent, item_id="i"):
    return InformationItem(item_id=item_id, domain="d", latent=np.asarray(latent, float))


def _learner(n_topics=4):
    # Tests use the true latent as the concept estimate.
    return ProfileLearner(n_topics, concept_fn=lambda item: item.latent)


def _event(latent, action="click", user="iris", mode="query"):
    return InteractionEvent(user_id=user, item=_item(latent), action=action, mode=mode)


class TestEvents:
    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError):
            _event([1, 0, 0, 0], action="teleport")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            InteractionEvent("iris", _item([1, 0]), "click", mode="dream")


class TestLearning:
    def test_unseen_user_uniform(self):
        learner = _learner()
        np.testing.assert_allclose(learner.interests("nobody"), 0.25)

    def test_interests_track_clicks(self):
        learner = _learner()
        for __ in range(30):
            learner.observe(_event([1.0, 0.0, 0.0, 0.0]))
        interests = learner.interests("iris")
        assert np.argmax(interests) == 0
        assert interests[0] > 0.7

    def test_interests_normalised(self):
        learner = _learner()
        for __ in range(10):
            learner.observe(_event([0.5, 0.5, 0.0, 0.0], action="save"))
        assert learner.interests("iris").sum() == pytest.approx(1.0)

    def test_strong_actions_move_faster(self):
        clicks = _learner()
        saves = _learner()
        for __ in range(5):
            clicks.observe(_event([1.0, 0.0, 0.0, 0.0], action="click"))
            saves.observe(_event([1.0, 0.0, 0.0, 0.0], action="annotate"))
        assert saves.interests("iris")[0] > clicks.interests("iris")[0]

    def test_skip_signals_disinterest(self):
        learner = _learner()
        for __ in range(10):
            learner.observe(_event([1.0, 0.0, 0.0, 0.0], action="click"))
        peak_before = learner.interests("iris")[0]
        for __ in range(10):
            learner.observe(_event([1.0, 0.0, 0.0, 0.0], action="skip"))
        assert learner.interests("iris")[0] < peak_before

    def test_interest_drift(self):
        """A user whose taste changes is eventually re-learned."""
        learner = ProfileLearner(4, concept_fn=lambda item: item.latent,
                                 learning_rate=0.3, decay=0.9)
        for __ in range(30):
            learner.observe(_event([1.0, 0.0, 0.0, 0.0]))
        for __ in range(60):
            learner.observe(_event([0.0, 0.0, 0.0, 1.0]))
        assert np.argmax(learner.interests("iris")) == 3

    def test_users_independent(self):
        learner = _learner()
        learner.observe(_event([1.0, 0.0, 0.0, 0.0], user="iris"))
        learner.observe(_event([0.0, 0.0, 0.0, 1.0], user="jason"))
        assert np.argmax(learner.interests("iris")) == 0
        assert np.argmax(learner.interests("jason")) == 3

    def test_concept_dimension_checked(self):
        learner = ProfileLearner(4, concept_fn=lambda item: np.ones(7))
        with pytest.raises(ValueError):
            learner.observe(_event([1.0, 0.0, 0.0, 0.0]))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ProfileLearner(0, concept_fn=lambda i: i.latent)
        with pytest.raises(ValueError):
            ProfileLearner(4, concept_fn=lambda i: i.latent, learning_rate=0.0)
        with pytest.raises(ValueError):
            ProfileLearner(4, concept_fn=lambda i: i.latent, decay=1.5)


class TestProfileMaterialisation:
    def test_profile_carries_confidence(self):
        learner = _learner()
        for __ in range(7):
            learner.observe(_event([1.0, 0.0, 0.0, 0.0]))
        profile = learner.profile("iris")
        assert profile.confidence == 7.0

    def test_mode_preference_learned(self):
        learner = _learner()
        for __ in range(20):
            learner.observe(_event([1.0, 0.0, 0.0, 0.0], mode="browse"))
        profile = learner.profile("iris")
        assert max(profile.mode_preference, key=profile.mode_preference.get) == "browse"

    def test_base_profile_preserved(self):
        from repro.uncertainty import risk_averse
        from repro.personalization import UserProfile

        base = UserProfile(
            user_id="template", interests=np.ones(4),
            risk=risk_averse(), negotiation_style="boulware",
        )
        learner = _learner()
        learner.observe(_event([1.0, 0.0, 0.0, 0.0]))
        profile = learner.profile("iris", base=base)
        assert profile.user_id == "iris"
        assert profile.risk.name == "averse"
        assert profile.negotiation_style == "boulware"
        assert np.argmax(profile.interests) == 0
