"""The resilience runtime handed to the executor.

One :class:`ResilienceRuntime` bundles a consumer's policies with the
agora-wide breaker board, the registry (for alternates), the seeded jitter
stream, and the trace recorder the counters land in.  The executor calls
it at every ``Retrieve`` leaf; everything else in the system stays unaware
of resilience.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, List, Optional

import numpy as np

from repro.obs.metrics import MetricsRegistry
from repro.resilience.breaker import BreakerBoard
from repro.resilience.hedging import HedgeSelector
from repro.resilience.policy import ResilienceConfig
from repro.sim.trace import TraceRecorder

if TYPE_CHECKING:  # avoid load-time cycles through repro.query / repro.sources
    from repro.query.model import Subquery
    from repro.sources.registry import SourceRegistry


class ResilienceRuntime:
    """Live resilience state shared by one consumer's executions."""

    def __init__(
        self,
        config: ResilienceConfig,
        registry: "SourceRegistry",
        breakers: Optional[BreakerBoard] = None,
        rng: Optional[np.random.Generator] = None,
        trace: Optional[TraceRecorder] = None,
        now_fn: Callable[[], float] = lambda: 0.0,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.config = config
        self.breakers = (
            breakers
            if breakers is not None
            else BreakerBoard(config.breaker, now_fn=now_fn, trace=trace)
        )
        self.selector = HedgeSelector(registry, self.breakers)
        self._rng = rng if rng is not None else np.random.default_rng(0)
        # Counters live in the metrics registry (the observability layer's
        # single store); an explicitly passed registry wins, otherwise the
        # trace recorder's backing registry is reused so `trace.counter()`
        # reads keep seeing the same numbers.
        self._metrics = (
            metrics
            if metrics is not None
            else (trace.metrics if trace is not None else None)
        )
        self._now = now_fn

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        """Whether the executor should take the resilient path."""
        return self.config.enabled

    def count(self, name: str, amount: float = 1.0) -> None:
        """Bump a ``resilience.*`` counter in the registry (no-op unmetered)."""
        if self._metrics is not None:
            self._metrics.counter(f"resilience.{name}").inc(amount)

    # -- breaker facade -------------------------------------------------
    def allow(self, source_id: str) -> bool:
        """Breaker gate for ``source_id``."""
        return self.breakers.allow(source_id)

    def record_outcome(self, source_id: str, ok: bool) -> None:
        """Feed an execution-time success/decline into the breaker."""
        if ok:
            self.breakers.record_success(source_id)
        else:
            self.breakers.record_failure(source_id)

    # -- retry facade ---------------------------------------------------
    def backoff_delay(self, attempt: int) -> float:
        """Jittered backoff before retry ``attempt`` (consumes the stream)."""
        return self.config.retry.backoff_delay(attempt, self._rng)

    def deadline_for(self, subquery: "Subquery") -> Optional[float]:
        """Leaf time budget: policy deadline, else the query's QoS bound."""
        if self.config.retry.deadline is not None:
            return self.config.retry.deadline
        return subquery.parent.requirement.max_response_time

    def within_deadline(self, subquery: "Subquery", elapsed: float) -> bool:
        """Whether ``elapsed`` still fits the leaf's time budget."""
        deadline = self.deadline_for(subquery)
        return deadline is None or elapsed <= deadline

    # -- hedging facade -------------------------------------------------
    def alternates(
        self, subquery: "Subquery", exclude: Iterable[str] = ()
    ) -> List[str]:
        """Preference-ordered alternates for a leaf (breaker-filtered)."""
        return self.selector.alternates(subquery, exclude)
