"""F2 (§3-§4): utility vs QoS-premium crossover (figure series).

Regenerates the F2 figure: sweep a multiplier on the risk-priced premium
and report the consumer's expected surplus and the provider's profit per
contract, for a low-risk and a high-risk service.  Expected shape:
consumer surplus falls monotonically in the premium multiplier; provider
profit rises; the multiplier where the consumer is better off *without*
the SLA (crossover against the uninsured surplus) appears at a lower
multiplier for low-risk services — exactly why premiums must be
risk-priced, not flat.
"""

import numpy as np
import pytest

from repro.experiments import ExperimentResult
from repro.qos import QoSRequirement, RiskPricedPremium

MULTIPLIERS = [0.0, 0.5, 1.0, 1.5, 2.0, 3.0]
RISK_LEVELS = {"low-risk": 0.1, "high-risk": 0.5}
VALUE = 3.0
REQUIREMENT = QoSRequirement(min_completeness=0.8)


def _surplus(breach_probability, multiplier, n=4000, seed=71):
    """Monte-Carlo consumer surplus and provider profit per contract."""
    rng = np.random.default_rng(seed)
    base_policy = RiskPricedPremium(margin=1.2, loading=0.25)
    quote = base_policy.quote(REQUIREMENT, 1.0, breach_probability)
    premium = quote.premium * multiplier
    consumer, provider, uninsured = [], [], []
    for __ in range(n):
        breached = rng.random() < breach_probability
        value = 0.0 if breached else VALUE
        compensation = quote.compensation if breached else 0.0
        consumer.append(value - quote.base_price - premium + compensation)
        provider.append(quote.base_price + premium - compensation - 1.0)
        uninsured.append(value - quote.base_price)
    return (float(np.mean(consumer)), float(np.mean(provider)),
            float(np.mean(uninsured)))


def run_f2() -> ExperimentResult:
    result = ExperimentResult(
        "F2", "Consumer surplus vs premium multiplier (figure series)",
        ["risk", "multiplier", "consumer_surplus", "provider_profit",
         "uninsured_surplus"],
    )
    for risk_name, breach_probability in RISK_LEVELS.items():
        for multiplier in MULTIPLIERS:
            consumer, provider, uninsured = _surplus(
                breach_probability, multiplier,
            )
            result.add_row(risk_name, multiplier, consumer, provider, uninsured)
    result.add_note(
        "expected shape: surplus falls / profit rises with the multiplier; "
        "insurance stays attractive longer for the high-risk service"
    )
    return result


@pytest.mark.benchmark(group="F2")
def test_f2_premium_sweep(benchmark):
    result = benchmark.pedantic(run_f2, rounds=1, iterations=1)
    result.print()
    rows = {(row[0], row[1]): row for row in result.rows}
    # Monotone: consumer surplus falls, provider profit rises.
    for risk in RISK_LEVELS:
        surpluses = [rows[(risk, m)][2] for m in MULTIPLIERS]
        profits = [rows[(risk, m)][3] for m in MULTIPLIERS]
        assert all(a >= b for a, b in zip(surpluses, surpluses[1:]))
        assert all(a <= b for a, b in zip(profits, profits[1:]))

    def crossover(risk):
        """First multiplier where the SLA stops beating going uninsured."""
        for multiplier in MULTIPLIERS:
            row = rows[(risk, multiplier)]
            if row[2] < row[4]:
                return multiplier
        return float("inf")

    # The high-risk service tolerates a larger markup before the SLA
    # stops paying off.
    assert crossover("high-risk") >= crossover("low-risk")


if __name__ == "__main__":
    run_f2().print()
