"""Uncertain result sets.

Query answers in the agora carry a calibrated match probability per item
and support possible-worlds semantics: a result set denotes a distribution
over "true" answer sets, one per assignment of match/no-match to each
member.  Expected precision/recall and world sampling follow directly.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Sequence

import numpy as np

from repro.data.items import InformationItem


@dataclass(frozen=True)
class UncertainMatch:
    """One candidate answer with its uncertainty annotations."""

    item: InformationItem
    score: float
    probability: float
    source_id: str = ""

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if not 0.0 <= self.score <= 1.0 + 1e-9:
            raise ValueError("score must be in [0, 1]")


class UncertainResultSet:
    """An ordered collection of uncertain matches.

    Matches are kept sorted by descending probability (ties by score, then
    item id) so top-k is well defined and deterministic.
    """

    def __init__(self, matches: Iterable[UncertainMatch] = ()):  # noqa: D401
        self._matches = sorted(
            matches,
            key=lambda m: (-m.probability, -m.score, m.item.item_id),
        )

    # ------------------------------------------------------------------
    @property
    def matches(self) -> List[UncertainMatch]:
        """The matches in rank order (a copy)."""
        return list(self._matches)

    def items(self) -> List[InformationItem]:
        """Just the items, in rank order."""
        return [match.item for match in self._matches]

    def __len__(self) -> int:
        return len(self._matches)

    def __iter__(self):
        return iter(self._matches)

    def __bool__(self) -> bool:
        return bool(self._matches)

    # ------------------------------------------------------------------
    def top_k(self, k: int) -> "UncertainResultSet":
        """The ``k`` most probable matches."""
        if k < 0:
            raise ValueError("k must be non-negative")
        return UncertainResultSet(self._matches[:k])

    def filter_confidence(self, threshold: float) -> "UncertainResultSet":
        """Keep matches with probability >= ``threshold``."""
        return UncertainResultSet(
            m for m in self._matches if m.probability >= threshold
        )

    def expected_relevant(self) -> float:
        """Expected number of true matches in this set."""
        return sum(m.probability for m in self._matches)

    def expected_precision(self) -> float:
        """Expected fraction of returned items that truly match."""
        if not self._matches:
            return 0.0
        return self.expected_relevant() / len(self._matches)

    def expected_recall(self, total_relevant: float) -> float:
        """Expected fraction of all relevant items returned.

        ``total_relevant`` is the (estimated) number of relevant items in
        the whole agora; values < expected_relevant clip recall at 1.
        """
        if total_relevant <= 0:
            return 1.0 if not self._matches else 0.0
        return min(1.0, self.expected_relevant() / total_relevant)

    def sample_world(self, rng: np.random.Generator) -> List[InformationItem]:
        """Draw one possible world: each match included w.p. probability."""
        return [
            m.item for m in self._matches if rng.random() < m.probability
        ]

    # ------------------------------------------------------------------
    def merge(self, other: "UncertainResultSet") -> "UncertainResultSet":
        """Union of two result sets.

        Duplicate items (same id, e.g. from overlapping sources) keep the
        entry with the higher probability — seeing an item twice never
        lowers confidence in it.
        """
        best: Dict[str, UncertainMatch] = {}
        for match in list(self._matches) + list(other._matches):
            current = best.get(match.item.item_id)
            if current is None or match.probability > current.probability:
                best[match.item.item_id] = match
        return UncertainResultSet(best.values())

    def reweighted(self, factor: float) -> "UncertainResultSet":
        """Scale all probabilities by ``factor`` (clipped to [0, 1])."""
        if factor < 0:
            raise ValueError("factor must be non-negative")
        return UncertainResultSet(
            replace(m, probability=min(1.0, m.probability * factor))
            for m in self._matches
        )


def merge_all(result_sets: Sequence[UncertainResultSet]) -> UncertainResultSet:
    """Merge many result sets (associative, order-independent)."""
    merged = UncertainResultSet()
    for result_set in result_sets:
        merged = merged.merge(result_set)
    return merged
