"""Tests for personal information bases."""

import pytest

from repro.data import Annotation, DomainSpec, make_item_id
from repro.sources import PERSONAL_DOMAIN, PersonalInformationBase

from tests.conftest import make_topic_query


@pytest.fixture
def base(matching_engine, streams):
    return PersonalInformationBase("iris", matching_engine, streams.spawn("pib"))


def _items(corpus_generator, count=5, topic="folk-jewelry"):
    spec = DomainSpec(
        name="museum", topic_prior={topic: 1.0},
        type_mix={"text": 1.0, "media": 0.0, "compound": 0.0},
        concentration=0.3,
    )
    return corpus_generator.generate(spec, count)


class TestSaving:
    def test_save_redomains_copy(self, base, corpus_generator):
        item = _items(corpus_generator, 1)[0]
        base.save(item)
        stored = base.visible_items(0.0)[0]
        assert stored.domain == PERSONAL_DOMAIN
        assert stored.metadata["original_domain"] == "museum"
        assert item.domain == "museum"  # original untouched

    def test_save_all(self, base, corpus_generator):
        base.save_all(_items(corpus_generator, 4))
        assert base.collection_size == 4

    def test_saved_items_immediately_visible(self, base, corpus_generator):
        base.save(_items(corpus_generator, 1)[0], now=10.0)
        assert len(base.visible_items(10.0)) == 1

    def test_annotations_listed(self, base, corpus_generator, topic_space):
        item = _items(corpus_generator, 1)[0]
        base.save(item)
        note = Annotation(
            item_id=make_item_id("annotation"), domain=PERSONAL_DOMAIN,
            latent=item.latent, author_id="iris", target_item_id=item.item_id,
            text="check the clasp",
        )
        base.save(note)
        assert len(base.annotations()) == 1
        assert base.annotations()[0].text == "check the clasp"


class TestAccessControl:
    def test_owner_always_has_access(self, base):
        assert base.has_access("iris")
        ok, __ = base.accepts("iris", now=0.0)
        assert ok

    def test_strangers_denied(self, base):
        ok, reason = base.accepts("stranger", now=0.0)
        assert not ok
        assert reason == "private"

    def test_share_and_revoke(self, base):
        base.share_with("jason")
        assert base.accepts("jason", now=0.0)[0]
        assert base.shared_with() == ["jason"]
        base.revoke("jason")
        assert not base.accepts("jason", now=0.0)[0]

    def test_sharing_with_owner_is_noop(self, base):
        base.share_with("iris")
        assert base.shared_with() == []


class TestQuerying:
    def test_owner_can_query(self, base, corpus_generator, topic_space, vocabulary):
        base.save_all(_items(corpus_generator, 6))
        query = make_topic_query(topic_space, vocabulary, "folk-jewelry", k=3)
        answer = base.answer(query.restricted_to(PERSONAL_DOMAIN), now=0.0,
                             consumer_id="iris")
        assert not answer.declined
        assert answer.size == 3

    def test_shared_user_can_query(self, base, corpus_generator, topic_space, vocabulary):
        base.save_all(_items(corpus_generator, 3))
        base.share_with("jason")
        query = make_topic_query(topic_space, vocabulary, "folk-jewelry", k=3)
        answer = base.answer(query.restricted_to(PERSONAL_DOMAIN), now=0.0,
                             consumer_id="jason")
        assert not answer.declined

    def test_stranger_query_declined(self, base, corpus_generator, topic_space, vocabulary):
        base.save_all(_items(corpus_generator, 3))
        query = make_topic_query(topic_space, vocabulary, "folk-jewelry", k=3)
        answer = base.answer(query.restricted_to(PERSONAL_DOMAIN), now=0.0,
                             consumer_id="stranger")
        assert answer.declined
        assert answer.decline_reason == "private"

    def test_perfect_quality(self, base):
        assert base.quality.coverage == 1.0
        assert base.quality.error_rate == 0.0
        assert base.quality.overpromise == 0.0
