"""Tests for standing queries and the feed service."""

import pytest

from repro.data import DomainSpec
from repro.multimodal import FeedService, StandingQuery
from repro.sim import Simulator
from repro.sources import UpdateStream

from tests.conftest import make_source, make_topic_query


def _jewelry_item(corpus_generator, name="probe"):
    spec = DomainSpec(
        name=name, topic_prior={"folk-jewelry": 1.0},
        type_mix={"text": 1.0, "media": 0.0, "compound": 0.0},
        concentration=0.3,
    )
    return corpus_generator.generate(spec, 1)[0]


class TestStandingQuery:
    def test_needs_comparison_items(self):
        with pytest.raises(ValueError):
            StandingQuery(owner_id="iris", comparison_items=[])

    def test_invalid_threshold(self, corpus_generator):
        item = _jewelry_item(corpus_generator)
        with pytest.raises(ValueError):
            StandingQuery(owner_id="iris", comparison_items=[item], threshold=2.0)

    def test_from_query(self, topic_space, vocabulary):
        query = make_topic_query(topic_space, vocabulary, "folk-jewelry",
                                 issuer_id="iris")
        standing = StandingQuery.from_query(query)
        assert standing.owner_id == "iris"
        assert len(standing.comparison_items) == 1

    def test_domain_targeting(self, corpus_generator):
        item = _jewelry_item(corpus_generator)
        standing = StandingQuery(owner_id="iris", comparison_items=[item],
                                 domains=("auction",))
        assert standing.targets_domain("auction")
        assert not standing.targets_domain("museum")


class TestFeedService:
    def test_matching_item_delivered(self, corpus_generator, matching_engine):
        service = FeedService(matching_engine)
        probe = _jewelry_item(corpus_generator)
        service.register(StandingQuery(
            owner_id="iris", comparison_items=[probe], threshold=0.3,
        ))
        similar = _jewelry_item(corpus_generator, name="incoming")
        service.on_new_item("src1", similar)
        inbox = service.inbox("iris")
        assert len(inbox) == 1
        assert inbox[0].match.source_id == "src1"

    def test_non_matching_item_filtered(self, corpus_generator, matching_engine):
        service = FeedService(matching_engine)
        probe = _jewelry_item(corpus_generator)
        service.register(StandingQuery(
            owner_id="iris", comparison_items=[probe], threshold=0.99,
        ))
        off_topic_spec = DomainSpec(
            name="tourismland", topic_prior={"tourism": 1.0},
            type_mix={"text": 1.0, "media": 0.0, "compound": 0.0},
        )
        item = corpus_generator.generate(off_topic_spec, 1)[0]
        service.on_new_item("src1", item)
        assert service.inbox("iris") == []
        assert service.items_screened == 1

    def test_cancelled_query_inert(self, corpus_generator, matching_engine):
        service = FeedService(matching_engine)
        probe = _jewelry_item(corpus_generator)
        standing_id = service.register(StandingQuery(
            owner_id="iris", comparison_items=[probe], threshold=0.0,
        ))
        service.cancel(standing_id)
        service.on_new_item("src1", _jewelry_item(corpus_generator, "x"))
        assert service.inbox("iris") == []

    def test_drain_clears_inbox(self, corpus_generator, matching_engine):
        service = FeedService(matching_engine)
        probe = _jewelry_item(corpus_generator)
        service.register(StandingQuery(
            owner_id="iris", comparison_items=[probe], threshold=0.0,
        ))
        service.on_new_item("src1", _jewelry_item(corpus_generator, "y"))
        hits = service.drain("iris")
        assert len(hits) == 1
        assert service.inbox("iris") == []

    def test_live_query_modification(self, corpus_generator, matching_engine, topic_space):
        """Adding a comparison object mid-stream widens what matches."""
        service = FeedService(matching_engine)
        probe = _jewelry_item(corpus_generator)
        standing = StandingQuery(owner_id="iris", comparison_items=[probe],
                                 threshold=0.55)
        service.register(standing)
        dance_spec = DomainSpec(
            name="dancefloor", topic_prior={"dance-forms": 1.0},
            type_mix={"text": 1.0, "media": 0.0, "compound": 0.0},
            concentration=0.3,
        )
        dance_item = corpus_generator.generate(dance_spec, 1)[0]
        service.on_new_item("src1", dance_item)
        misses = len(service.inbox("iris"))
        # Iris adds a dance item to the running comparison.
        standing.add_comparison_item(corpus_generator.generate(dance_spec, 1)[0])
        service.on_new_item("src1", corpus_generator.generate(dance_spec, 1)[0])
        assert len(service.inbox("iris")) > misses

    def test_unknown_standing_query(self, matching_engine):
        service = FeedService(matching_engine)
        with pytest.raises(KeyError):
            service.standing_query(999)

    def test_attach_to_stream(self, corpus_generator, matching_engine, streams):
        sim = Simulator(seed=9)
        spec = DomainSpec(
            name="auction", topic_prior={"folk-jewelry": 1.0},
            type_mix={"text": 1.0, "media": 0.0, "compound": 0.0},
            update_rate=0.5, concentration=0.3,
        )
        source = make_source("auc", corpus_generator, matching_engine, streams,
                             domain_spec=spec, n_items=0)
        stream = UpdateStream(sim, source, corpus_generator, spec, streams.spawn("u"))
        service = FeedService(matching_engine, now_fn=lambda: sim.now)
        service.attach(stream)
        probe = _jewelry_item(corpus_generator)
        service.register(StandingQuery(
            owner_id="iris", comparison_items=[probe], threshold=0.3,
        ))
        stream.start()
        sim.run(until=60.0)
        assert service.items_screened == stream.published
        assert len(service.inbox("iris")) > 0
        assert all(hit.delivered_at > 0 for hit in service.inbox("iris"))
