"""Adaptive execution: dynamic re-optimization on source declines.

§2 notes that uncertainty in the processing environment "is partially
overcome through dynamic or parametric query optimization".  The
:class:`AdaptiveExecutor` embodies the dynamic flavour: when a contracted
source declines at execution time (down, overloaded, or blacklisting the
consumer), the affected job is immediately re-assigned to the next-best
fallback source and the plan re-runs, up to a retry budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

from repro.query.algebra import PlanNode, Retrieve, standard_plan
from repro.query.execution import ExecutionContext, ExecutionResult, QueryExecutor
from repro.query.model import Query, Subquery

FallbackFn = Callable[[Subquery], List[str]]


@dataclass(frozen=True)
class Reassignment:
    """One job moved from a declining source to a fallback."""

    job_id: str
    from_source: str
    to_source: str
    attempt: int


@dataclass
class AdaptiveResult:
    """Outcome of an adaptive execution."""

    final: ExecutionResult
    attempts: int
    reassignments: List[Reassignment] = field(default_factory=list)
    abandoned_jobs: List[str] = field(default_factory=list)

    @property
    def recovered(self) -> bool:
        """True when every initially-declined job was eventually served."""
        return not self.final.declined_sources and not self.abandoned_jobs


class AdaptiveExecutor:
    """Executes plans with decline-triggered re-assignment.

    Parameters
    ----------
    context:
        The execution context (shared with the plain executor).
    fallbacks:
        Maps a subquery to an ordered list of candidate source ids
        (best first); typically built from the candidate enumerator.
    max_attempts:
        Total executions allowed (1 = no adaptation).
    """

    def __init__(
        self,
        context: ExecutionContext,
        fallbacks: FallbackFn,
        max_attempts: int = 3,
    ):
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.context = context
        self.fallbacks = fallbacks
        self.max_attempts = max_attempts

    def execute(self, plan: PlanNode, query: Query) -> AdaptiveResult:
        """Run ``plan``; re-assign declined jobs and retry."""
        executor = QueryExecutor(self.context)
        reassignments: List[Reassignment] = []
        tried: Dict[str, set] = {}
        current = plan
        result = executor.execute(current, query)
        attempt = 1
        while result.declined_sources and attempt < self.max_attempts:
            current, moved, abandoned = self._reassign(
                current, query, result, tried, attempt,
            )
            if not moved:
                return AdaptiveResult(
                    final=result, attempts=attempt,
                    reassignments=reassignments, abandoned_jobs=abandoned,
                )
            reassignments.extend(moved)
            result = executor.execute(current, query)
            attempt += 1
        abandoned = sorted(
            {
                answer.subquery_id
                for answer in result.answers
                if answer.declined
            }
        )
        return AdaptiveResult(
            final=result, attempts=attempt,
            reassignments=reassignments, abandoned_jobs=abandoned,
        )

    # ------------------------------------------------------------------
    def _reassign(
        self,
        plan: PlanNode,
        query: Query,
        result: ExecutionResult,
        tried: Dict[str, set],
        attempt: int,
    ) -> Tuple[PlanNode, List[Reassignment], List[str]]:
        declined = set(result.declined_sources)
        moved: List[Reassignment] = []
        abandoned: List[str] = []
        new_leaves: List[Retrieve] = []
        for leaf in plan.leaves():
            job_tried = tried.setdefault(leaf.job_id, set())
            job_tried.add(leaf.source_id)
            if leaf.source_id not in declined:
                new_leaves.append(leaf)
                continue
            replacement = None
            for candidate in self.fallbacks(leaf.subquery):
                if candidate not in job_tried:
                    replacement = candidate
                    break
            if replacement is None:
                abandoned.append(leaf.subquery.subquery_id)
                continue
            job_tried.add(replacement)
            moved.append(Reassignment(
                job_id=leaf.subquery.subquery_id,
                from_source=leaf.source_id,
                to_source=replacement,
                attempt=attempt,
            ))
            new_leaves.append(Retrieve(leaf.subquery, replacement))
        if not new_leaves:
            return plan, [], abandoned
        return standard_plan(new_leaves, k=query.k, tau=query.threshold), moved, abandoned


def fallbacks_from_registry(registry, reputation=None) -> FallbackFn:
    """Standard fallback policy: domain candidates ranked by trust."""

    def fallback(subquery: Subquery) -> List[str]:
        descriptors = registry.candidates_for(subquery.domain)
        if reputation is None:
            return [d.source_id for d in descriptors]
        return [
            source_id
            for source_id, __ in reputation.ranked(
                [d.source_id for d in descriptors]
            )
        ]

    return fallback
