"""Tests for adaptive (decline-triggered) execution."""

import pytest

from repro.data import DomainSpec
from repro.query import (
    AdaptiveExecutor,
    ExecutionContext,
    Retrieve,
    fallbacks_from_registry,
    standard_plan,
)
from repro.sources import SourceRegistry
from repro.trust import ReputationSystem

from tests.conftest import make_source, make_topic_query


@pytest.fixture
def adaptive_setup(corpus_generator, matching_engine, streams, oracle):
    registry = SourceRegistry()
    museum = DomainSpec(name="museum", topic_prior={"folk-jewelry": 1.0})
    for source_id in ("m1", "m2", "m3"):
        registry.register(
            make_source(source_id, corpus_generator, matching_engine, streams,
                        domain_spec=museum)
        )
    context = ExecutionContext(registry=registry, oracle=oracle,
                               consumer_id="iris")
    fallbacks = fallbacks_from_registry(registry)
    return registry, context, fallbacks


class TestAdaptiveExecutor:
    def test_no_declines_no_adaptation(self, adaptive_setup, topic_space, vocabulary):
        registry, context, fallbacks = adaptive_setup
        executor = AdaptiveExecutor(context, fallbacks)
        query = make_topic_query(topic_space, vocabulary, "folk-jewelry", k=5)
        plan = standard_plan([Retrieve(query.restricted_to("museum"), "m1")], k=5)
        result = executor.execute(plan, query)
        assert result.attempts == 1
        assert result.reassignments == []
        assert result.recovered

    def test_declined_job_reassigned(self, adaptive_setup, topic_space, vocabulary):
        registry, context, fallbacks = adaptive_setup
        registry.source("m1").blacklist.ban("iris")
        executor = AdaptiveExecutor(context, fallbacks)
        query = make_topic_query(topic_space, vocabulary, "folk-jewelry", k=5)
        plan = standard_plan([Retrieve(query.restricted_to("museum"), "m1")], k=5)
        result = executor.execute(plan, query)
        assert result.attempts == 2
        assert len(result.reassignments) == 1
        move = result.reassignments[0]
        assert move.from_source == "m1"
        assert move.to_source in ("m2", "m3")
        assert result.recovered
        assert len(result.final.results) > 0

    def test_cascading_declines_until_budget(self, adaptive_setup, topic_space, vocabulary):
        registry, context, fallbacks = adaptive_setup
        for source_id in ("m1", "m2", "m3"):
            registry.source(source_id).blacklist.ban("iris")
        executor = AdaptiveExecutor(context, fallbacks, max_attempts=5)
        query = make_topic_query(topic_space, vocabulary, "folk-jewelry", k=5)
        plan = standard_plan([Retrieve(query.restricted_to("museum"), "m1")], k=5)
        result = executor.execute(plan, query)
        assert not result.recovered
        assert len(result.final.results) == 0
        # It tried every distinct source exactly once.
        tried = {move.to_source for move in result.reassignments} | {"m1"}
        assert tried == {"m1", "m2", "m3"}

    def test_max_attempts_one_disables_adaptation(
        self, adaptive_setup, topic_space, vocabulary
    ):
        registry, context, fallbacks = adaptive_setup
        registry.source("m1").blacklist.ban("iris")
        executor = AdaptiveExecutor(context, fallbacks, max_attempts=1)
        query = make_topic_query(topic_space, vocabulary, "folk-jewelry", k=5)
        plan = standard_plan([Retrieve(query.restricted_to("museum"), "m1")], k=5)
        result = executor.execute(plan, query)
        assert result.attempts == 1
        assert not result.recovered

    def test_healthy_jobs_untouched(self, adaptive_setup, topic_space, vocabulary):
        registry, context, fallbacks = adaptive_setup
        registry.source("m1").blacklist.ban("iris")
        executor = AdaptiveExecutor(context, fallbacks)
        query = make_topic_query(topic_space, vocabulary, "folk-jewelry", k=5)
        sub = query.restricted_to("museum")
        plan = standard_plan([Retrieve(sub, "m1"), Retrieve(sub, "m2")], k=5)
        result = executor.execute(plan, query)
        assert all(move.from_source == "m1" for move in result.reassignments)
        assert result.recovered

    def test_invalid_budget(self, adaptive_setup):
        registry, context, fallbacks = adaptive_setup
        with pytest.raises(ValueError):
            AdaptiveExecutor(context, fallbacks, max_attempts=0)

    def test_reputation_ordered_fallbacks(self, adaptive_setup):
        registry, __, __f = adaptive_setup
        reputation = ReputationSystem()
        for __ in range(5):
            reputation.observe("m3", 1.0)
            reputation.observe("m2", 0.0)
        fallbacks = fallbacks_from_registry(registry, reputation)
        from repro.query.model import Query, QueryKind
        import numpy as np
        from repro.data import TextDocument

        query = Query(
            kind=QueryKind.SIMILARITY,
            reference_item=TextDocument(item_id="r", domain="museum",
                                        latent=np.array([1.0]), terms={"w00001": 1}),
        )
        order = fallbacks(query.restricted_to("museum"))
        assert order[0] == "m3"
        assert order[-1] == "m2"
