"""Personalized result ranking.

"Different users are interested in very different information even when
they interact with the system in exactly the same way" (§5).  The ranker
blends each match's calibrated probability with the user's interest in the
item's (estimated) concept:

    score = (1 − α) · probability + α · interest(item)

α = 0 recovers the generic ranking (the baseline in experiment T6).
"""

from __future__ import annotations

from typing import Callable, List

import numpy as np

from repro.data.items import InformationItem
from repro.personalization.profile import UserProfile
from repro.uncertainty.results import UncertainMatch, UncertainResultSet

ConceptFn = Callable[[InformationItem], np.ndarray]


class PersonalizedRanker:
    """Re-ranks uncertain result sets under a user profile.

    Parameters
    ----------
    profile:
        Whose interests to apply.
    concept_fn:
        Maps items into concept space (normally the ConceptLifter).
    personalization_weight:
        α in the blend; 0 = generic, 1 = pure interest match.
    """

    def __init__(
        self,
        profile: UserProfile,
        concept_fn: ConceptFn,
        personalization_weight: float = 0.4,
    ):
        if not 0.0 <= personalization_weight <= 1.0:
            raise ValueError("personalization_weight must be in [0, 1]")
        self.profile = profile
        self.concept_fn = concept_fn
        self.alpha = personalization_weight

    def item_score(self, match: UncertainMatch) -> float:
        """Blended relevance score for one match."""
        interest = self.profile.interest_in(self.concept_fn(match.item))
        return (1.0 - self.alpha) * match.probability + self.alpha * interest

    def rerank(self, results: UncertainResultSet) -> List[UncertainMatch]:
        """Matches sorted by blended score, best first."""
        scored = [(self.item_score(match), match) for match in results]
        scored.sort(key=lambda pair: (-pair[0], pair[1].item.item_id))
        return [match for __, match in scored]

    def rerank_items(self, results: UncertainResultSet) -> List[InformationItem]:
        """Items of :meth:`rerank`."""
        return [match.item for match in self.rerank(results)]


def generic_ranking(results: UncertainResultSet) -> List[InformationItem]:
    """The non-personalized baseline: order by calibrated probability."""
    return results.items()
