"""Synthetic user populations with ground-truth preferences.

Experiments on personalization/socialization need users whose *true*
tastes are known, so learned profiles and rankings can be scored.  The
generator draws ground-truth profiles; the :class:`ClickModel` simulates
how such a user would behave when shown a ranking (position-biased
examination, relevance-driven clicks), producing the interaction logs the
profile learner consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence


from repro.data.items import InformationItem
from repro.data.topics import TopicSpace
from repro.personalization.learning import InteractionEvent
from repro.personalization.profile import NEGOTIATION_STYLES, UserProfile
from repro.qos.vector import QoSWeights
from repro.sim.rng import ScopedStreams
from repro.uncertainty.risk import risk_averse, risk_neutral, risk_seeking


class UserPopulationGenerator:
    """Draws ground-truth user profiles.

    Interests are peaked Dirichlet draws (users are specialists with some
    breadth); QoS weights, risk attitudes, negotiation styles and mode
    preferences vary across the population.
    """

    def __init__(self, topic_space: TopicSpace, streams: ScopedStreams):
        self.topic_space = topic_space
        self._rng = streams.stream("users")

    def generate_profile(self, user_id: str, concentration: float = 0.25) -> UserProfile:
        """Draw one ground-truth profile."""
        rng = self._rng
        interests = self.topic_space.sample(rng, concentration=concentration)
        qos_weights = QoSWeights(
            response_time=float(rng.uniform(0.5, 2.0)),
            completeness=float(rng.uniform(0.5, 2.0)),
            freshness=float(rng.uniform(0.5, 2.0)),
            correctness=float(rng.uniform(0.5, 2.0)),
            trust=float(rng.uniform(0.5, 2.0)),
        )
        risk_draw = rng.random()
        if risk_draw < 0.4:
            risk = risk_averse(float(rng.uniform(1.0, 8.0)))
        elif risk_draw < 0.8:
            risk = risk_neutral()
        else:
            risk = risk_seeking(float(rng.uniform(1.0, 8.0)))
        style = NEGOTIATION_STYLES[int(rng.integers(len(NEGOTIATION_STYLES)))]
        modes = rng.dirichlet([2.0, 1.0, 1.0])
        return UserProfile(
            user_id=user_id,
            interests=interests,
            qos_weights=qos_weights,
            risk=risk,
            negotiation_style=style,
            mode_preference={
                "query": float(modes[0]),
                "browse": float(modes[1]),
                "feed": float(modes[2]),
            },
            price_sensitivity=float(rng.uniform(0.005, 0.05)),
        )

    def generate_population(self, count: int, prefix: str = "user") -> List[UserProfile]:
        """Draw ``count`` profiles with unique ids."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return [self.generate_profile(f"{prefix}-{i:03d}") for i in range(count)]


@dataclass
class ClickModel:
    """Position-biased click simulation against ground truth.

    Examination probability decays geometrically with rank; an examined
    item is clicked with probability equal to its true graded relevance to
    the user's interests (a standard cascade-free click model).  Saves
    happen on a fraction of clicks on highly relevant items.
    """

    topic_space: TopicSpace
    streams: ScopedStreams
    examination_decay: float = 0.85
    save_threshold: float = 0.85
    save_probability: float = 0.3

    def __post_init__(self) -> None:
        if not 0.0 < self.examination_decay <= 1.0:
            raise ValueError("examination_decay must be in (0, 1]")
        self._rng = self.streams.stream("clicks")

    def true_relevance(self, profile: UserProfile, item: InformationItem) -> float:
        """Ground-truth relevance of an item to the user's taste."""
        return self.topic_space.relevance(profile.interests, item.latent)

    def simulate(
        self,
        profile: UserProfile,
        ranking: Sequence[InformationItem],
        mode: str = "query",
        time: float = 0.0,
    ) -> List[InteractionEvent]:
        """Generate the user's interaction events for one shown ranking."""
        events: List[InteractionEvent] = []
        for position, item in enumerate(ranking):
            if self._rng.random() >= self.examination_decay**position:
                continue  # never examined
            relevance = self.true_relevance(profile, item)
            if self._rng.random() < relevance:
                events.append(InteractionEvent(
                    user_id=profile.user_id, item=item, action="click",
                    mode=mode, time=time,
                ))
                if (
                    relevance >= self.save_threshold
                    and self._rng.random() < self.save_probability
                ):
                    events.append(InteractionEvent(
                        user_id=profile.user_id, item=item, action="save",
                        mode=mode, time=time,
                    ))
            else:
                events.append(InteractionEvent(
                    user_id=profile.user_id, item=item, action="skip",
                    mode=mode, time=time,
                ))
        return events
