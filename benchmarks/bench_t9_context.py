"""T9 (§8 Contextualization): context-conditional vs static profiles.

Regenerates the T9 tables.  Users have genuinely context-dependent tastes
(a work persona and a leisure persona).  We compare ranking quality when
the system uses (a) a static profile (the average persona), (b) the
context-conditional profile with the *true* context, and (c) the
conditional profile driven by the *inferred* context.  A companion table
reports the context inferencer's accuracy.

Expected shape: conditional-with-true-context > static; inferred context
recovers most of the gap.
"""

import numpy as np
import pytest

from repro import Consumer, UserProfile, build_agora
from repro.context import (
    ActivationRule,
    ActivityObservation,
    ConditionalProfile,
    Context,
    ContextInferencer,
    ProfileOverlay,
)
from repro.experiments import ExperimentResult, summarize
from repro.personalization import PersonalizedRanker
from repro.workloads import QueryWorkloadGenerator

WORK_TOPIC = "academic-theses"
LEISURE_TOPIC = "tourism"


def _personal_gain(agora, interests, query, item):
    topical = agora.oracle.relevance(query, item)
    personal = agora.topic_space.relevance(interests, item.latent)
    return 0.5 * topical + 0.5 * personal


def _ndcg(agora, interests, query, items, k=10):
    if not items:
        return 0.0
    gains = [_personal_gain(agora, interests, query, item) for item in items[:k]]
    discounts = 1.0 / np.log2(np.arange(2, len(gains) + 2))
    dcg = float(np.dot(gains, discounts))
    ideal = sorted((_personal_gain(agora, interests, query, item) for item in items),
                   reverse=True)[:k]
    ideal_dcg = float(np.dot(ideal, 1.0 / np.log2(np.arange(2, len(ideal) + 2))))
    return dcg / ideal_dcg if ideal_dcg > 0 else 0.0


def _make_conditional(agora, user_id):
    """A user whose true taste flips between work and leisure personas."""
    space = agora.topic_space
    work_interests = space.basis(WORK_TOPIC, 0.85)
    leisure_interests = space.basis(LEISURE_TOPIC, 0.85)
    static = UserProfile(
        user_id=user_id,
        interests=0.5 * work_interests + 0.5 * leisure_interests,
    )
    conditional = ConditionalProfile(static)
    conditional.add_overlay(
        ActivationRule({"task": {"deep-research", "paper-writing"}}),
        ProfileOverlay(interest_shift=3.0 * work_interests),
    )
    conditional.add_overlay(
        ActivationRule({"task": "leisure"}),
        ProfileOverlay(interest_shift=3.0 * leisure_interests),
    )
    return static, conditional, work_interests, leisure_interests


def _train_inferencer(rng):
    inferencer = ContextInferencer()
    evidence_map = {
        "paper-writing": ActivityObservation("query", "thesis"),
        "leisure": ActivityObservation("browse", "magazine"),
    }
    for task, evidence in evidence_map.items():
        for __ in range(20):
            inferencer.observe(evidence, Context(task=task))
    return inferencer, evidence_map


def run_t9(seed=59, n_users=6, queries_per_context=4) -> ExperimentResult:
    agora = build_agora(seed=seed, n_sources=8, items_per_source=40,
                        calibration_pairs=300)
    workload = QueryWorkloadGenerator(
        agora.topic_space, agora.vocabulary, agora.sim.rng.spawn("t9-q"),
    )
    rng = agora.sim.rng.stream("t9")
    inferencer, evidence_map = _train_inferencer(rng)
    ndcg = {"static": [], "conditional_true_context": [],
            "conditional_inferred_context": []}
    inference_correct, inference_total = 0, 0
    contexts = {
        "paper-writing": Context(task="paper-writing"),
        "leisure": Context(task="leisure"),
    }
    true_interest_topic = {"paper-writing": WORK_TOPIC, "leisure": LEISURE_TOPIC}
    for user_index in range(n_users):
        static, conditional, work_i, leisure_i = _make_conditional(
            agora, f"ctx-user-{user_index}",
        )
        consumer = Consumer(agora, conditional, planner="greedy")
        for task, context in contexts.items():
            true_interests = (
                work_i if task == "paper-writing" else leisure_i
            )
            for __ in range(queries_per_context):
                query = workload.topic_query(true_interest_topic[task], k=12)
                outcome = consumer.ask(query, personalize=False)
                # Static profile ranking.
                static_ranker = PersonalizedRanker(
                    static, consumer.concept_of, personalization_weight=0.6,
                )
                ndcg["static"].append(_ndcg(
                    agora, true_interests, query,
                    static_ranker.rerank_items(outcome.results),
                ))
                # Conditional profile with the true context.
                active = conditional.active_profile(context)
                true_ranker = PersonalizedRanker(
                    active, consumer.concept_of, personalization_weight=0.6,
                )
                ndcg["conditional_true_context"].append(_ndcg(
                    agora, true_interests, query,
                    true_ranker.rerank_items(outcome.results),
                ))
                # Conditional profile with the inferred context.
                inferred = inferencer.infer(evidence_map[task])
                inference_total += 1
                if inferred.task == task:
                    inference_correct += 1
                inferred_ranker = PersonalizedRanker(
                    conditional.active_profile(inferred), consumer.concept_of,
                    personalization_weight=0.6,
                )
                ndcg["conditional_inferred_context"].append(_ndcg(
                    agora, true_interests, query,
                    inferred_ranker.rerank_items(outcome.results),
                ))
    result = ExperimentResult(
        "T9", "Context-conditional vs static profiles (personal NDCG@10)",
        ["profile_mode", "ndcg"],
    )
    for name in ("static", "conditional_true_context",
                 "conditional_inferred_context"):
        result.add_row(name, summarize(ndcg[name]).mean)
    result.add_note(
        "context inference task accuracy: "
        f"{inference_correct / max(inference_total, 1):.2f}"
    )
    return result


@pytest.mark.benchmark(group="T9")
def test_t9_context(benchmark):
    result = benchmark.pedantic(run_t9, rounds=1, iterations=1)
    result.print()
    rows = {row[0]: row for row in result.rows}
    assert rows["conditional_true_context"][1] > rows["static"][1]
    assert rows["conditional_inferred_context"][1] >= rows["static"][1]


if __name__ == "__main__":
    run_t9().print()
