"""Tests for the trace recorder."""

from repro.sim import TraceRecorder


class TestCounters:
    def test_count_and_read(self):
        trace = TraceRecorder()
        trace.count("messages")
        trace.count("messages", 2.0)
        assert trace.counter("messages") == 3.0

    def test_unknown_counter_is_zero(self):
        assert TraceRecorder().counter("nothing") == 0.0

    def test_counters_snapshot_is_copy(self):
        trace = TraceRecorder()
        trace.count("x")
        snapshot = trace.counters()
        snapshot["x"] = 99
        assert trace.counter("x") == 1.0


class TestTimers:
    def test_observe_aggregates(self):
        trace = TraceRecorder()
        for value in (1.0, 3.0, 2.0):
            trace.observe("latency", value)
        stats = trace.timer("latency")
        assert stats.count == 3
        assert stats.mean == 2.0
        assert stats.minimum == 1.0
        assert stats.maximum == 3.0

    def test_empty_timer_mean_is_zero(self):
        assert TraceRecorder().timer("empty").mean == 0.0


class TestRecords:
    def test_record_and_filter(self):
        trace = TraceRecorder()
        trace.record(1.0, "net", "send")
        trace.record(2.0, "qos", "breach")
        assert len(trace.records()) == 2
        assert [r.label for r in trace.records("net")] == ["send"]

    def test_record_cap(self):
        trace = TraceRecorder(max_records=2)
        for i in range(5):
            trace.record(float(i), "c", "l")
        assert len(trace.records()) == 2
        assert trace.dropped_records == 3

    def test_keep_records_false(self):
        trace = TraceRecorder(keep_records=False)
        trace.record(1.0, "c", "l")
        assert trace.records() == []

    def test_summary_shape(self):
        trace = TraceRecorder()
        trace.count("x")
        trace.observe("t", 1.0)
        trace.record(0.0, "c", "l")
        summary = trace.summary()
        assert summary["counters"] == {"x": 1.0}
        assert summary["timers"]["t"]["count"] == 1
        assert summary["records"] == 1
