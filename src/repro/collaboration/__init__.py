"""Collaboration: shared workspaces, threads, MQO (paper §7).

Public API:

- :class:`SharedWorkspace`, :class:`Contribution`,
  :class:`ExplorationThread`.
- :class:`CollaborationSession`.
- :class:`SharedJobExecutor`, :class:`SharingReport`,
  :class:`SharedExecutionResult`, :func:`job_key`.
"""

from repro.collaboration.mqo import (
    SharedExecutionResult,
    SharedJobExecutor,
    SharingReport,
    job_key,
)
from repro.collaboration.session import CollaborationSession
from repro.collaboration.workspace import (
    Contribution,
    ExplorationThread,
    SharedWorkspace,
    reset_thread_ids,
)

__all__ = [
    "CollaborationSession",
    "Contribution",
    "ExplorationThread",
    "SharedExecutionResult",
    "SharedJobExecutor",
    "SharedWorkspace",
    "SharingReport",
    "job_key",
    "reset_thread_ids",
]
