"""Parsing of inline ``# agora: ignore[AGR00x] reason`` comments.

The syntax mirrors mypy/ruff inline ignores so reviewers only learn one
shape — a trailing comment naming the silenced rules and a reason, which
covers its own line only.  The engine tracks which suppressions actually
matched a violation so unused ones can be reported (AGR000) and removed.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Iterable, List, Tuple

from repro.analysis.violations import Suppression

_SUPPRESSION_RE = re.compile(
    r"#\s*agora:\s*ignore\[(?P<rules>[A-Z]{3}\d{3}(?:\s*,\s*[A-Z]{3}\d{3})*)\]"
    r"\s*(?P<reason>.*)$"
)


def _comment_lines(source: str) -> Iterable[Tuple[int, str]]:
    """(lineno, text) for every real comment token in ``source``.

    Tokenising keeps docstrings and string literals that merely *mention*
    the grammar from counting as suppressions.  Files that fail to
    tokenise fall back to a plain line scan — they already surface a
    parse error through the engine, so over-matching there is harmless.
    """
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        for lineno, line in enumerate(source.splitlines(), start=1):
            yield lineno, line
        return
    for token in tokens:
        if token.type == tokenize.COMMENT:
            yield token.start[0], token.string


def parse_suppressions(source: str, path: str) -> List[Suppression]:
    """Extract every suppression comment from ``source``."""
    found: List[Suppression] = []
    for lineno, text in _comment_lines(source):
        match = _SUPPRESSION_RE.search(text)
        if match is None:
            continue
        rule_ids = tuple(
            part.strip() for part in match.group("rules").split(",") if part.strip()
        )
        found.append(
            Suppression(
                path=path,
                line=lineno,
                rule_ids=rule_ids,
                reason=match.group("reason").strip(),
            )
        )
    return found
