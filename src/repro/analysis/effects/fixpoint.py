"""Interprocedural fixpoint over per-function effect summaries.

Each function starts from its intraprocedural atoms (:mod:`.local`) and
repeatedly absorbs the *exported* summaries of its resolved callees,
mapping receiver- and argument-confined effects through the call site's
provenance, until nothing changes.  The lattice is finite (atoms are
drawn from the project's finite set of local atoms, chains only ever
shrink toward the minimum), so the iteration terminates at the unique
least fixpoint regardless of processing order; a sorted worklist keeps
the trajectory deterministic too.

A ``# agora: worker-local <reason>`` declaration filters the exported
view: self-confined writes, memo decorators, and RNG draws are attested
as per-worker-replicable and replaced by a synthetic instance-state
read, capping the declared function at ``READS_SHARED``.  Global
writes, I/O, wall-clock reads, and unresolved calls are *not*
trustable and always propagate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.effects.local import scan_function
from repro.analysis.effects.model import (
    CALLS_PARAM,
    READ_SELF,
    TRUSTABLE_KINDS,
    UNRESOLVED_CALL,
    WRITE_ARG,
    WRITE_SELF,
    Actual,
    CallSite,
    Effect,
    Summary,
    map_read,
    map_write,
    merge_effect,
    summary_verdict,
)
from repro.analysis.effects.project import (
    WORKER_LOCAL,
    FunctionInfo,
    ProjectIndex,
)

_MAX_ITERATIONS = 10_000


@dataclass
class EffectsResult:
    """Everything the fixpoint produced."""

    index: ProjectIndex
    #: raw (pre-trust) summaries per qualname
    summaries: Dict[str, Summary] = field(default_factory=dict)
    #: post-trust summaries per qualname — what callers and the manifest see
    exported: Dict[str, Summary] = field(default_factory=dict)
    #: verdict of the exported summary
    verdicts: Dict[str, str] = field(default_factory=dict)
    #: qualnames whose worker-local declaration actually dropped atoms
    trusted: Dict[str, bool] = field(default_factory=dict)
    #: worker-local declarations that dropped nothing (stale, AGR104)
    stale_declarations: List[str] = field(default_factory=list)
    iterations: int = 0

    def function(self, qualname: str) -> Optional[FunctionInfo]:
        """Registry record for ``qualname``."""
        return self.index.functions.get(qualname)


class EffectAnalysis:
    """Drives local scanning and the interprocedural fixpoint."""

    def __init__(self, index: ProjectIndex) -> None:
        self.index = index
        self._calls: Dict[str, List[CallSite]] = {}
        self._base: Dict[str, List[Effect]] = {}
        self._summaries: Dict[str, Summary] = {}
        self._versions: Dict[str, int] = {}
        self._export_cache: Dict[str, Tuple[int, Summary]] = {}
        self._callers: Dict[str, Set[str]] = {}

    # ------------------------------------------------------------------
    def run(self) -> EffectsResult:
        """Scan every function and iterate to the fixpoint."""
        order = sorted(self.index.functions)
        for qualname in order:
            func = self.index.functions[qualname]
            scanned = scan_function(func, self.index)
            self._base[qualname] = list(scanned.atoms)
            self._calls[qualname] = list(scanned.calls)
            self._summaries[qualname] = {atom: () for atom in scanned.atoms}
            self._versions[qualname] = 0
        for qualname in order:
            for site in self._calls[qualname]:
                for target in site.targets:
                    self._callers.setdefault(target, set()).add(qualname)
                for _, actual in site.actuals:
                    if actual.func_ref:
                        self._callers.setdefault(actual.func_ref, set()).add(
                            qualname
                        )

        worklist: Set[str] = set(order)
        iterations = 0
        while worklist:
            iterations += 1
            if iterations > _MAX_ITERATIONS:  # pragma: no cover - safety net
                raise RuntimeError("effect fixpoint failed to converge")
            qualname = min(worklist)
            worklist.discard(qualname)
            if self._recompute(qualname):
                for caller in self._callers.get(qualname, ()):
                    worklist.add(caller)

        result = EffectsResult(index=self.index, iterations=iterations)
        for qualname in order:
            summary = self._summaries[qualname]
            exported = self._exported(qualname)
            result.summaries[qualname] = dict(summary)
            result.exported[qualname] = dict(exported)
            result.verdicts[qualname] = summary_verdict(exported)
            func = self.index.functions[qualname]
            declared_local = (
                func.annotation is not None
                and func.annotation.kind == WORKER_LOCAL
            )
            dropped = declared_local and any(
                effect.kind in TRUSTABLE_KINDS for effect in summary
            )
            result.trusted[qualname] = dropped
            if declared_local and not dropped:
                result.stale_declarations.append(qualname)
        result.stale_declarations.sort()
        return result

    # ------------------------------------------------------------------
    def _recompute(self, qualname: str) -> bool:
        """Re-absorb callee summaries into ``qualname``; True if changed."""
        summary = self._summaries[qualname]
        changed = False
        for atom in self._base[qualname]:
            changed |= merge_effect(summary, atom, ())
        for site in self._calls[qualname]:
            for target in site.targets:
                callee_summary = self._exported(target)
                changed |= self._absorb(
                    summary, site, target, callee_summary
                )
        if changed:
            self._versions[qualname] += 1
        return changed

    def _absorb(
        self,
        summary: Summary,
        site: CallSite,
        callee: str,
        callee_summary: Summary,
    ) -> bool:
        changed = False
        for effect, chain in sorted(
            callee_summary.items(), key=lambda pair: (pair[0], pair[1])
        ):
            new_chain = (callee,) + chain
            for mapped in self._map_effect(effect, site):
                changed |= merge_effect(summary, mapped, new_chain)
        return changed

    def _map_effect(self, effect: Effect, site: CallSite) -> List[Effect]:
        """Translate one callee atom through the call-site provenance."""
        if effect.kind == WRITE_SELF:
            mapped = map_write(site.receiver, effect.reason, effect.origin)
            return [mapped] if mapped is not None else []
        if effect.kind == READ_SELF:
            mapped = map_read(site.receiver, effect.reason, effect.origin)
            return [mapped] if mapped is not None else []
        if effect.kind == WRITE_ARG:
            actual = site.actual_for(effect.detail)
            mapped = map_write(actual.prov, effect.reason, effect.origin)
            return [mapped] if mapped is not None else []
        if effect.kind == CALLS_PARAM:
            return self._map_higher_order(effect, site)
        return [effect]

    def _map_higher_order(self, effect: Effect, site: CallSite) -> List[Effect]:
        actual = site.actual_for(effect.detail)
        if actual.is_inline_callable:
            # the lambda / nested def body was attributed to the caller
            # at its definition site; nothing further to add
            return []
        if actual.func_ref:
            return self._flatten_func_ref(effect, actual)
        return [
            Effect(
                UNRESOLVED_CALL,
                f"higher-order call through parameter '{effect.detail}' "
                "with an unresolvable actual",
                effect.origin,
                detail=effect.detail,
            )
        ]

    def _flatten_func_ref(self, effect: Effect, actual: Actual) -> List[Effect]:
        """Absorb a by-reference project function passed as the actual."""
        mapped: List[Effect] = []
        pseudo = CallSite(
            lineno=0, targets=(actual.func_ref,), receiver=actual.prov
        )
        for callee_effect in sorted(self._exported(actual.func_ref)):
            if callee_effect.kind == CALLS_PARAM:
                mapped.append(
                    Effect(
                        UNRESOLVED_CALL,
                        "higher-order chain through "
                        f"'{actual.func_ref}' exceeds tracking depth",
                        callee_effect.origin,
                    )
                )
                continue
            mapped.extend(self._map_effect(callee_effect, pseudo))
        return mapped

    # ------------------------------------------------------------------
    def _exported(self, qualname: str) -> Summary:
        """Trust-filtered view of ``qualname``'s summary."""
        summary = self._summaries.get(qualname)
        if summary is None:
            return {}
        func = self.index.functions[qualname]
        if func.annotation is None or func.annotation.kind != WORKER_LOCAL:
            return summary
        version = self._versions[qualname]
        cached = self._export_cache.get(qualname)
        if cached is not None and cached[0] == version:
            return cached[1]
        filtered: Summary = {
            effect: chain
            for effect, chain in summary.items()
            if effect.kind not in TRUSTABLE_KINDS
        }
        if len(filtered) != len(summary):
            reason = func.annotation.reason or "worker-local state"
            merge_effect(
                filtered,
                Effect(
                    READ_SELF,
                    f"declared worker-local: {reason}",
                    qualname,
                ),
                (),
            )
        self._export_cache[qualname] = (version, filtered)
        return filtered


def analyse(index: ProjectIndex) -> EffectsResult:
    """Run the full effect analysis over a built project index."""
    return EffectAnalysis(index).run()
