"""Tests for multi-modal interaction sessions."""

import numpy as np
import pytest

from repro.data import InformationItem
from repro.multimodal import InteractionSession
from repro.personalization import UserProfile


def _item(item_id, topic_index=0):
    latent = np.zeros(3)
    latent[topic_index] = 1.0
    return InformationItem(item_id=item_id, domain="d", latent=latent)


def _profile(mode_preference=None):
    return UserProfile(
        user_id="iris",
        interests=np.array([1.0, 0.0, 0.0]),
        mode_preference=mode_preference or {"query": 0.4, "browse": 0.3, "feed": 0.3},
    )


def _actions(query_items=None, browse_items=None, feed_items=None):
    return {
        "query": lambda: list(query_items or []),
        "browse": lambda: list(browse_items or []),
        "feed": lambda: list(feed_items or []),
    }


@pytest.fixture
def session(streams):
    return InteractionSession(
        _profile(),
        _actions(query_items=[_item("q1")], browse_items=[_item("b1")],
                 feed_items=[_item("f1")]),
        streams.spawn("s"),
    )


class TestSession:
    def test_step_records_discoveries(self, session):
        new = session.step(mode="query")
        assert [d.item.item_id for d in new] == ["q1"]
        assert session.steps_taken == 1

    def test_duplicates_not_rediscovered(self, session):
        session.step(mode="query")
        assert session.step(mode="query") == []
        assert len(session.discoveries) == 1

    def test_run_interleaves_modes(self, session):
        session.run(steps=50)
        assert session.steps_taken == 50
        used_modes = {mode for mode, count in session.mode_counts.items() if count > 0}
        assert len(used_modes) >= 2

    def test_mode_preference_respected(self, streams):
        profile = _profile({"query": 0.9, "browse": 0.05, "feed": 0.05})
        session = InteractionSession(
            profile, _actions(), streams.spawn("pref"),
        )
        session.run(steps=100)
        assert session.mode_counts["query"] > 60

    def test_enabled_modes_restrict(self, streams):
        session = InteractionSession(
            _profile(), _actions(query_items=[_item("q1")]),
            streams.spawn("only"), enabled_modes=["query"],
        )
        session.run(steps=10)
        assert session.mode_counts == {"query": 10}

    def test_unknown_mode_rejected(self, streams):
        with pytest.raises(ValueError):
            InteractionSession(
                _profile(), {"telepathy": lambda: []}, streams.spawn("x"),
            )

    def test_no_enabled_modes_rejected(self, streams):
        with pytest.raises(ValueError):
            InteractionSession(
                _profile(), _actions(), streams.spawn("x"), enabled_modes=["nothing"],
            )

    def test_unbound_mode_step_rejected(self, streams):
        session = InteractionSession(
            _profile(), {"query": lambda: []}, streams.spawn("x"),
        )
        with pytest.raises(KeyError):
            session.step(mode="browse")

    def test_negative_steps_rejected(self, session):
        with pytest.raises(ValueError):
            session.run(-1)


class TestTimeToDiscovery:
    def test_steps_to_find(self, streams):
        feed_sequence = iter([[_item("f1", 1)], [_item("f2", 0)], [_item("f3", 0)]])
        session = InteractionSession(
            _profile(),
            {"feed": lambda: next(feed_sequence, [])},
            streams.spawn("ttd"), enabled_modes=["feed"],
        )
        session.run(steps=3)
        def is_topic0(item):
            return item.latent[0] == 1.0

        assert session.steps_to_find(is_topic0, count=1) == 2
        assert session.steps_to_find(is_topic0, count=2) == 3
        assert session.steps_to_find(is_topic0, count=5) is None

    def test_steps_to_find_invalid_count(self, session):
        with pytest.raises(ValueError):
            session.steps_to_find(lambda item: True, count=0)
