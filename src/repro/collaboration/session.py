"""Collaborative sessions.

"Collaboration is essentially socialization characterized by simultaneity
... synergistic concurrent interactions of multiple (probably, a small
number of) users with the Open Agora.  They have a common goal but seek
relevant information by exploring the market based on their individual
profiles" (§7).

A :class:`CollaborationSession` tracks members, their threads, and the
shared workspace, and computes group-level coverage metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.collaboration.workspace import ExplorationThread, SharedWorkspace
from repro.personalization.profile import UserProfile
from repro.query.model import Query
from repro.query.oracle import RelevanceOracle
from repro.uncertainty.results import UncertainResultSet


@dataclass
class CollaborationSession:
    """A group pursuing one information goal together.

    Attributes
    ----------
    goal_latent:
        The shared information need (ground truth for coverage metrics).
    members:
        Profiles of the participants.
    """

    goal_latent: np.ndarray
    members: Dict[str, UserProfile] = field(default_factory=dict)
    workspace: SharedWorkspace = field(default_factory=SharedWorkspace)
    threads: Dict[int, ExplorationThread] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def add_member(self, profile: UserProfile) -> None:
        """Add a member profile (ids must be unique)."""
        if profile.user_id in self.members:
            raise ValueError(f"member {profile.user_id!r} already in session")
        self.members[profile.user_id] = profile

    def member_ids(self) -> List[str]:
        """Sorted member ids."""
        return sorted(self.members)

    def _require_member(self, user_id: str) -> None:
        if user_id not in self.members:
            raise KeyError(f"{user_id!r} is not a session member")

    # ------------------------------------------------------------------
    def start_thread(self, user_id: str, query: Query) -> ExplorationThread:
        """A member opens a new exploration thread with its first query."""
        self._require_member(user_id)
        thread = ExplorationThread(owner_id=user_id)
        thread.extend(query)
        self.threads[thread.thread_id] = thread
        return thread

    def continue_thread(self, user_id: str, thread_id: int, query: Query) -> None:
        """A member (owner or not) extends an existing thread."""
        self._require_member(user_id)
        thread = self.threads.get(thread_id)
        if thread is None:
            raise KeyError(f"unknown thread {thread_id}")
        thread.pick_up(user_id)
        thread.extend(query)

    def record_results(
        self,
        user_id: str,
        results: UncertainResultSet,
        time: float = 0.0,
        thread_id: Optional[int] = None,
    ) -> int:
        """Publish a member's results to the shared workspace."""
        self._require_member(user_id)
        return self.workspace.contribute(user_id, results, time=time, thread_id=thread_id)

    # ------------------------------------------------------------------
    def group_coverage(
        self,
        oracle: RelevanceOracle,
        goal_query: Query,
        reachable_relevant: int,
    ) -> float:
        """Fraction of relevant reachable items the group found together."""
        if reachable_relevant <= 0:
            return 1.0
        found = sum(
            1
            for item in self.workspace.items()
            if oracle.is_relevant(goal_query, item)
        )
        return min(1.0, found / reachable_relevant)

    def contribution_balance(self) -> Dict[str, int]:
        """New-item discoveries per member (jealousy/admiration metric)."""
        return {
            member_id: len(self.workspace.contributions_by(member_id))
            for member_id in self.member_ids()
        }
