"""Tests for concession strategies."""

import pytest

from repro.negotiation import (
    FirmStrategy,
    TimeDependentStrategy,
    TitForTatStrategy,
    boulware,
    conceder,
    linear,
    standard_strategy_suite,
)

FLOOR = 0.3


class TestTimeDependent:
    def test_starts_high_ends_at_floor(self):
        strategy = linear()
        assert strategy.target(0.0, FLOOR, []) == pytest.approx(0.95)
        assert strategy.target(1.0, FLOOR, []) == pytest.approx(FLOOR)

    def test_targets_monotone_decreasing(self):
        for strategy in (boulware(), conceder(), linear()):
            targets = [strategy.target(t / 10, FLOOR, []) for t in range(11)]
            assert all(a >= b - 1e-12 for a, b in zip(targets, targets[1:]))

    def test_boulware_above_conceder_midway(self):
        t = 0.5
        assert boulware().target(t, FLOOR, []) > conceder().target(t, FLOOR, [])

    def test_invalid_exponent(self):
        with pytest.raises(ValueError):
            TimeDependentStrategy(e=0.0)

    def test_boulware_range_check(self):
        with pytest.raises(ValueError):
            boulware(e=1.5)

    def test_conceder_range_check(self):
        with pytest.raises(ValueError):
            conceder(e=0.5)

    def test_invalid_time(self):
        with pytest.raises(ValueError):
            linear().target(1.5, FLOOR, [])


class TestTitForTat:
    def test_firm_against_firm_opponent(self):
        strategy = TitForTatStrategy()
        # Opponent offered us constant utility — no concessions to mirror.
        history = [0.2, 0.2, 0.2]
        assert strategy.target(0.5, FLOOR, history) == pytest.approx(0.95)

    def test_mirrors_concessions(self):
        strategy = TitForTatStrategy(reciprocity=1.0)
        history = [0.2, 0.3, 0.45]  # opponent conceded 0.25 total
        assert strategy.target(0.5, FLOOR, history) == pytest.approx(0.95 - 0.25)

    def test_never_below_floor(self):
        strategy = TitForTatStrategy(reciprocity=10.0)
        history = [0.1, 0.9]
        assert strategy.target(0.5, FLOOR, history) == FLOOR

    def test_ignores_opponent_toughening(self):
        strategy = TitForTatStrategy()
        history = [0.5, 0.2]  # opponent got tougher
        assert strategy.target(0.5, FLOOR, history) == pytest.approx(0.95)

    def test_invalid_reciprocity(self):
        with pytest.raises(ValueError):
            TitForTatStrategy(reciprocity=-1.0)


class TestFirm:
    def test_never_concedes(self):
        strategy = FirmStrategy()
        for t in (0.0, 0.5, 1.0):
            assert strategy.target(t, FLOOR, [0.1, 0.5]) == pytest.approx(0.95)


class TestSuite:
    def test_suite_has_five_strategies(self):
        assert len(standard_strategy_suite()) == 5

    def test_suite_names_unique(self):
        names = [s.name for s in standard_strategy_suite()]
        assert len(set(names)) == 5
