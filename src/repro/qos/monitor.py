"""Contract monitoring and settlement bookkeeping.

Tracks every SLA outcome in a run: per-provider breach rates, money flows,
and the compliance signals forwarded to the reputation system.  "If the
vegetables are not as fresh as promised, in time, her trust is reduced" —
the monitor is where delivery quality turns into trust updates.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.qos.sla import SLAContract, SLAOutcome
from repro.qos.vector import QoSVector

ComplianceListener = Callable[[str, float], None]


@dataclass
class ProviderLedger:
    """Aggregate settlement history for one provider."""

    contracts: int = 0
    breaches: int = 0
    revenue: float = 0.0
    compensation_paid: float = 0.0

    @property
    def breach_rate(self) -> float:
        """Fraction of this provider's contracts that breached."""
        return self.breaches / self.contracts if self.contracts else 0.0


class ContractMonitor:
    """Settles contracts and aggregates outcomes.

    Register compliance listeners (typically
    ``reputation_system.observe``) to propagate delivery quality into
    trust scores.  With a metrics registry attached, every settlement
    additionally lands in ``qos.*`` counters and the ``qos.compliance``
    distribution, so breach rates show up on run dashboards and in
    manifest diffs.
    """

    def __init__(self, metrics: Optional[MetricsRegistry] = None) -> None:
        self._ledgers: Dict[str, ProviderLedger] = defaultdict(ProviderLedger)
        self._outcomes: List[SLAOutcome] = []
        self._listeners: List[ComplianceListener] = []
        self._metrics = metrics

    def on_compliance(self, listener: ComplianceListener) -> None:
        """Register ``listener(provider_id, compliance in [0,1])``."""
        self._listeners.append(listener)

    # ------------------------------------------------------------------
    def settle(self, contract: SLAContract, delivered: QoSVector) -> SLAOutcome:
        """Settle ``contract`` against ``delivered`` and record the outcome."""
        outcome = contract.settle(delivered)
        self._record(outcome)
        return outcome

    def record_cancellation(self, contract: SLAContract, by_provider: bool) -> SLAOutcome:
        """Cancel ``contract`` and record the outcome."""
        outcome = contract.cancel(by_provider)
        self._record(outcome)
        return outcome

    def _record(self, outcome: SLAOutcome) -> None:
        self._outcomes.append(outcome)
        ledger = self._ledgers[outcome.contract.provider_id]
        ledger.contracts += 1
        if outcome.breached:
            ledger.breaches += 1
        ledger.revenue += outcome.provider_revenue
        ledger.compensation_paid += max(0.0, outcome.compensation_paid)
        if self._metrics is not None:
            self._metrics.counter("qos.contracts_settled").inc()
            if outcome.breached:
                self._metrics.counter("qos.breaches").inc()
            if outcome.delivered is None:
                self._metrics.counter("qos.cancellations").inc()
            self._metrics.counter(
                "qos.compensation_paid"
            ).inc(max(0.0, outcome.compensation_paid))
            self._metrics.histogram("qos.compliance").observe(outcome.compliance)
        for listener in self._listeners:
            listener(outcome.contract.provider_id, outcome.compliance)

    # ------------------------------------------------------------------
    def ledger(self, provider_id: str) -> ProviderLedger:
        """The aggregate ledger of ``provider_id``."""
        return self._ledgers[provider_id]

    def outcomes(self, provider_id: Optional[str] = None) -> List[SLAOutcome]:
        """Settled outcomes, optionally filtered by provider."""
        if provider_id is None:
            return list(self._outcomes)
        return [
            o for o in self._outcomes if o.contract.provider_id == provider_id
        ]

    @property
    def total_contracts(self) -> int:
        """Number of settlements recorded."""
        return len(self._outcomes)

    @property
    def overall_breach_rate(self) -> float:
        """Breach fraction across all recorded settlements."""
        if not self._outcomes:
            return 0.0
        return sum(1 for o in self._outcomes if o.breached) / len(self._outcomes)

    def consumer_spend(self, consumer_id: str) -> float:
        """Net amount ``consumer_id`` paid across all its contracts."""
        return sum(
            o.consumer_net_cost
            for o in self._outcomes
            if o.contract.consumer_id == consumer_id
        )
