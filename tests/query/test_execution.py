"""Tests for plan execution against live sources."""

import pytest

from repro.data import DomainSpec
from repro.query import (
    ExecutionContext,
    QueryExecutor,
    Retrieve,
    standard_plan,
)
from repro.sources import SourceRegistry
from repro.uncertainty import BinnedCalibrator

from tests.conftest import make_source, make_topic_query


@pytest.fixture
def execution_setup(corpus_generator, matching_engine, streams, oracle):
    registry = SourceRegistry()
    museum = DomainSpec(name="museum", topic_prior={"folk-jewelry": 1.0})
    auction = DomainSpec(name="auction", topic_prior={"auction-market": 1.0})
    for source_id, spec in [("m1", museum), ("m2", museum), ("a1", auction)]:
        registry.register(
            make_source(
                source_id, corpus_generator, matching_engine, streams,
                domain_spec=spec, n_items=30,
            )
        )
    context = ExecutionContext(registry=registry, oracle=oracle, now=0.0,
                               consumer_id="iris")
    return registry, context


class TestExecution:
    def test_single_source_plan(
        self, execution_setup, topic_space, vocabulary
    ):
        registry, context = execution_setup
        query = make_topic_query(topic_space, vocabulary, "folk-jewelry", k=5)
        plan = standard_plan([Retrieve(query.restricted_to("museum"), "m1")], k=5)
        result = QueryExecutor(context).execute(plan, query)
        assert len(result.results) <= 5
        assert result.response_time > 0
        assert result.sources_used == ["m1"]

    def test_merge_runs_parallel(self, execution_setup, topic_space, vocabulary):
        registry, context = execution_setup
        query = make_topic_query(topic_space, vocabulary, "folk-jewelry", k=5)
        sub = query.restricted_to("museum")
        single = standard_plan([Retrieve(sub, "m1")], k=5)
        double = standard_plan([Retrieve(sub, "m1"), Retrieve(sub, "m2")], k=5)
        executor = QueryExecutor(context)
        t_single = executor.execute(single, query).response_time
        t_double = executor.execute(double, query).response_time
        # Parallel merge: roughly the max of branches, not the sum.
        assert t_double < 1.8 * t_single

    def test_more_sources_more_complete(
        self, execution_setup, topic_space, vocabulary,
        corpus_generator, matching_engine, streams,
    ):
        registry, context = execution_setup
        # Make the two museum sources partial mirrors of one corpus.
        query = make_topic_query(topic_space, vocabulary, "folk-jewelry", k=10)
        sub = query.restricted_to("museum")
        executor = QueryExecutor(context)
        one = executor.execute(standard_plan([Retrieve(sub, "m1")], k=10), query)
        two = executor.execute(
            standard_plan([Retrieve(sub, "m1"), Retrieve(sub, "m2")], k=10), query
        )
        assert two.delivered.completeness >= one.delivered.completeness - 1e-9

    def test_latency_charged(self, execution_setup, topic_space, vocabulary):
        registry, context = execution_setup
        query = make_topic_query(topic_space, vocabulary, "folk-jewelry", k=5)
        plan = standard_plan([Retrieve(query.restricted_to("museum"), "m1")], k=5)
        base = QueryExecutor(context).execute(plan, query).response_time
        context.latency = lambda source_id: 5.0
        slow = QueryExecutor(context).execute(plan, query).response_time
        assert slow == pytest.approx(base + 10.0)

    def test_trust_annotated_from_context(
        self, execution_setup, topic_space, vocabulary
    ):
        registry, context = execution_setup
        context.trust = lambda source_id: 0.42
        query = make_topic_query(topic_space, vocabulary, "folk-jewelry", k=5)
        plan = standard_plan([Retrieve(query.restricted_to("museum"), "m1")], k=5)
        result = QueryExecutor(context).execute(plan, query)
        assert result.delivered.trust == pytest.approx(0.42)

    def test_declined_source_yields_empty(
        self, execution_setup, topic_space, vocabulary
    ):
        registry, context = execution_setup
        registry.source("m1").blacklist.ban("iris")
        query = make_topic_query(topic_space, vocabulary, "folk-jewelry", k=5)
        plan = standard_plan([Retrieve(query.restricted_to("museum"), "m1")], k=5)
        result = QueryExecutor(context).execute(plan, query)
        assert len(result.results) == 0
        assert result.declined_sources == ["m1"]
        assert result.delivered.trust == 0.0

    def test_calibrator_applied(self, execution_setup, topic_space, vocabulary):
        registry, context = execution_setup
        # A degenerate calibrator mapping every score to ~0.
        calibrator = BinnedCalibrator(n_bins=2).fit(
            [0.1, 0.2, 0.8, 0.9], [0, 0, 0, 0]
        )
        context.calibrator = calibrator
        query = make_topic_query(topic_space, vocabulary, "folk-jewelry", k=5)
        plan = standard_plan([Retrieve(query.restricted_to("museum"), "m1")], k=5)
        result = QueryExecutor(context).execute(plan, query)
        assert all(m.probability == 0.0 for m in result.results)

    def test_merge_with_no_children_returns_empty(
        self, execution_setup, topic_space, vocabulary
    ):
        # Regression: executing a Merge whose children list has been emptied
        # (e.g. by a planner pruning every branch) used to crash with
        # ``max() arg is an empty sequence`` when folding child latencies.
        registry, context = execution_setup
        query = make_topic_query(topic_space, vocabulary, "folk-jewelry", k=5)
        plan = standard_plan([Retrieve(query.restricted_to("museum"), "m1")], k=5)
        merge = plan.child
        merge.children = []
        result = QueryExecutor(context).execute(plan, query)
        assert len(result.results) == 0
        assert result.response_time == 0.0
        assert result.sources_used == []
        assert result.declined_sources == []

    def test_cross_domain_merge(self, execution_setup, topic_space, vocabulary):
        registry, context = execution_setup
        query = make_topic_query(topic_space, vocabulary, "folk-jewelry", k=10)
        plan = standard_plan(
            [
                Retrieve(query.restricted_to("museum"), "m1"),
                Retrieve(query.restricted_to("auction"), "a1"),
            ],
            k=10,
        )
        result = QueryExecutor(context).execute(plan, query)
        domains = {m.item.domain for m in result.results}
        assert "museum" in domains
