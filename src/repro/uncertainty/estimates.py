"""Uncertain estimates for cost and cardinality.

"There is a limit on the accuracy of cost functions and data statistics
used by query optimizers" (§2).  The optimizer therefore works with
interval/moment estimates instead of point values: an
:class:`UncertainEstimate` carries a mean, a standard deviation and hard
bounds, supports the arithmetic needed to compose plan estimates, and can
be sampled for Monte-Carlo plan evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class UncertainEstimate:
    """A scalar quantity known only approximately.

    Attributes
    ----------
    mean / std:
        First two moments of the belief.
    low / high:
        Hard support bounds (samples are clipped into them).
    """

    mean: float
    std: float = 0.0
    low: float = float("-inf")
    high: float = float("inf")

    def __post_init__(self) -> None:
        if self.std < 0:
            raise ValueError("std must be non-negative")
        if self.low > self.high:
            raise ValueError("low must not exceed high")
        if not self.low <= self.mean <= self.high:
            raise ValueError("mean must lie within [low, high]")

    # ------------------------------------------------------------------
    @classmethod
    def exact(cls, value: float) -> "UncertainEstimate":
        """A point estimate with zero uncertainty."""
        return cls(mean=value, std=0.0, low=value, high=value)

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "UncertainEstimate":
        """Moment-match an estimate from observed samples."""
        samples = np.asarray(samples, dtype=float)
        if samples.size == 0:
            raise ValueError("need at least one sample")
        return cls(
            mean=float(samples.mean()),
            std=float(samples.std(ddof=1)) if samples.size > 1 else 0.0,
            low=float(samples.min()),
            high=float(samples.max()),
        )

    @property
    def relative_error(self) -> float:
        """Coefficient of variation (std / |mean|); inf for zero mean."""
        if self.mean == 0:
            return float("inf") if self.std > 0 else 0.0
        return self.std / abs(self.mean)

    # ------------------------------------------------------------------
    def __add__(self, other: "UncertainEstimate") -> "UncertainEstimate":
        """Sum of independent quantities."""
        if not isinstance(other, UncertainEstimate):
            return NotImplemented
        return UncertainEstimate(
            mean=self.mean + other.mean,
            std=float(np.hypot(self.std, other.std)),
            low=self.low + other.low,
            high=self.high + other.high,
        )

    def scale(self, factor: float) -> "UncertainEstimate":
        """Multiply by a non-negative constant."""
        if factor < 0:
            raise ValueError("factor must be non-negative")
        return UncertainEstimate(
            mean=self.mean * factor,
            std=self.std * factor,
            low=self.low * factor,
            high=self.high * factor,
        )

    def combine_max(self, other: "UncertainEstimate") -> "UncertainEstimate":
        """Conservative estimate of max(X, Y) for parallel composition.

        Uses the exact mean under an independence + normality approximation
        would be heavier; we keep the pessimistic but cheap bound:
        mean = max of means, std = larger std.
        """
        return UncertainEstimate(
            mean=max(self.mean, other.mean),
            std=max(self.std, other.std),
            low=max(self.low, other.low),
            high=max(self.high, other.high),
        )

    def sample(self, rng: np.random.Generator) -> float:
        """Draw one value (normal, clipped to the support)."""
        if self.std == 0:
            return float(np.clip(self.mean, self.low, self.high))
        return float(np.clip(rng.normal(self.mean, self.std), self.low, self.high))

    def quantile(self, q: float) -> float:
        """Normal-approximation quantile, clipped to the support."""
        if not 0.0 < q < 1.0:
            raise ValueError("q must be in (0, 1)")
        if self.std == 0:
            return float(np.clip(self.mean, self.low, self.high))
        # Inverse error function via numpy (erfinv through special-free approx).
        z = _normal_quantile(q)
        return float(np.clip(self.mean + z * self.std, self.low, self.high))


def _normal_quantile(q: float) -> float:
    """Acklam's rational approximation of the standard normal quantile."""
    a = [-3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
         1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00]
    b = [-5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
         6.680131188771972e01, -1.328068155288572e01]
    c = [-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
         -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00]
    d = [7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
         3.754408661907416e00]
    p_low = 0.02425
    if q < p_low:
        u = np.sqrt(-2.0 * np.log(q))
        return (((((c[0] * u + c[1]) * u + c[2]) * u + c[3]) * u + c[4]) * u + c[5]) / (
            (((d[0] * u + d[1]) * u + d[2]) * u + d[3]) * u + 1.0
        )
    if q > 1 - p_low:
        u = np.sqrt(-2.0 * np.log(1.0 - q))
        return -(((((c[0] * u + c[1]) * u + c[2]) * u + c[3]) * u + c[4]) * u + c[5]) / (
            (((d[0] * u + d[1]) * u + d[2]) * u + d[3]) * u + 1.0
        )
    u = q - 0.5
    t = u * u
    return (((((a[0] * t + a[1]) * t + a[2]) * t + a[3]) * t + a[4]) * t + a[5]) * u / (
        ((((b[0] * t + b[1]) * t + b[2]) * t + b[3]) * t + b[4]) * t + 1.0
    )
