"""Serializable trace context for cross-process span propagation.

A :class:`TraceContext` is the small, JSON-serializable capsule a
coordinator ships to a worker process so that spans recorded *there*
remain part of the coordinator's causal trace: it names the trace, the
worker's shard, and the coordinator span the worker's work is caused by.

Collision-free merged ids come from **per-shard id namespaces**: every
shard allocates span ids inside its own block of
:data:`SHARD_SPAN_STRIDE` consecutive integers, so ids from different
shards can never collide and ``(shard, seq)`` is recoverable from the id
alone with :func:`shard_of` / :func:`seq_of`.  Both halves are local
sequence counters, so two same-seed runs produce bitwise-identical
merged traces.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, Optional

#: Width of one shard's span-id namespace.  2**40 spans per shard is far
#: above any recording cap; ids stay exact well inside the float64/JSON
#: safe-integer range for ~2**13 shards.
SHARD_SPAN_STRIDE = 1 << 40


# agora: shard-safe
def shard_of(span_id: int) -> int:
    """Shard that allocated ``span_id`` (namespace block index)."""
    return span_id // SHARD_SPAN_STRIDE


# agora: shard-safe
def seq_of(span_id: int) -> int:
    """Per-shard sequence number of ``span_id`` inside its namespace."""
    return span_id % SHARD_SPAN_STRIDE


# agora: shard-safe
def derive_trace_id(seed: int, scope: str = "") -> str:
    """Deterministic 16-hex trace id from a seed and an optional scope.

    Pure function of its inputs (SHA-256, truncated), so two same-seed
    runs — and every shard of one run — agree on the trace id without
    any coordination.
    """
    payload = f"trace:{seed}:{scope}".encode("utf-8")
    return hashlib.sha256(payload).hexdigest()[:16]


@dataclass(frozen=True)
class TraceContext:
    """The cross-process capsule carrying causal context to a shard.

    Parameters
    ----------
    trace_id:
        Identifier shared by every shard of one logical run.
    shard_id:
        The receiving shard's id-namespace index (the coordinator is
        shard 0 by convention).
    parent_span_id:
        Coordinator span the shard's work is caused by; ``None`` detaches
        the shard's roots from any coordinator span.
    """

    trace_id: str
    shard_id: int
    parent_span_id: Optional[int] = None

    def __post_init__(self) -> None:
        if self.shard_id < 0:
            raise ValueError("shard_id must be non-negative")

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (stable field names)."""
        return {
            "trace_id": self.trace_id,
            "shard_id": self.shard_id,
            "parent_span_id": self.parent_span_id,
        }

    def to_json(self) -> str:
        """Canonical JSON rendering (sorted keys, minimal separators)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "TraceContext":
        """Inverse of :meth:`to_dict`."""
        parent = payload.get("parent_span_id")
        return cls(
            trace_id=str(payload["trace_id"]),
            shard_id=int(payload["shard_id"]),
            parent_span_id=int(parent) if parent is not None else None,
        )

    @classmethod
    def from_json(cls, text: str) -> "TraceContext":
        """Parse a context from its JSON rendering."""
        return cls.from_dict(json.loads(text))
