"""Tests for user profiles."""

import numpy as np
import pytest

from repro.negotiation import FirmStrategy, TimeDependentStrategy, TitForTatStrategy
from repro.personalization import UserProfile, make_strategy


def _profile(interests=None, **kwargs):
    if interests is None:
        interests = np.array([0.5, 0.3, 0.2])
    return UserProfile(user_id="iris", interests=interests, **kwargs)


class TestValidation:
    def test_interests_normalised(self):
        profile = _profile(np.array([2.0, 2.0, 0.0]))
        np.testing.assert_allclose(profile.interests, [0.5, 0.5, 0.0])

    def test_negative_interests_rejected(self):
        with pytest.raises(ValueError):
            _profile(np.array([0.5, -0.5, 1.0]))

    def test_zero_interests_rejected(self):
        with pytest.raises(ValueError):
            _profile(np.zeros(3))

    def test_unknown_style_rejected(self):
        with pytest.raises(ValueError):
            _profile(negotiation_style="aggressive")

    def test_mode_preference_normalised(self):
        profile = _profile(mode_preference={"query": 2.0, "browse": 1.0, "feed": 1.0})
        assert profile.mode_preference["query"] == 0.5

    def test_incomplete_modes_rejected(self):
        with pytest.raises(ValueError):
            _profile(mode_preference={"query": 1.0})

    def test_negative_price_sensitivity_rejected(self):
        with pytest.raises(ValueError):
            _profile(price_sensitivity=-0.1)


class TestInterest:
    def test_interest_in_own_vector_is_one(self):
        profile = _profile()
        assert profile.interest_in(profile.interests) == pytest.approx(1.0)

    def test_orthogonal_interest_zero(self):
        profile = _profile(np.array([1.0, 0.0, 0.0]))
        assert profile.interest_in(np.array([0.0, 1.0, 0.0])) == 0.0

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            _profile().interest_in(np.ones(5))

    def test_similarity_symmetric(self):
        a = _profile(np.array([0.7, 0.2, 0.1]))
        b = UserProfile(user_id="jason", interests=np.array([0.1, 0.2, 0.7]))
        assert a.similarity(b) == pytest.approx(b.similarity(a))


class TestStrategyMapping:
    def test_boulware(self):
        strategy = make_strategy("boulware")
        assert isinstance(strategy, TimeDependentStrategy)
        assert strategy.e < 1

    def test_tit_for_tat(self):
        assert isinstance(make_strategy("tit-for-tat"), TitForTatStrategy)

    def test_firm(self):
        assert isinstance(make_strategy("firm"), FirmStrategy)

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_strategy("nonsense")

    def test_profile_strategy(self):
        profile = _profile(negotiation_style="conceder")
        assert profile.strategy().e > 1


class TestCopy:
    def test_copy_is_independent(self):
        profile = _profile()
        clone = profile.copy()
        clone.mode_preference["query"] = 0.0
        assert profile.mode_preference["query"] > 0

    def test_with_interests(self):
        profile = _profile()
        updated = profile.with_interests(np.array([1.0, 0.0, 0.0]))
        assert updated.interests[0] == 1.0
        assert profile.interests[0] == 0.5
