"""Tests for the circuit-breaker state machine and the shared board."""

import pytest

from repro.qos import QoSRequirement, QoSVector
from repro.qos.monitor import ContractMonitor
from repro.qos.sla import SLAContract
from repro.resilience import BreakerBoard, BreakerPolicy, BreakerState, CircuitBreaker


class Clock:
    """A settable virtual clock for breaker tests."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@pytest.fixture
def clock():
    return Clock()


def make_breaker(clock, failure_threshold=3, recovery_time=10.0, half_open_trials=1):
    policy = BreakerPolicy(
        failure_threshold=failure_threshold,
        recovery_time=recovery_time,
        half_open_trials=half_open_trials,
    )
    return CircuitBreaker(policy, clock)


class TestCircuitBreaker:
    def test_starts_closed_and_allows(self, clock):
        breaker = make_breaker(clock)
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()

    def test_opens_after_consecutive_failures(self, clock):
        breaker = make_breaker(clock, failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow()

    def test_success_resets_failure_streak(self, clock):
        breaker = make_breaker(clock, failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED

    def test_half_opens_after_recovery_time(self, clock):
        breaker = make_breaker(clock, failure_threshold=1, recovery_time=10.0)
        breaker.record_failure()
        assert not breaker.allow()
        clock.now = 9.9
        assert breaker.state is BreakerState.OPEN
        clock.now = 10.0
        assert breaker.state is BreakerState.HALF_OPEN
        assert breaker.allow()

    def test_probe_success_closes(self, clock):
        breaker = make_breaker(clock, failure_threshold=1, recovery_time=5.0)
        breaker.record_failure()
        clock.now = 6.0
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED

    def test_probe_failure_reopens_and_resets_timer(self, clock):
        breaker = make_breaker(clock, failure_threshold=1, recovery_time=5.0)
        breaker.record_failure()
        clock.now = 6.0
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        clock.now = 10.0  # only 4 units since re-open: still open
        assert breaker.state is BreakerState.OPEN
        clock.now = 11.0
        assert breaker.state is BreakerState.HALF_OPEN

    def test_multiple_probe_trials_required(self, clock):
        breaker = make_breaker(
            clock, failure_threshold=1, recovery_time=1.0, half_open_trials=2
        )
        breaker.record_failure()
        clock.now = 2.0
        breaker.record_success()
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED

    def test_transitions_are_recorded_with_times(self, clock):
        breaker = make_breaker(clock, failure_threshold=1, recovery_time=5.0)
        breaker.record_failure()
        clock.now = 7.0
        breaker.record_success()
        states = [state for __, state in breaker.transitions]
        assert states == [
            BreakerState.OPEN, BreakerState.HALF_OPEN, BreakerState.CLOSED
        ]
        assert breaker.transitions[0][0] == 0.0


class TestBreakerBoard:
    def test_sources_are_isolated(self, clock):
        board = BreakerBoard(BreakerPolicy(failure_threshold=1), clock)
        board.record_failure("bad")
        assert not board.allow("bad")
        assert board.allow("good")
        assert board.open_sources() == ["bad"]

    def test_compliance_events_trip_breaker(self, clock):
        board = BreakerBoard(
            BreakerPolicy(failure_threshold=2, compliance_floor=0.5), clock
        )
        board.observe_compliance("s1", 0.9)  # fine
        board.observe_compliance("s1", 0.2)
        board.observe_compliance("s1", 0.1)
        assert board.state("s1") is BreakerState.OPEN

    def test_transition_listener_fires_once_per_change(self, clock):
        board = BreakerBoard(BreakerPolicy(failure_threshold=2), clock)
        seen = []
        board.on_transition(lambda sid, old, new: seen.append((sid, old, new)))
        board.record_failure("s1")  # still closed: no transition
        board.record_failure("s1")  # closed -> open
        assert seen == [("s1", BreakerState.CLOSED, BreakerState.OPEN)]

    def test_contract_monitor_wiring(self, clock):
        """Settlement compliance flows into breakers via on_compliance."""
        monitor = ContractMonitor()
        board = BreakerBoard(
            BreakerPolicy(failure_threshold=1, compliance_floor=0.99), clock
        )
        monitor.on_compliance(board.observe_compliance)
        contract = SLAContract(
            provider_id="flaky-src", consumer_id="iris", job_id="j1",
            requirement=QoSRequirement(min_completeness=0.9),
            base_price=1.0,
        )
        terrible = QoSVector(response_time=99.0, completeness=0.0,
                             freshness=0.0, correctness=0.0, trust=0.0)
        monitor.settle(contract, terrible)
        assert board.state("flaky-src") is BreakerState.OPEN
