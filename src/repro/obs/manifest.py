"""Deterministic run manifests and manifest diffing.

A :class:`RunManifest` is a small, canonical description of one run —
seed, config digest, event count, span count, and the full metric
snapshot — such that two runs can be *attested identical* by comparing
manifests (or their digests).  ``python -m repro.obs diff`` builds on
:func:`diff_manifests`, which reports every field/metric that drifted
between two manifests, giving benchmarks a machine-checkable trajectory.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List

#: Manifest schema version; bump on incompatible field changes.
#: "2" added the per-shard ``shards`` sections (multi-process merges).
MANIFEST_VERSION = "2"


def _jsonable(value: Any) -> Any:
    """Fallback encoder: dataclasses → dicts, sets sorted, else repr."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return dataclasses.asdict(value)
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    if isinstance(value, tuple):
        return list(value)
    return repr(value)


def canonical_json(payload: Any) -> str:
    """Canonical JSON: sorted keys, minimal separators, stable encoding."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=_jsonable
    )


def config_digest(config: Any) -> str:
    """SHA-256 hex digest of a config object's canonical JSON form.

    Accepts dataclasses (e.g. :class:`repro.core.config.AgoraConfig`),
    plain dicts, or anything JSON-encodable via :func:`canonical_json`.
    """
    return hashlib.sha256(canonical_json(config).encode("utf-8")).hexdigest()


@dataclass
class RunManifest:
    """Canonical provenance record of one run."""

    seed: int
    config_digest: str
    event_count: int
    span_count: int
    metrics: Dict[str, Any] = field(default_factory=dict)
    #: per-shard provenance sections for merged multi-process runs, keyed
    #: by decimal shard id (empty for single-process runs); *included* in
    #: drift comparison — a shard appearing, vanishing or drifting is a
    #: reportable difference
    shards: Dict[str, Any] = field(default_factory=dict)
    #: flight-recording provenance (rolling digest, event count, shard
    #: id) for runs recorded with ``enable_flight_recorder``; *included*
    #: in drift comparison — a drifted flight digest means the recordings
    #: are available for ``python -m repro.obs divergence``.  Omitted from
    #: the serialized form when empty so recorder-off manifests (and
    #: their digests) are byte-identical to pre-flight manifests.
    flight: Dict[str, Any] = field(default_factory=dict)
    #: free-form annotations (run name, scenario, host notes); *excluded*
    #: from drift comparison so two attested-identical runs may still be
    #: labelled differently
    labels: Dict[str, str] = field(default_factory=dict)
    version: str = MANIFEST_VERSION

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (stable field names)."""
        payload: Dict[str, Any] = {
            "version": self.version,
            "seed": self.seed,
            "config_digest": self.config_digest,
            "event_count": self.event_count,
            "span_count": self.span_count,
            "metrics": self.metrics,
            "shards": {key: dict(value) for key, value in self.shards.items()},
            "labels": dict(self.labels),
        }
        if self.flight:
            payload["flight"] = dict(self.flight)
        return payload

    def to_json(self) -> str:
        """Canonical JSON rendering."""
        return canonical_json(self.to_dict())

    def digest(self) -> str:
        """SHA-256 of the comparable (label-free) canonical form."""
        comparable = self.to_dict()
        comparable.pop("labels")
        return hashlib.sha256(canonical_json(comparable).encode("utf-8")).hexdigest()

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RunManifest":
        """Inverse of :meth:`to_dict`."""
        return cls(
            seed=int(payload["seed"]),
            config_digest=str(payload["config_digest"]),
            event_count=int(payload["event_count"]),
            span_count=int(payload["span_count"]),
            metrics=dict(payload.get("metrics", {})),
            shards=dict(payload.get("shards", {})),
            flight=dict(payload.get("flight", {})),
            labels=dict(payload.get("labels", {})),
            version=str(payload.get("version", MANIFEST_VERSION)),
        )

    @classmethod
    def from_json(cls, text: str) -> "RunManifest":
        """Parse a manifest from its JSON rendering."""
        return cls.from_dict(json.loads(text))


@dataclass(frozen=True)
class Drift:
    """One field or metric that differs between two manifests."""

    key: str
    left: Any
    right: Any

    def render(self) -> str:
        """One human-readable drift line."""
        return f"{self.key}: {self.left!r} != {self.right!r}"


@dataclass
class ManifestDiff:
    """The full drift report between two manifests."""

    drifts: List[Drift] = field(default_factory=list)

    @property
    def drift_count(self) -> int:
        """Number of drifted fields/metrics (0 means attested identical)."""
        return len(self.drifts)

    @property
    def clean(self) -> bool:
        """True when the two manifests are identical (labels aside)."""
        return not self.drifts

    def render(self) -> str:
        """Multi-line human-readable report."""
        if self.clean:
            return "zero drift: manifests are identical"
        lines = [f"{self.drift_count} drifted field(s):"]
        lines.extend(f"  {drift.render()}" for drift in self.drifts)
        return "\n".join(lines)


def _flatten(prefix: str, value: Any, out: Dict[str, Any]) -> None:
    if isinstance(value, dict):
        for key in sorted(value):
            _flatten(f"{prefix}.{key}" if prefix else str(key), value[key], out)
    elif isinstance(value, (list, tuple)):
        for index, item in enumerate(value):
            _flatten(f"{prefix}[{index}]", item, out)
    else:
        out[prefix] = value


def flatten_manifest(manifest: RunManifest) -> Dict[str, Any]:
    """Dotted-key scalar view of a manifest's comparable fields."""
    payload = manifest.to_dict()
    payload.pop("labels")
    flat: Dict[str, Any] = {}
    _flatten("", payload, flat)
    return flat


def diff_manifests(left: RunManifest, right: RunManifest) -> ManifestDiff:
    """Compare two manifests field-by-field and metric-by-metric.

    Labels are ignored; everything else — seed, config digest, event
    count, span count, and every flattened metric entry — must match for
    the diff to come back clean.  Keys present on only one side count as
    drift (reported against ``None`` on the other side).
    """
    flat_left = flatten_manifest(left)
    flat_right = flatten_manifest(right)
    diff = ManifestDiff()
    for key in sorted(set(flat_left) | set(flat_right)):
        left_value = flat_left.get(key)
        right_value = flat_right.get(key)
        if left_value != right_value:
            diff.drifts.append(Drift(key=key, left=left_value, right=right_value))
    return diff
