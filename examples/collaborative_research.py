"""Collaborative research: a group shops for information together.

Demonstrates §7: Iris, Jason and Maria pursue a common goal (European folk
art) under their individual profiles.  Everyone's results pool into a
shared workspace, members pick up each other's threads, and the
multi-query optimizer executes overlapping retrieval jobs only once.

Run with:  python examples/collaborative_research.py
"""


from repro import Consumer, UserProfile, build_agora
from repro.collaboration import CollaborationSession, SharedJobExecutor
from repro.query import ExecutionContext
from repro.workloads import QueryWorkloadGenerator


def main() -> None:
    agora = build_agora(seed=77, n_sources=10, items_per_source=40)
    space = agora.topic_space
    workload = QueryWorkloadGenerator(
        agora.topic_space, agora.vocabulary, agora.sim.rng.spawn("collab"),
    )

    # Three researchers with one goal, three different angles.
    members = {
        "iris": UserProfile(user_id="iris",
                            interests=space.basis("folk-jewelry", 0.9)),
        "jason": UserProfile(user_id="jason",
                             interests=space.basis("dance-forms", 0.9)),
        "maria": UserProfile(user_id="maria",
                             interests=space.basis("traditional-costume", 0.9)),
    }
    goal = space.basis("regional-history", 0.5)
    session = CollaborationSession(goal_latent=goal)
    consumers = {}
    for user_id, profile in members.items():
        session.add_member(profile)
        consumers[user_id] = Consumer(agora, profile, planner="greedy")

    # ------------------------------------------------------------------
    print("=== Round 1: everyone explores from their own angle ===")
    goal_query = workload.topic_query("regional-history", k=12)
    member_topics = {
        "iris": "folk-jewelry", "jason": "dance-forms",
        "maria": "traditional-costume",
    }
    threads = {}
    for user_id, topic in member_topics.items():
        query = workload.topic_query(topic, k=12, issuer_id=user_id)
        threads[user_id] = session.start_thread(user_id, query)
        result = consumers[user_id].ask(query)
        new = session.record_results(user_id, result.results,
                                     thread_id=threads[user_id].thread_id)
        print(f"  {user_id} ({topic}): {len(result.results)} results, "
              f"{new} new to the workspace")

    print(f"  workspace now holds {len(session.workspace)} distinct items")
    print(f"  contribution balance: {session.contribution_balance()}")

    # ------------------------------------------------------------------
    print("\n=== Round 2: Maria picks up Iris's thread ===")
    continued = threads["iris"].pick_up("maria")
    result = consumers["maria"].ask(continued)
    new = session.record_results("maria", result.results,
                                 thread_id=threads["iris"].thread_id)
    print("  maria re-ran Iris's query under her own profile: "
          f"{new} new items (thread takeovers: {threads['iris'].taken_over_by})")

    # ------------------------------------------------------------------
    print("\n=== Multi-query optimization: shared jobs run once ===")
    shared_query = workload.topic_query("regional-history", k=10)
    context = ExecutionContext(
        registry=agora.registry, oracle=agora.oracle,
        calibrator=agora.calibrator if agora.calibrator.is_fitted else None,
        consumer_id="group",
    )
    mqo = SharedJobExecutor(context)
    # Each member plans the same goal query; plans overlap heavily.
    plans, queries = {}, {}
    for user_id, consumer in consumers.items():
        plan, __, __unserved = consumer.plan_query(shared_query)
        plans[user_id] = plan
        queries[user_id] = shared_query
    shared = mqo.execute(plans, queries)
    report = shared.report
    print(f"  {report.total_jobs} jobs across {len(plans)} members, "
          f"{report.distinct_jobs} distinct → "
          f"{report.jobs_saved} executions saved "
          f"({report.savings_ratio:.0%})")

    # ------------------------------------------------------------------
    print("\n=== Group coverage vs solo coverage ===")
    reachable_relevant = 0
    seen = set()
    for source in agora.sources.values():
        for item in source.visible_items(agora.now):
            if item.item_id not in seen and agora.oracle.is_relevant(goal_query, item):
                seen.add(item.item_id)
                reachable_relevant += 1
    coverage = session.group_coverage(agora.oracle, goal_query,
                                      reachable_relevant)
    solo = len(session.workspace.contributions_by("iris"))
    print(f"  relevant items reachable in the agora: {reachable_relevant}")
    print(f"  group coverage: {coverage:.0%} "
          f"(iris alone contributed {solo} of "
          f"{len(session.workspace)} workspace items)")


if __name__ == "__main__":
    main()
