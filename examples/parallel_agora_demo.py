"""Scale out the matching plane: the same agora, with or without shards.

Runs a seeded agora scenario — queries scheduled on the virtual
timeline, update streams ingesting live between them — once with the
shard pool enabled (``repro.parallel``) and writes:

    runs/<name>/results.json        ranked outputs with hex-exact scores
    runs/<name>/manifest.json       run manifest
    runs/<name>/metrics.jsonl       merged metrics export
    runs/<name>/spans.jsonl         coordinator span stream
    runs/<name>/flight/             byte-stable flight recording
    runs/<name>/shard-<k>/shard.json  per-worker telemetry snapshot

The parallel plane's whole contract is that it changes *where* scoring
runs, never *what* it returns: with the same seed, the ranked items, the
hex-rendered scores, and the flight recording are byte-identical whether
sharding is on or off, and across repeated sharded runs.  CI attests
both::

    python examples/parallel_agora_demo.py --seed 11 --shards 2 --out runs/par-a
    python examples/parallel_agora_demo.py --seed 11 --shards 2 --out runs/par-b
    python examples/parallel_agora_demo.py --seed 11 --no-parallel --out runs/seq
    cmp runs/par-a/flight/footer.json runs/par-b/flight/footer.json
    cmp runs/par-a/results.json runs/seq/results.json

``--check-parity`` runs the sharded and sequential variants back to back
in one process and asserts the outputs are bitwise equal before writing
anything — the smoke-level version of the differential property suite in
``tests/parallel/``.
"""

import argparse
import json
import struct
from pathlib import Path

from repro import Consumer, QoSRequirement, UserProfile, build_agora
from repro.obs import export_run, write_shard_snapshot
from repro.workloads import QueryWorkloadGenerator

#: Virtual-time spacing between scheduled queries.
QUERY_SPACING = 5.0

#: Topics queried in order; repeats probe the engine's warm caches.
TOPICS = ("folk-jewelry", "dance-forms", "folk-jewelry", "auction-market")


def run_scenario(seed: int, shards: int, parallel: bool) -> dict:
    """One seeded scenario; returns the agora plus digestable outputs."""
    from repro.data import reset_item_ids

    reset_item_ids()  # comparable corpora across runs in one process
    agora = build_agora(
        seed=seed,
        n_sources=8,
        items_per_source=40,
        calibration_pairs=0,
        enable_tracing=True,
        enable_flight_recorder=True,
        enable_parallel=parallel,
        n_shards=shards,
        start_update_streams=True,
    )
    workload = QueryWorkloadGenerator(
        agora.topic_space, agora.vocabulary, agora.sim.rng.spawn("par-demo"),
    )
    profile = UserProfile(
        user_id="parallel-demo-user",
        interests=agora.topic_space.basis("folk-jewelry", 0.9),
    )
    consumer = Consumer(agora, profile, planner="trading")
    outcomes = []
    assert agora.tracer is not None
    with agora.tracer.span("drive", parallel=parallel, shards=shards):
        for index, topic in enumerate(TOPICS):
            query = workload.topic_query(
                topic, k=8,
                requirement=QoSRequirement(
                    min_completeness=0.2, min_correctness=0.5
                ),
            )
            agora.sim.schedule(
                QUERY_SPACING * index + QUERY_SPACING / 2,
                (lambda q=query: outcomes.append(consumer.ask(q))),
                tag=f"query-{index}",
            )
        # Update streams keep ingesting between queries, so later ranks
        # run over pools the shard mirrors had to extend incrementally.
        agora.run(until=QUERY_SPACING * (len(TOPICS) + 1))
    return {"agora": agora, "outcomes": outcomes}


def digest(outcomes) -> dict:
    """Ranked outputs with scores rendered hex-exact (bitwise attest)."""
    queries = []
    for outcome in outcomes:
        queries.append({
            "matches": [
                {
                    "item_id": match.item.item_id,
                    "score_hex": struct.pack("<d", match.score).hex(),
                }
                for match in outcome.results.matches
            ],
            "utility_hex": struct.pack("<d", outcome.utility).hex(),
        })
    return {"queries": queries}


def export(out: str, scenario: dict, parallel: bool) -> None:
    agora = scenario["agora"]
    target = Path(out)
    target.mkdir(parents=True, exist_ok=True)
    payload = digest(scenario["outcomes"])
    if parallel:
        snapshots = agora.parallel_snapshots()
        payload["fallbacks"] = agora.parallel.pool.fallbacks
        for snapshot in snapshots:
            write_shard_snapshot(
                snapshot, target / f"shard-{snapshot.shard_id}" / "shard.json"
            )
    (target / "results.json").write_text(
        json.dumps(payload, indent=1, sort_keys=True) + "\n"
    )
    manifest = agora.run_manifest(scenario="parallel-agora-demo")
    written = export_run(
        out, manifest, registry=agora.sim.metrics, tracer=agora.tracer,
        flight=agora.flight,
    )
    agora.stop_parallel()
    for kind in sorted(written):
        print(f"{kind}: {written[kind]}")
    print(f"results: {target / 'results.json'}")


def check_parity(seed: int, shards: int) -> None:
    """Sharded vs sequential in one process: outputs must match bitwise."""
    sharded = run_scenario(seed, shards, parallel=True)
    sharded_digest = digest(sharded["outcomes"])
    assert sharded["agora"].parallel.pool.fallbacks == 0
    sharded["agora"].stop_parallel()
    sequential = run_scenario(seed, shards, parallel=False)
    sequential_digest = digest(sequential["outcomes"])
    if sharded_digest != sequential_digest:
        raise SystemExit("PARITY FAILURE: sharded != sequential output")
    n_queries = len(sharded_digest["queries"])
    print(f"parity ok: {n_queries} queries bitwise identical "
          f"(shards={shards} vs in-process)")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--out", default="runs/parallel-demo")
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument(
        "--no-parallel", action="store_true",
        help="run the identical scenario without the shard pool",
    )
    parser.add_argument(
        "--check-parity", action="store_true",
        help="run sharded and sequential back to back; assert bitwise equality",
    )
    args = parser.parse_args()
    if args.check_parity:
        check_parity(args.seed, args.shards)
        return
    parallel = not args.no_parallel
    scenario = run_scenario(args.seed, args.shards, parallel)
    export(args.out, scenario, parallel)


if __name__ == "__main__":
    main()
