"""Event queue for the discrete-event simulation kernel.

Events are ordered by (time, priority, sequence number).  The sequence
number guarantees a deterministic total order even when many events share
a timestamp, which is essential for reproducibility.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Attributes
    ----------
    time:
        Virtual time at which the event fires.
    priority:
        Tie-breaker among events at the same time; lower fires first.
    seq:
        Monotone sequence number assigned by the queue; final tie-breaker.
    action:
        Zero-argument callable executed when the event fires.
    tag:
        Optional human-readable label used in traces.
    span_id:
        Causal context captured at scheduling time: the id of the span
        that was active when the event was pushed (``None`` untraced).
        The kernel resumes that span around the callback so span trees
        survive the trip through the queue.
    """

    time: float
    priority: int
    seq: int
    action: Callable[[], Any] = field(compare=False)
    tag: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)
    span_id: Optional[int] = field(default=None, compare=False)

    def cancel(self) -> None:
        """Mark the event so the kernel skips it when popped."""
        self.cancelled = True


class EventQueue:
    """A priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._counter = itertools.count()

    def push(
        self,
        time: float,
        action: Callable[[], Any],
        priority: int = 0,
        tag: str = "",
        span_id: Optional[int] = None,
    ) -> Event:
        """Schedule ``action`` at virtual ``time`` and return the event."""
        if time < 0:
            raise ValueError(f"event time must be non-negative, got {time}")
        event = Event(
            time=time,
            priority=priority,
            seq=next(self._counter),
            action=action,
            tag=tag,
            span_id=span_id,
        )
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the next non-cancelled event, or ``None``."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> Optional[float]:
        """Return the fire time of the next live event without popping."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def __bool__(self) -> bool:
        return self.peek_time() is not None
