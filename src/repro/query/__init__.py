"""Query model, plan algebra, execution, and ground-truth auditing.

Public API:

- :class:`Query`, :class:`Subquery`, :class:`QueryKind`, :func:`decompose`.
- Plan algebra: :class:`Retrieve`, :class:`Merge`, :class:`TopK`,
  :class:`Threshold`, :func:`standard_plan`.
- :class:`QueryExecutor`, :class:`ExecutionContext`,
  :class:`ExecutionResult`.
- :class:`RelevanceOracle` — latent ground-truth auditing (completeness,
  correctness, NDCG, freshness).
"""

from repro.query.adaptive import (
    AdaptiveExecutor,
    AdaptiveResult,
    Reassignment,
    fallbacks_from_registry,
)
from repro.query.algebra import (
    Merge,
    PlanNode,
    Retrieve,
    Threshold,
    TopK,
    standard_plan,
)
from repro.query.execution import ExecutionContext, ExecutionResult, QueryExecutor
from repro.query.model import (
    PruneHint,
    Query,
    QueryKind,
    Subquery,
    decompose,
    reset_query_ids,
)
from repro.query.oracle import RelevanceOracle

__all__ = [
    "AdaptiveExecutor",
    "AdaptiveResult",
    "ExecutionContext",
    "ExecutionResult",
    "Merge",
    "PlanNode",
    "PruneHint",
    "Query",
    "QueryExecutor",
    "Reassignment",
    "QueryKind",
    "RelevanceOracle",
    "Retrieve",
    "Subquery",
    "Threshold",
    "TopK",
    "decompose",
    "fallbacks_from_registry",
    "reset_query_ids",
    "standard_plan",
]
