"""Tests for typed information items."""

import numpy as np
import pytest

from repro.data import (
    CompoundObject,
    InformationItem,
    MediaObject,
    TextDocument,
    combined_latent,
    item_census,
    make_item_id,
)


def _item(item_id="i1", latent=None):
    return InformationItem(
        item_id=item_id,
        domain="museum",
        latent=latent if latent is not None else np.array([0.5, 0.5]),
        created_at=10.0,
    )


class TestBaseItem:
    def test_age(self):
        assert _item().age(now=15.0) == 5.0

    def test_age_never_negative(self):
        assert _item().age(now=3.0) == 0.0

    def test_identity_equality(self):
        a = _item("same")
        b = _item("same")
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality(self):
        assert _item("a") != _item("b")

    def test_item_type(self):
        assert _item().item_type == "InformationItem"

    def test_make_item_id_unique(self):
        ids = {make_item_id("x") for __ in range(100)}
        assert len(ids) == 100


class TestTextDocument:
    def test_length(self):
        doc = TextDocument(
            item_id="t1", domain="thesis", latent=np.array([1.0]),
            terms={"w1": 3, "w2": 2},
        )
        assert doc.length == 5

    def test_type_name(self):
        doc = TextDocument(item_id="t1", domain="d", latent=np.array([1.0]))
        assert doc.item_type == "TextDocument"


class TestCompoundObject:
    def test_negative_weight_rejected(self):
        part = _item("p")
        with pytest.raises(ValueError):
            CompoundObject(
                item_id="c", domain="d", latent=np.array([1.0, 0.0]),
                parts=[(part, -1.0)],
            )

    def test_flat_parts_recursive(self):
        leaf1, leaf2 = _item("l1"), _item("l2")
        inner = CompoundObject(
            item_id="inner", domain="d", latent=np.array([1.0, 0.0]),
            parts=[(leaf1, 2.0)],
        )
        outer = CompoundObject(
            item_id="outer", domain="d", latent=np.array([1.0, 0.0]),
            parts=[(inner, 0.5), (leaf2, 1.0)],
        )
        flattened = outer.flat_parts()
        assert (leaf1, 1.0) in flattened
        assert (leaf2, 1.0) in flattened

    def test_combined_latent_weighted_average(self):
        a = _item("a", latent=np.array([1.0, 0.0]))
        b = _item("b", latent=np.array([0.0, 1.0]))
        latent = combined_latent([(a, 3.0), (b, 1.0)])
        np.testing.assert_allclose(latent, [0.75, 0.25])

    def test_combined_latent_empty_rejected(self):
        with pytest.raises(ValueError):
            combined_latent([])

    def test_combined_latent_zero_weight_rejected(self):
        with pytest.raises(ValueError):
            combined_latent([(_item("a"), 0.0)])


class TestCensus:
    def test_counts_by_type(self):
        items = [
            _item("a"),
            TextDocument(item_id="t", domain="d", latent=np.array([1.0])),
            TextDocument(item_id="t2", domain="d", latent=np.array([1.0])),
        ]
        census = item_census(items)
        assert census == {"InformationItem": 1, "TextDocument": 2}

    def test_media_kind(self):
        media = MediaObject(
            item_id="m", domain="d", latent=np.array([1.0]),
            true_features=np.ones(4),
        )
        assert media.media_kind == "image"
