"""AGR004 — exact float equality on simulation timestamps.

Virtual times are accumulated floats; two logically simultaneous events
can differ by one ulp depending on the arithmetic path that produced
them.  ``==``/``!=`` on time-like values therefore encodes a latent
platform dependence — compare with a tolerance or restructure so the
kernel's (time, priority, seq) ordering decides.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.rules.base import Rule, RuleContext
from repro.analysis.violations import Violation

_TIME_NAMES = frozenset(
    {
        "now",
        "time",
        "timestamp",
        "elapsed",
        "deadline",
        "latency",
        "response_time",
        "recovery_time",
        "arrival",
        "due",
    }
)

_TIME_SUFFIXES = ("_time", "_at", "_deadline", "_elapsed", "_latency")


def _time_like_name(expr: ast.expr) -> Optional[str]:
    """The time-ish identifier an expression reads, if any."""
    name: Optional[str] = None
    if isinstance(expr, ast.Name):
        name = expr.id
    elif isinstance(expr, ast.Attribute):
        name = expr.attr
    if name is None:
        return None
    if name in _TIME_NAMES or name.endswith(_TIME_SUFFIXES):
        return name
    return None


class FloatTimeEqualityRule(Rule):
    """Flag ``==`` / ``!=`` where either side is a simulation timestamp."""

    rule_id = "AGR004"
    title = "float equality on timestamps"
    rationale = (
        "Accumulated virtual times differ by ulps across arithmetic paths; "
        "exact comparison is platform-dependent."
    )

    def check(self, ctx: RuleContext) -> Iterator[Violation]:
        if not ctx.in_package("repro", "benchmarks", "examples"):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            ops = node.ops
            for i, op in enumerate(ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[i], operands[i + 1]
                if any(
                    isinstance(side, ast.Constant) and side.value is None
                    for side in (left, right)
                ):
                    continue
                name = _time_like_name(left) or _time_like_name(right)
                if name is None:
                    continue
                yield self.violation(
                    ctx,
                    node,
                    f"exact float comparison on timestamp `{name}`; use a "
                    "tolerance (math.isclose) or order-based logic",
                )
