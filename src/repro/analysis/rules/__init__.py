"""The determinism/simulation-safety rule registry.

``DEFAULT_RULES`` is the canonical ordered tuple the engine runs;
``RULE_INDEX`` maps rule ids to instances for CLI ``--rules`` selection
and documentation generators.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.analysis.rules.base import Rule, RuleContext
from repro.analysis.rules.defaults import MutableDefaultRule
from repro.analysis.rules.exceptions import OverbroadExceptRule
from repro.analysis.rules.floats import FloatTimeEqualityRule
from repro.analysis.rules.internals import KernelInternalsRule
from repro.analysis.rules.layers import LayeringRule
from repro.analysis.rules.ordering import UnorderedIterationRule
from repro.analysis.rules.randomness import UnseededRandomnessRule
from repro.analysis.rules.wallclock import WallClockRule

DEFAULT_RULES: Tuple[Rule, ...] = (
    WallClockRule(),
    UnseededRandomnessRule(),
    UnorderedIterationRule(),
    FloatTimeEqualityRule(),
    MutableDefaultRule(),
    KernelInternalsRule(),
    OverbroadExceptRule(),
    LayeringRule(),
)

RULE_INDEX: Dict[str, Rule] = {rule.rule_id: rule for rule in DEFAULT_RULES}

for _rule in DEFAULT_RULES:
    if not _rule.rule_id or _rule.rule_id == "AGR000":
        raise RuntimeError(
            f"{type(_rule).__name__} must declare a unique rule_id "
            "(AGR000 is reserved for unused-suppression findings)"
        )
del _rule

__all__ = [
    "DEFAULT_RULES",
    "RULE_INDEX",
    "FloatTimeEqualityRule",
    "KernelInternalsRule",
    "LayeringRule",
    "MutableDefaultRule",
    "OverbroadExceptRule",
    "Rule",
    "RuleContext",
    "UnorderedIterationRule",
    "UnseededRandomnessRule",
    "WallClockRule",
]
