"""Multi-query optimization across collaborating members.

"Collaboration also brings up several variations of the multiple query
optimization problem where different user profiles are used for different
queries" (§7).  When members of a session issue queries over the same
goal, their plans share retrieval jobs (same source × same domain × same
evidence).  The :class:`SharedJobExecutor` detects the overlap, executes
each distinct job once, and distributes the raw answers to every member —
who then applies their *own* personalized post-processing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Mapping

from repro.query.algebra import PlanNode, Retrieve
from repro.query.execution import ExecutionContext, QueryExecutor
from repro.query.model import Query
from repro.uncertainty.results import UncertainResultSet


def job_key(leaf: Retrieve) -> Hashable:
    """Identity of a retrieval job for sharing purposes.

    Two leaves are the same job when they target the same source and
    domain with the same evidence (terms or reference item).
    """
    parent = leaf.subquery.parent
    if parent.terms is not None:
        evidence: Hashable = tuple(sorted(parent.terms.items()))
    elif parent.reference_item is not None:
        evidence = parent.reference_item.item_id
    else:
        evidence = parent.query_id
    return (leaf.source_id, leaf.subquery.domain, evidence, parent.k)


@dataclass
class SharingReport:
    """How much work sharing saved."""

    total_jobs: int
    distinct_jobs: int

    @property
    def jobs_saved(self) -> int:
        """Executions avoided by sharing."""
        return self.total_jobs - self.distinct_jobs

    @property
    def savings_ratio(self) -> float:
        """Saved / total job executions."""
        if self.total_jobs == 0:
            return 0.0
        return self.jobs_saved / self.total_jobs


@dataclass
class SharedExecutionResult:
    """Per-member results of a shared execution round."""

    member_results: Dict[str, UncertainResultSet]
    report: SharingReport


class SharedJobExecutor:
    """Executes members' plans with common-job sharing.

    Parameters
    ----------
    context:
        Execution context (registry, oracle, calibrator, ...).  Shared by
        all members — personalization happens after retrieval.
    """

    def __init__(self, context: ExecutionContext):
        self.context = context

    def analyse(self, plans: Mapping[str, PlanNode]) -> SharingReport:
        """Count shareable jobs without executing anything."""
        total = 0
        distinct = set()
        for plan in plans.values():
            for leaf in plan.leaves():
                total += 1
                distinct.add(job_key(leaf))
        return SharingReport(total_jobs=total, distinct_jobs=len(distinct))

    def execute(
        self,
        plans: Mapping[str, PlanNode],
        queries: Mapping[str, Query],
    ) -> SharedExecutionResult:
        """Run all members' plans, evaluating each distinct job once.

        Each member's final result set is the merge of their own plan's
        job results, truncated to their query's k.
        """
        if set(plans) != set(queries):
            raise ValueError("plans and queries must cover the same members")
        executor = QueryExecutor(self.context)
        cache: Dict[Hashable, UncertainResultSet] = {}
        total = 0
        member_results: Dict[str, UncertainResultSet] = {}
        for member_id in sorted(plans):
            plan = plans[member_id]
            query = queries[member_id]
            merged = UncertainResultSet()
            for leaf in plan.leaves():
                total += 1
                key = job_key(leaf)
                if key not in cache:
                    results, __, __answer = executor.execute_leaf(leaf)
                    cache[key] = results
                merged = merged.merge(cache[key])
            member_results[member_id] = merged.top_k(query.k)
        report = SharingReport(total_jobs=total, distinct_jobs=len(cache))
        return SharedExecutionResult(member_results=member_results, report=report)
