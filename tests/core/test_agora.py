"""Tests for the Agora facade."""

import pytest

from repro import AgoraConfig, build_agora


@pytest.fixture(scope="module")
def agora():
    return build_agora(seed=11, n_sources=6, items_per_source=25,
                       calibration_pairs=300)


class TestConfig:
    def test_invalid_sources(self):
        with pytest.raises(ValueError):
            AgoraConfig(n_sources=0)

    def test_invalid_topology(self):
        with pytest.raises(ValueError):
            AgoraConfig(topology="donut")

    def test_invalid_planner(self):
        with pytest.raises(ValueError):
            AgoraConfig(planner="magic")

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            AgoraConfig(coverage_range=(0.9, 0.1))

    def test_builder_rejects_config_plus_overrides(self):
        with pytest.raises(ValueError):
            build_agora(AgoraConfig(), seed=3)


class TestConstruction:
    def test_sources_created(self, agora):
        assert len(agora.sources) == 6
        census = agora.source_census()
        assert all(count > 0 for count in census.values())

    def test_domains_covered(self, agora):
        domains = agora.available_domains()
        assert "museum" in domains
        assert len(domains) >= 5  # all iris domains with 6 sources

    def test_registry_consistent(self, agora):
        assert len(agora.registry) == 6
        for source_id in agora.sources:
            assert source_id in agora.registry

    def test_topology_has_consumer_node(self, agora):
        assert agora.consumer_node() in agora.topology.nodes
        assert agora.topology.node_count == 7

    def test_calibrator_fitted(self, agora):
        assert agora.calibrator.is_fitted

    def test_latency_to_source_nonnegative(self, agora):
        node = agora.consumer_node()
        for source_id in agora.sources:
            assert agora.latency_to_source(node, source_id) >= 0.0

    def test_deterministic_given_seed(self):
        a = build_agora(seed=3, n_sources=4, items_per_source=10, calibration_pairs=0)
        b = build_agora(seed=3, n_sources=4, items_per_source=10, calibration_pairs=0)
        assert a.source_census() == b.source_census()
        assert sorted(a.topology.graph.edges) == sorted(b.topology.graph.edges)

    def test_run_advances_time(self, agora):
        before = agora.now
        agora.run(until=before + 5.0)
        assert agora.now == before + 5.0


class TestFeeds:
    def test_update_streams_wired(self, agora):
        assert len(agora.update_streams) == 6

    def test_feeds_flow_when_started(self):
        agora = build_agora(seed=5, n_sources=4, items_per_source=5,
                            calibration_pairs=0, start_update_streams=True)
        agora.run(until=50.0)
        published = sum(stream.published for stream in agora.update_streams)
        assert published > 0
        assert agora.feeds.items_screened == published


class TestTopologies:
    @pytest.mark.parametrize("kind", ["random", "small-world", "scale-free", "star"])
    def test_all_topology_kinds_build(self, kind):
        agora = build_agora(seed=2, n_sources=5, items_per_source=5,
                            topology=kind, calibration_pairs=0)
        assert agora.topology.node_count == 6
