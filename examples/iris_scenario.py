"""The paper's running example, end to end.

Iris — a researcher of European folk jewelry — queries museums and
auctions, subscribes to automatic feeds, annotates finds into her personal
information base, and shares results with Jason, a colleague working on
traditional dance forms.  Along the way every Open Agora mechanism fires:
uncertain matching, SLA contracts, personalization, socialization via
their friendship, and multi-modal interaction.

Run with:  python examples/iris_scenario.py
"""

from repro import QoSRequirement, build_agora
from repro.social import AffinityIndex, SocialRanker
from repro.workloads import build_iris_scenario


def main() -> None:
    agora = build_agora(seed=2007, n_sources=10, items_per_source=50)
    scenario = build_iris_scenario(agora)
    iris, jason = scenario.iris, scenario.jason

    # ------------------------------------------------------------------
    print("=== 1. Iris queries the agora for folk jewelry ===")
    query = scenario.workload.topic_query(
        "folk-jewelry", k=10, issuer_id="iris",
        requirement=QoSRequirement(min_completeness=0.2),
        target_domains=("museum", "auction", "cultural-org"),
    )
    result = iris.ask(query)
    print(f"{len(result.ranked_items)} results from "
          f"{len(result.contracts)} contracted sources, "
          f"utility {result.utility:.3f}")

    # Save the best finds into her personal information base + annotate.
    for item in result.ranked_items[:3]:
        scenario.save_to_base("iris", item)
        record = scenario.annotations.annotate(
            "iris", item, text="candidate for the comparative study",
            comparison_threshold=0.3,
        )
        print(f"  saved + annotated {item.item_id} "
              f"(standing comparison #{record.standing_id})")

    # ------------------------------------------------------------------
    print("\n=== 2. Automatic feeds: new auction material flows in ===")
    agora.start_feeds()
    agora.run(until=agora.now + 60.0)
    hits = iris.feed_inbox() + agora.feeds.drain("iris")
    print(f"{len(hits)} feed hits matched Iris's annotations/subscriptions "
          f"out of {agora.feeds.items_screened} published items")
    for hit in hits[:3]:
        print(f"  feed hit: {hit.match.item.item_id} "
              f"(p={hit.match.probability:.2f}, from {hit.match.source_id})")

    # ------------------------------------------------------------------
    print("\n=== 3. Socialization: Jason's perspective shifts Iris's ranking ===")
    index = AffinityIndex(scenario.profile_store, scenario.social_graph,
                          privacy=scenario.privacy)
    neighbours = index.neighbourhood(iris.active_profile(), k=3)
    print("Iris's visible neighbourhood: "
          f"{[(n.user_id, round(n.affinity, 2)) for n in neighbours]}")
    costume_query = scenario.workload.topic_query(
        "traditional-costume", k=10, issuer_id="iris",
    )
    plain = iris.ask(costume_query, personalize=True)
    social_ranker = SocialRanker(
        iris.personalized_ranker(), neighbours, social_weight=0.5,
    )
    social = iris.ask(costume_query, social_ranker=social_ranker)
    print("top-3 personal:", [i.item_id for i in plain.ranked_items[:3]])
    print("top-3 social:  ", [i.item_id for i in social.ranked_items[:3]])

    # ------------------------------------------------------------------
    print("\n=== 4. Jason browses serendipitously ===")
    from repro.multimodal import Browser, BrowseGraph

    items = []
    for source in agora.sources.values():
        items.extend(source.visible_items(agora.now)[:8])
    graph = BrowseGraph(agora.engine, k_links=4)
    graph.build(items[:60])
    browser = Browser(
        graph, jason.active_profile(), concept_fn=jason.concept_of,
        streams=agora.sim.rng.spawn("jason-browse"), temperature=1.0,
    )
    trail = browser.walk(steps=10)
    domains_seen = [step.item.domain for step in trail]
    print(f"Jason's browse trail crossed domains: {domains_seen}")

    # ------------------------------------------------------------------
    print("\n=== 5. Trust after the session ===")
    ranked = iris.reputation.ranked()[:5]
    for source_id, score in ranked:
        ledger = agora.monitor.ledger(source_id)
        print(f"  {source_id}: trust {score:.2f} "
              f"({ledger.contracts} contracts, breach rate {ledger.breach_rate:.0%})")


if __name__ == "__main__":
    main()
