"""Continuous feeds: standing queries over source update streams.

"She immediately establishes a stream to retrieve every item from the
auction catalog and compare it with material she already has" (§9).  A
:class:`StandingQuery` is a persistent filter; the :class:`FeedService`
subscribes to source :class:`~repro.sources.streams.UpdateStream`s, scores
every new item against every standing query, and delivers hits to the
owner's inbox.

Standing queries can be *modified while running* — e.g. adding new
comparison objects — which is the paper's "modifying a query while it is
being executed".
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.data.items import InformationItem
from repro.query.model import Query
from repro.sources.streams import UpdateStream
from repro.uncertainty.calibration import BinnedCalibrator
from repro.uncertainty.matching import MatchingEngine
from repro.uncertainty.results import UncertainMatch

_STANDING_COUNTER = itertools.count()


@dataclass
class FeedHit:
    """One item delivered by a standing query."""

    standing_id: int
    match: UncertainMatch
    delivered_at: float


@dataclass
class StandingQuery:
    """A persistent filter over incoming items.

    ``comparison_items`` is the evolving set of evidence objects; a new
    item matches when its best score against any of them clears the
    threshold.
    """

    owner_id: str
    comparison_items: List[InformationItem]
    threshold: float = 0.5
    domains: Optional[Sequence[str]] = None
    standing_id: int = field(default_factory=lambda: next(_STANDING_COUNTER))
    active: bool = True

    def __post_init__(self) -> None:
        if not self.comparison_items:
            raise ValueError("standing query needs at least one comparison item")
        if not 0.0 <= self.threshold <= 1.0:
            raise ValueError("threshold must be in [0, 1]")

    def add_comparison_item(self, item: InformationItem) -> None:
        """Modify the running query: add a new object to compare against."""
        self.comparison_items.append(item)

    def targets_domain(self, domain: str) -> bool:
        """Whether this standing query screens items from ``domain``."""
        return self.domains is None or domain in self.domains

    @classmethod
    def from_query(cls, query: Query, threshold: Optional[float] = None) -> "StandingQuery":
        """Build a standing query from a one-shot query."""
        return cls(
            owner_id=query.issuer_id,
            comparison_items=[query.evidence_item()],
            threshold=threshold if threshold is not None else max(query.threshold, 0.5),
            domains=query.target_domains,
        )


class FeedService:
    """Routes new stream items through standing queries to inboxes."""

    def __init__(
        self,
        engine: MatchingEngine,
        calibrator: Optional[BinnedCalibrator] = None,
        now_fn: Callable[[], float] = lambda: 0.0,
    ):
        self.engine = engine
        self.calibrator = calibrator
        self.now_fn = now_fn
        self._standing: Dict[int, StandingQuery] = {}
        self._inboxes: Dict[str, List[FeedHit]] = {}
        self.items_screened = 0

    # ------------------------------------------------------------------
    def register(self, standing: StandingQuery) -> int:
        """Install a standing query; returns its id."""
        self._standing[standing.standing_id] = standing
        self._inboxes.setdefault(standing.owner_id, [])
        return standing.standing_id

    def cancel(self, standing_id: int) -> None:
        """Deactivate a standing query (idempotent)."""
        standing = self._standing.get(standing_id)
        if standing is not None:
            standing.active = False

    def standing_query(self, standing_id: int) -> StandingQuery:
        """Look up a registered standing query by id."""
        try:
            return self._standing[standing_id]
        except KeyError:
            raise KeyError(f"unknown standing query {standing_id}") from None

    def attach(self, stream: UpdateStream) -> None:
        """Subscribe this service to a source's update stream."""
        stream.subscribe(self.on_new_item)

    # ------------------------------------------------------------------
    def on_new_item(self, source_id: str, item: InformationItem) -> None:
        """Screen one incoming item against all active standing queries."""
        self.items_screened += 1
        for standing in self._standing.values():
            if not standing.active or not standing.targets_domain(item.domain):
                continue
            score = max(
                self.engine.score(evidence, item)
                for evidence in standing.comparison_items
            )
            if self.calibrator is not None and self.calibrator.is_fitted:
                probability = self.calibrator.predict(score)
            else:
                probability = score
            if probability >= standing.threshold:
                hit = FeedHit(
                    standing_id=standing.standing_id,
                    match=UncertainMatch(
                        item=item,
                        score=min(1.0, score),
                        probability=probability,
                        source_id=source_id,
                    ),
                    delivered_at=self.now_fn(),
                )
                self._inboxes.setdefault(standing.owner_id, []).append(hit)

    # ------------------------------------------------------------------
    def inbox(self, owner_id: str) -> List[FeedHit]:
        """Peek at an owner's undelivered hits."""
        return list(self._inboxes.get(owner_id, []))

    def drain(self, owner_id: str) -> List[FeedHit]:
        """Take and clear the owner's inbox."""
        hits = self._inboxes.get(owner_id, [])
        self._inboxes[owner_id] = []
        return hits


def reset_standing_ids() -> None:
    """Reset the standing-query counter (tests only)."""
    global _STANDING_COUNTER
    _STANDING_COUNTER = itertools.count()
