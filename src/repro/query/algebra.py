"""Logical/physical plan algebra.

A query plan is a small operator tree: ``Retrieve`` leaves (one subquery
assigned to one source) combined by ``Merge``, refined by ``Threshold``
and ``TopK``.  The optimizer (:mod:`repro.optimizer`) chooses the
``Retrieve`` assignments; the executor walks the tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Sequence

from repro.query.model import Subquery


class PlanNode:
    """Base class for plan operators."""

    children: List["PlanNode"]

    def leaves(self) -> List["Retrieve"]:
        """All ``Retrieve`` leaves in left-to-right order."""
        found: List[Retrieve] = []
        self._collect_leaves(found)
        return found

    def _collect_leaves(self, accumulator: List["Retrieve"]) -> None:
        for child in self.children:
            child._collect_leaves(accumulator)

    def walk(self) -> Iterator["PlanNode"]:
        """Pre-order traversal."""
        yield self
        for child in self.children:
            yield from child.walk()

    def depth(self) -> int:
        """Height of the plan tree."""
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)


@dataclass
class Retrieve(PlanNode):
    """Leaf: ask ``source_id`` to evaluate ``subquery``."""

    subquery: Subquery
    source_id: str
    children: List[PlanNode] = field(default_factory=list, repr=False)

    def _collect_leaves(self, accumulator: List["Retrieve"]) -> None:
        accumulator.append(self)

    @property
    def job_id(self) -> str:
        """Stable id: subquery id @ source id."""
        return f"{self.subquery.subquery_id}@{self.source_id}"


@dataclass
class Merge(PlanNode):
    """Union of children's result sets (duplicates keep best probability)."""

    children: List[PlanNode]

    def __post_init__(self) -> None:
        if not self.children:
            raise ValueError("Merge needs at least one child")


@dataclass
class TopK(PlanNode):
    """Keep the k most probable results of the child."""

    child: PlanNode
    k: int
    children: List[PlanNode] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("k must be >= 1")
        self.children = [self.child]


@dataclass
class Threshold(PlanNode):
    """Keep results with calibrated probability >= tau."""

    child: PlanNode
    tau: float
    children: List[PlanNode] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.tau <= 1.0:
            raise ValueError("tau must be in [0, 1]")
        self.children = [self.child]


def standard_plan(assignments: Sequence[Retrieve], k: int, tau: float = 0.0) -> PlanNode:
    """The canonical shape: Merge → Threshold → TopK."""
    if not assignments:
        raise ValueError("plan needs at least one retrieval")
    node: PlanNode = Merge(children=list(assignments))
    if tau > 0.0:
        node = Threshold(node, tau)
    return TopK(node, k)
