"""Negotiation marketplace: bargaining, contract nets, subcontracting.

Demonstrates §3-§4 of the paper: bilateral alternating-offers bargaining
between concession strategies, risk-priced SLA premiums, a contract-net
auction over live sources, and an intermediary reselling capacity with a
margin.

Run with:  python examples/negotiation_marketplace.py
"""

from repro import QoSRequirement, QoSWeights, build_agora
from repro.negotiation import (
    AlternatingOffersProtocol,
    CallForProposals,
    ContractNetProtocol,
    Intermediary,
    NegotiationPreferences,
    Negotiator,
    boulware,
    buyer_utility,
    conceder,
    consumer_bid_score,
    linear,
    seller_utility,
    standard_qos_issue_space,
)
from repro.optimizer import SourceBidder
from repro.qos import RiskPricedPremium


def bilateral_bargaining() -> None:
    print("=== Bilateral alternating-offers bargaining ===")
    space = standard_qos_issue_space(max_price=10.0)
    protocol = AlternatingOffersProtocol(max_rounds=40)
    matchups = [
        ("boulware buyer vs conceder seller", boulware(), conceder()),
        ("conceder buyer vs boulware seller", conceder(), boulware()),
        ("linear vs linear", linear(), linear()),
    ]
    for label, buyer_strategy, seller_strategy in matchups:
        buyer = Negotiator("buyer", NegotiationPreferences(buyer_utility(space)),
                           buyer_strategy)
        seller = Negotiator("seller", NegotiationPreferences(seller_utility(space)),
                            seller_strategy)
        outcome = protocol.run(buyer, seller)
        if outcome.agreed:
            print(f"  {label}: deal in {outcome.rounds} rounds — "
                  f"buyer u={outcome.buyer_utility:.2f}, "
                  f"seller u={outcome.seller_utility:.2f}, "
                  f"price={outcome.deal['price']:.2f}")
        else:
            print(f"  {label}: NO deal after {outcome.rounds} rounds")


def contract_net_market() -> None:
    print("\n=== Contract-net auction over live sources ===")
    agora = build_agora(seed=99, n_sources=8, items_per_source=40)
    bidders = [
        SourceBidder(source, pricing=RiskPricedPremium())
        for __, source in sorted(agora.sources.items())
        if "museum" in source.domains
    ]
    cfp = CallForProposals(
        job_id="jewelry-hunt", domain="museum",
        requirement=QoSRequirement(min_completeness=0.3, min_correctness=0.5),
        consumer_id="iris",
    )
    protocol = ContractNetProtocol(consumer_bid_score(QoSWeights()))
    outcome = protocol.run(cfp, bidders)
    print(f"  {outcome.bidders} sources bid for the job")
    for proposal in sorted(outcome.proposals, key=lambda p: p.total_price):
        marker = "  <- awarded" if proposal is outcome.awarded else ""
        print(f"  {proposal.provider_id}: total {proposal.total_price:.3f} "
              f"(premium {proposal.quote.premium:.3f}){marker}")

    # Subcontracting: a broker resells the same market with a 30% margin.
    print("\n=== Subcontracting through an intermediary ===")
    broker = Intermediary(
        "broker-hermes", bidders,
        ContractNetProtocol(consumer_bid_score(QoSWeights())), margin=0.3,
    )
    outer = ContractNetProtocol(consumer_bid_score(QoSWeights(),
                                                   price_sensitivity=0.001))
    outer.on_award(broker.on_award)
    broker_only = outer.run(cfp, [broker])
    if broker_only.awarded is not None:
        record = broker.records[-1]
        print("  broker wins when it is the only seller: pays "
              f"{record.inner.total_price:.3f} downstream "
              f"({record.inner.provider_id}), charges "
              f"{record.outer.total_price:.3f}, margin "
              f"{record.margin_earned:.3f}")
    mixed = ContractNetProtocol(consumer_bid_score(QoSWeights())).run(
        cfp, bidders + [broker]
    )
    print("  with direct sources in the market the award goes to: "
          f"{mixed.awarded.provider_id} (brokers cannot beat their own "
          "suppliers on price)")


if __name__ == "__main__":
    bilateral_bargaining()
    contract_net_market()
