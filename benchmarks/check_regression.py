"""Compare a pytest-benchmark JSON export against a committed baseline.

Usage::

    python benchmarks/check_regression.py BENCH_micro.json \
        benchmarks/baselines/BENCH_micro.json

Fails (exit 1) if any benchmark's mean time exceeds the baseline mean by
more than ``BENCH_REGRESSION_FACTOR`` (default 2.0).  Benchmarks present
on only one side are reported but never fail the check, so adding or
retiring a benchmark doesn't require regenerating the baseline in the
same commit.  pytest-benchmark's own ``--benchmark-compare`` keys storage
by machine id, which breaks across CI runners — this comparator only
looks at names and means.
"""

from __future__ import annotations

import json
import os
import sys
from typing import Dict


def load_means(path: str) -> Dict[str, float]:
    """Map benchmark name -> mean seconds from a pytest-benchmark export."""
    with open(path) as handle:
        data = json.load(handle)
    return {
        bench["name"]: float(bench["stats"]["mean"])
        for bench in data.get("benchmarks", [])
    }


def main(argv: list) -> int:
    if len(argv) != 3:
        print(__doc__)
        return 2
    current = load_means(argv[1])
    baseline = load_means(argv[2])
    factor = float(os.environ.get("BENCH_REGRESSION_FACTOR", "2.0"))
    failures = []
    for name in sorted(current):
        mean = current[name]
        base = baseline.get(name)
        if base is None:
            print(f"NEW      {name}: {mean * 1e3:.3f} ms (no baseline)")
            continue
        ratio = mean / base if base > 0 else float("inf")
        status = "FAIL" if ratio > factor else "ok"
        print(
            f"{status:<8} {name}: {mean * 1e3:.3f} ms "
            f"vs baseline {base * 1e3:.3f} ms ({ratio:.2f}x)"
        )
        if ratio > factor:
            failures.append(name)
    for name in sorted(set(baseline) - set(current)):
        print(f"MISSING  {name}: present in baseline only")
    if failures:
        print(
            f"\n{len(failures)} benchmark(s) regressed beyond {factor:.1f}x: "
            + ", ".join(failures)
        )
        return 1
    print(f"\nAll benchmarks within {factor:.1f}x of baseline.")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
