"""``python -m repro.obs`` — inspect and compare exported run artifacts.

Subcommands
-----------
``summary <manifest.json>``
    Print a run's provenance header and its metric snapshot.
``spans <spans.jsonl>``
    Render the exported span forest as an indented causal tree.
``diff <left-manifest.json> <right-manifest.json>``
    Compare two run manifests; exit 0 on zero drift, 1 when any field or
    metric drifted (the machine-checkable regression gate).

The CLI works on *files only* — recording happens wherever a run happens
(see ``examples/observability_demo.py``), keeping ``repro.obs`` at the
bottom of the layer DAG.
"""

from __future__ import annotations

import argparse
from typing import Any, Dict, List, Optional, Sequence

from repro.obs.export import load_manifest, load_spans_jsonl
from repro.obs.manifest import RunManifest, diff_manifests
from repro.obs.spans import Span, child_map


def _render_attributes(span: Span) -> str:
    if not span.attributes:
        return ""
    parts = [f"{key}={span.attributes[key]!r}" for key in sorted(span.attributes)]
    return " {" + ", ".join(parts) + "}"


def render_span_tree(spans: Sequence[Span], limit: Optional[int] = None) -> str:
    """Indented text rendering of the span forest (depth-first, id order)."""
    children = child_map(spans)
    lines: List[str] = []

    def visit(span: Span, depth: int) -> None:
        if limit is not None and len(lines) >= limit:
            return
        marker = "!" if span.status != "ok" else ""
        end = f"{span.end:.4f}" if span.end is not None else "…"
        lines.append(
            f"{'  ' * depth}#{span.span_id} {span.name}{marker} "
            f"[{span.start:.4f}→{end}]{_render_attributes(span)}"
        )
        for child in children.get(span.span_id, []):
            visit(child, depth + 1)

    for root in children.get(None, []):
        visit(root, 0)
    total = len(spans)
    if limit is not None and total > len(lines):
        lines.append(f"… ({total - len(lines)} more spans)")
    return "\n".join(lines)


def _render_summary(manifest: RunManifest, top: int) -> str:
    lines = [
        f"seed:           {manifest.seed}",
        f"config digest:  {manifest.config_digest}",
        f"manifest digest: {manifest.digest()}",
        f"events:         {manifest.event_count}",
        f"spans:          {manifest.span_count}",
    ]
    metrics: Dict[str, Any] = manifest.metrics
    counters: Dict[str, float] = dict(metrics.get("counters", {}))
    if counters:
        lines.append(f"counters ({len(counters)} total, top {top} by value):")
        ranked = sorted(counters.items(), key=lambda pair: (-pair[1], pair[0]))
        for name, value in ranked[:top]:
            lines.append(f"  {name} = {value:g}")
    histograms: Dict[str, Any] = dict(metrics.get("histograms", {}))
    if histograms:
        lines.append(f"distributions ({len(histograms)}):")
        for name in sorted(histograms)[:top]:
            summary = histograms[name]
            lines.append(
                f"  {name}: n={summary.get('count', 0):g} "
                f"mean={summary.get('mean', 0.0):.4f} "
                f"p99={summary.get('p99', 0.0):.4f}"
            )
    return "\n".join(lines)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect and compare exported observability artifacts.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    summary = subparsers.add_parser("summary", help="summarise one run manifest")
    summary.add_argument("manifest", help="path to manifest.json")
    summary.add_argument(
        "--top", type=int, default=10, help="how many metrics to show (default 10)"
    )

    spans = subparsers.add_parser("spans", help="render an exported span tree")
    spans.add_argument("spans", help="path to spans.jsonl")
    spans.add_argument(
        "--limit", type=int, default=None, help="cap the number of printed spans"
    )

    diff = subparsers.add_parser(
        "diff", help="compare two run manifests (exit 1 on drift)"
    )
    diff.add_argument("left", help="path to the first manifest.json")
    diff.add_argument("right", help="path to the second manifest.json")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "summary":
        print(_render_summary(load_manifest(args.manifest), top=args.top))
        return 0
    if args.command == "spans":
        print(render_span_tree(load_spans_jsonl(args.spans), limit=args.limit))
        return 0
    if args.command == "diff":
        report = diff_manifests(load_manifest(args.left), load_manifest(args.right))
        print(report.render())
        return 0 if report.clean else 1
    raise AssertionError(f"unhandled command {args.command!r}")
