"""Resilience policies: retry, hedging and breaker knobs.

Section 2 of the paper names the three ways a source silently drops out of
a request — overloading, unavailability, black-listing.  The policies here
decide how the *consumer side* reacts: how often to retry a declined leaf,
when to duplicate a slow one to an alternate source, and when to stop
sending work to a source at all.  All randomness (backoff jitter) is drawn
from the simulation's seeded RNG streams so recovery traces replay
bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class RetryPolicy:
    """Deadline-aware retry with exponential backoff and jitter.

    Attributes
    ----------
    max_attempts:
        Total tries against the originally assigned source (1 = no retry).
    base_delay:
        Backoff before the first retry, in virtual time units.
    multiplier:
        Exponential growth factor of the backoff between attempts.
    jitter:
        Fraction of the backoff added as uniform noise: a retry waits
        ``delay * (1 + jitter * u)`` with ``u ~ U[0, 1)`` from the seeded
        stream.  0 disables jitter.
    deadline:
        Total elapsed-time budget for one leaf, retries included.  ``None``
        falls back to the query requirement's ``max_response_time`` (and to
        unlimited when that is unset too).
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    jitter: float = 0.5
    deadline: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0:
            raise ValueError("base_delay must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if self.jitter < 0:
            raise ValueError("jitter must be non-negative")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive when set")

    def backoff_delay(self, attempt: int, rng: np.random.Generator) -> float:
        """Backoff before retry number ``attempt`` (0-indexed), jittered."""
        if attempt < 0:
            raise ValueError("attempt must be non-negative")
        delay = self.base_delay * (self.multiplier ** attempt)
        if self.jitter > 0:
            delay *= 1.0 + self.jitter * float(rng.random())
        return delay


@dataclass(frozen=True)
class HedgePolicy:
    """Hedged requests against alternate sources covering the same domain.

    A leaf whose primary answer takes longer than ``threshold`` is
    duplicated to the best alternate source; the first non-declined answer
    wins and any late-but-successful duplicate is folded into the result
    (the merge dedups by item id, so hedging never double-counts).
    """

    threshold: float = 1.0
    max_hedges: int = 1

    def __post_init__(self) -> None:
        if self.threshold < 0:
            raise ValueError("threshold must be non-negative")
        if self.max_hedges < 0:
            raise ValueError("max_hedges must be non-negative")

    def fires(self, primary_elapsed: float) -> bool:
        """Whether a hedge should be issued for this primary latency."""
        return self.max_hedges > 0 and primary_elapsed > self.threshold


@dataclass(frozen=True)
class BreakerPolicy:
    """Circuit-breaker thresholds (see :mod:`repro.resilience.breaker`)."""

    failure_threshold: int = 3
    recovery_time: float = 50.0
    half_open_trials: int = 1
    compliance_floor: float = 0.5

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.recovery_time < 0:
            raise ValueError("recovery_time must be non-negative")
        if self.half_open_trials < 1:
            raise ValueError("half_open_trials must be >= 1")
        if not 0.0 <= self.compliance_floor <= 1.0:
            raise ValueError("compliance_floor must be in [0, 1]")


@dataclass(frozen=True)
class ResilienceConfig:
    """Per-consumer resilience configuration (disabled by default)."""

    enabled: bool = False
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    hedge: HedgePolicy = field(default_factory=HedgePolicy)
    breaker: BreakerPolicy = field(default_factory=BreakerPolicy)

    @classmethod
    def default_enabled(cls) -> "ResilienceConfig":
        """A sensible everything-on configuration."""
        return cls(enabled=True)
