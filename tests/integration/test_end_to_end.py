"""End-to-end integration tests across subsystems."""


from repro import Consumer, QoSRequirement, UserProfile, build_agora
from repro.query import AdaptiveExecutor, fallbacks_from_registry
from repro.sources import PERSONAL_DOMAIN, PersonalInformationBase
from repro.workloads import QueryWorkloadGenerator, build_iris_scenario


class TestDeterminism:
    def _run_once(self, seed):
        agora = build_agora(seed=seed, n_sources=6, items_per_source=20,
                            calibration_pairs=200)
        workload = QueryWorkloadGenerator(
            agora.topic_space, agora.vocabulary, agora.sim.rng.spawn("det"),
        )
        profile = UserProfile(
            user_id="u", interests=agora.topic_space.basis("folk-jewelry", 0.9),
        )
        consumer = Consumer(agora, profile, planner="trading")
        result = consumer.ask(workload.topic_query("folk-jewelry", k=6))
        return (
            [item.item_id for item in result.ranked_items],
            result.total_price,
            result.delivered.as_dict(),
        )

    def test_same_seed_same_everything(self):
        from repro.data import reset_item_ids
        from repro.qos import reset_contract_ids
        from repro.query import reset_query_ids

        runs = []
        for __ in range(2):
            reset_item_ids()
            reset_contract_ids()
            reset_query_ids()
            runs.append(self._run_once(seed=101))
        assert runs[0] == runs[1]

    def test_different_seed_differs(self):
        from repro.data import reset_item_ids

        reset_item_ids()
        a = self._run_once(seed=101)
        reset_item_ids()
        b = self._run_once(seed=202)
        assert a[0] != b[0]


class TestChurnResilience:
    def test_queries_survive_churn(self):
        agora = build_agora(seed=7, n_sources=8, items_per_source=15,
                            calibration_pairs=150, enable_churn=True,
                            mean_uptime=30.0, mean_downtime=10.0)
        workload = QueryWorkloadGenerator(
            agora.topic_space, agora.vocabulary, agora.sim.rng.spawn("churn"),
        )
        profile = UserProfile(
            user_id="u", interests=agora.topic_space.basis("folk-jewelry", 0.9),
        )
        consumer = Consumer(agora, profile, planner="trading")
        served, empty = 0, 0
        for round_index in range(8):
            agora.run(until=agora.now + 25.0)  # let churn happen
            result = consumer.ask(workload.topic_query("folk-jewelry", k=5))
            if result.ranked_items:
                served += 1
            else:
                empty += 1
        assert agora.sim.trace.counter("net.churn_transitions") > 0
        # Churn may blank some rounds but the agora keeps functioning.
        assert served >= 4

    def test_adaptive_execution_recovers_from_down_source(self):
        agora = build_agora(seed=9, n_sources=6, items_per_source=20,
                            calibration_pairs=150)
        workload = QueryWorkloadGenerator(
            agora.topic_space, agora.vocabulary, agora.sim.rng.spawn("ad"),
        )
        profile = UserProfile(
            user_id="u", interests=agora.topic_space.basis("folk-jewelry", 0.9),
        )
        consumer = Consumer(agora, profile, planner="greedy")
        query = workload.topic_query(
            "folk-jewelry", k=5, target_domains=("museum",),
        )
        plan, __, __u = consumer.plan_query(query)
        chosen = plan.leaves()[0].source_id
        # That source goes dark after planning but before execution.
        agora.health.set_state(agora.registry.source(chosen).node_id, False)
        from repro.query import ExecutionContext

        context = ExecutionContext(
            registry=agora.registry, oracle=agora.oracle,
            calibrator=agora.calibrator if agora.calibrator.is_fitted else None,
            now=agora.now, consumer_id="u",
        )
        executor = AdaptiveExecutor(
            context, fallbacks_from_registry(agora.registry, consumer.reputation),
        )
        result = executor.execute(plan, query)
        assert result.reassignments  # it adapted
        assert result.recovered
        assert len(result.final.results) > 0


class TestPersonalBaseIntegration:
    def test_saved_items_queryable_through_agora(self):
        agora = build_agora(seed=13, n_sources=5, items_per_source=25,
                            calibration_pairs=150)
        scenario = build_iris_scenario(agora)
        workload = scenario.workload
        # Iris shops, saves her finds into a registered personal base.
        shopping = scenario.iris.ask(
            workload.topic_query("folk-jewelry", k=6, issuer_id="iris"),
        )
        base = PersonalInformationBase(
            "iris", agora.engine, agora.sim.rng.spawn("pib"),
            node_id=agora.consumer_node(),
        )
        base.save_all(shopping.ranked_items[:4], now=agora.now)
        base.share_with("jason")
        agora.registry.register(base, now=agora.now)
        # Jason queries the shared base through the standard machinery.
        query = workload.topic_query(
            "folk-jewelry", k=4, issuer_id="jason",
            target_domains=(PERSONAL_DOMAIN,),
        )
        answer = base.answer(
            query.restricted_to(PERSONAL_DOMAIN), now=agora.now,
            consumer_id="jason",
        )
        assert not answer.declined
        assert answer.size > 0
        # A stranger is turned away.
        stranger = base.answer(
            query.restricted_to(PERSONAL_DOMAIN), now=agora.now,
            consumer_id="stranger",
        )
        assert stranger.declined


class TestTrustLifecycle:
    def test_repeated_breaches_erode_trust_and_choice(self):
        agora = build_agora(seed=17, n_sources=6, items_per_source=20,
                            calibration_pairs=150,
                            overpromise_range=(0.0, 0.6),
                            error_rate_range=(0.0, 0.3))
        workload = QueryWorkloadGenerator(
            agora.topic_space, agora.vocabulary, agora.sim.rng.spawn("trust"),
        )
        profile = UserProfile(
            user_id="u", interests=agora.topic_space.basis("folk-jewelry", 0.9),
        )
        consumer = Consumer(agora, profile, planner="trading")
        for __ in range(6):
            consumer.ask(workload.topic_query(
                "folk-jewelry", k=5,
                requirement=QoSRequirement(min_completeness=0.4,
                                           min_correctness=0.6),
            ))
        # The consumer has formed opinions and the monitor has a ledger.
        assert consumer.reputation.known_subjects()
        assert agora.monitor.total_contracts > 0
        scores = [consumer.reputation.score(s)
                  for s in consumer.reputation.known_subjects()]
        # Some providers breached (overpromising was generous) — trust moved.
        assert any(score != 0.5 for score in scores)
