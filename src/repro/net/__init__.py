"""Peer overlay network (substrate).

Public API:

- :class:`Topology` and builders (:func:`random_topology`,
  :func:`small_world_topology`, :func:`scale_free_topology`,
  :func:`star_topology`).
- :class:`Network` — message passing with latency, jitter and drops.
- :class:`Message` — the unit of communication.
- :class:`NodeHealth`, :class:`ChurnSpec` — node up/down churn.
- :class:`LoadModel`, :class:`LoadSpec` — overload and decline behaviour.
- :class:`GossipProtocol` — epidemic dissemination.
"""

from repro.net.failures import ChurnSpec, LoadModel, LoadSpec, NodeHealth
from repro.net.gossip import GossipProtocol
from repro.net.messages import Message, reset_message_ids
from repro.net.router import Network
from repro.net.topology import (
    LinkSpec,
    Topology,
    random_topology,
    scale_free_topology,
    small_world_topology,
    star_topology,
)

__all__ = [
    "ChurnSpec",
    "GossipProtocol",
    "LinkSpec",
    "LoadModel",
    "LoadSpec",
    "Message",
    "Network",
    "NodeHealth",
    "Topology",
    "random_topology",
    "reset_message_ids",
    "scale_free_topology",
    "small_world_topology",
    "star_topology",
]
