"""Ground-truth relevance oracle.

The simulation knows each item's latent topic vector and each query's
latent intent, so it can *audit* deliveries: which returned items are
truly relevant, what fraction of the reachable relevant items were found,
how fresh the result is.  The oracle stands in for the paper's (human)
judgement of result quality; contract settlement and all experiment
metrics are computed through it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.data.items import InformationItem
from repro.data.topics import TopicSpace
from repro.qos.vector import QoSVector
from repro.query.model import Query


@dataclass
class RelevanceOracle:
    """Audits results against latent ground truth.

    Attributes
    ----------
    topic_space:
        The shared latent space.
    relevance_threshold:
        Latent cosine above which an item counts as truly relevant.
    freshness_half_life:
        Item age at which freshness contribution halves.
    """

    topic_space: TopicSpace
    relevance_threshold: float = 0.75
    freshness_half_life: float = 50.0

    # ------------------------------------------------------------------
    def relevance(self, query: Query, item: InformationItem) -> float:
        """Ground-truth graded relevance of ``item`` to ``query`` in [0, 1]."""
        intent = self._intent(query)
        return self.topic_space.relevance(intent, item.latent)

    def is_relevant(self, query: Query, item: InformationItem) -> bool:
        """Whether graded relevance clears the threshold."""
        return self.relevance(query, item) >= self.relevance_threshold

    def relevant_subset(
        self, query: Query, items: Iterable[InformationItem]
    ) -> List[InformationItem]:
        """Items truly relevant to the query."""
        return [item for item in items if self.is_relevant(query, item)]

    def _intent(self, query: Query) -> np.ndarray:
        if query.intent_latent is not None:
            return query.intent_latent
        if query.reference_item is not None:
            return query.reference_item.latent
        raise ValueError("query carries no intent_latent and no reference item")

    # ------------------------------------------------------------------
    def freshness(self, item: InformationItem, now: float) -> float:
        """Exponential freshness of one item in (0, 1]."""
        age = item.age(now)
        return float(0.5 ** (age / self.freshness_half_life))

    def delivered_qos(
        self,
        query: Query,
        returned: Sequence[InformationItem],
        reachable: Sequence[InformationItem],
        response_time: float,
        now: float,
        source_trust: float = 1.0,
    ) -> QoSVector:
        """Audit a delivery into a QoS vector.

        - completeness: relevant-returned / relevant-reachable
        - correctness: relevant-returned / returned
        - freshness: mean item freshness of the returned set
        - trust: supplied by the caller (mean reputation of sources used)
        """
        relevant_returned = self.relevant_subset(query, returned)
        relevant_reachable = self.relevant_subset(query, reachable)
        if relevant_reachable:
            denominator = min(len(relevant_reachable), query.k)
            completeness = min(1.0, len(relevant_returned) / denominator)
        else:
            completeness = 1.0
        correctness = (
            len(relevant_returned) / len(returned) if returned else 0.0
        )
        freshness = (
            float(np.mean([self.freshness(item, now) for item in returned]))
            if returned
            else 0.0
        )
        return QoSVector(
            response_time=response_time,
            completeness=completeness,
            freshness=freshness,
            correctness=correctness,
            trust=float(np.clip(source_trust, 0.0, 1.0)),
        )

    # ------------------------------------------------------------------
    def ndcg(
        self,
        query: Query,
        ranking: Sequence[InformationItem],
        k: Optional[int] = None,
    ) -> float:
        """Normalised discounted cumulative gain of a ranking.

        Gains are the graded latent relevances; the ideal ranking sorts
        the same items by true relevance.
        """
        if k is None:
            k = len(ranking)
        if k == 0 or not ranking:
            return 0.0
        gains = [self.relevance(query, item) for item in ranking[:k]]
        discounts = 1.0 / np.log2(np.arange(2, len(gains) + 2))
        dcg = float(np.dot(gains, discounts))
        ideal = sorted(
            (self.relevance(query, item) for item in ranking), reverse=True
        )[:k]
        ideal_dcg = float(np.dot(ideal, 1.0 / np.log2(np.arange(2, len(ideal) + 2))))
        if ideal_dcg == 0:
            return 0.0
        return dcg / ideal_dcg

    def precision_recall(
        self,
        query: Query,
        returned: Sequence[InformationItem],
        reachable: Sequence[InformationItem],
    ) -> Dict[str, float]:
        """Set-based precision and recall against ground truth."""
        relevant_returned = len(self.relevant_subset(query, returned))
        relevant_reachable = len(self.relevant_subset(query, reachable))
        precision = relevant_returned / len(returned) if returned else 0.0
        recall = (
            relevant_returned / relevant_reachable if relevant_reachable else 1.0
        )
        return {"precision": precision, "recall": recall}
