"""Tests for the plan algebra."""

import numpy as np
import pytest

from repro.data import TextDocument
from repro.query import Merge, Query, QueryKind, Retrieve, Threshold, TopK, standard_plan


def _subquery(domain="museum"):
    query = Query(
        kind=QueryKind.SIMILARITY,
        reference_item=TextDocument(
            item_id="ref", domain="museum", latent=np.array([1.0]),
            terms={"w00001": 1},
        ),
    )
    return query.restricted_to(domain)


class TestNodes:
    def test_retrieve_job_id(self):
        node = Retrieve(_subquery(), "s1")
        assert node.job_id.endswith("museum@s1")

    def test_merge_needs_children(self):
        with pytest.raises(ValueError):
            Merge(children=[])

    def test_topk_validates_k(self):
        with pytest.raises(ValueError):
            TopK(Retrieve(_subquery(), "s1"), k=0)

    def test_threshold_validates_tau(self):
        with pytest.raises(ValueError):
            Threshold(Retrieve(_subquery(), "s1"), tau=1.5)


class TestTraversal:
    def test_leaves_in_order(self):
        leaves = [Retrieve(_subquery(), f"s{i}") for i in range(3)]
        plan = TopK(Merge(children=list(leaves)), k=5)
        assert plan.leaves() == leaves

    def test_walk_preorder(self):
        leaf = Retrieve(_subquery(), "s1")
        merge = Merge(children=[leaf])
        plan = TopK(merge, k=5)
        assert list(plan.walk()) == [plan, merge, leaf]

    def test_depth(self):
        leaf = Retrieve(_subquery(), "s1")
        assert leaf.depth() == 1
        assert TopK(Merge(children=[leaf]), k=1).depth() == 3


class TestStandardPlan:
    def test_shape_without_threshold(self):
        plan = standard_plan([Retrieve(_subquery(), "s1")], k=5)
        assert isinstance(plan, TopK)
        assert isinstance(plan.child, Merge)

    def test_shape_with_threshold(self):
        plan = standard_plan([Retrieve(_subquery(), "s1")], k=5, tau=0.3)
        assert isinstance(plan, TopK)
        assert isinstance(plan.child, Threshold)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            standard_plan([], k=5)
