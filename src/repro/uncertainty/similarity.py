"""Similarity primitives over vectors and term bags.

These are the low-level metrics the matching engines build on.  All of
them return values in [0, 1] where 1 means identical, so scores from
different metrics can be ensembled and later calibrated to probabilities.

Dot products go through :func:`dot_kernel` / :func:`batch_dot_kernel`
(``np.einsum``), never BLAS: ``M @ v`` is *not* bitwise-identical to its
per-row dot products (BLAS picks different accumulation kernels for gemv
and dot), while einsum computes each output element with one fixed
reduction regardless of batch size.  That property is what lets the
batched matchers guarantee *exact* float parity with the pairwise path.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np


# agora: shard-safe
def dot_kernel(a: np.ndarray, b: np.ndarray) -> float:
    """Dot product of two 1-D vectors, bitwise-stable under batching.

    ``dot_kernel(M[i], v) == batch_dot_kernel(M, v)[i]`` exactly, which
    BLAS (``np.dot``/``@``) does not guarantee.
    """
    return float(np.einsum("j,j->", a, b))


# agora: shard-safe
def batch_dot_kernel(matrix: np.ndarray, vector: np.ndarray) -> np.ndarray:
    """Row-wise dot products of ``matrix`` against ``vector``.

    Each row's result is bitwise-identical to ``dot_kernel(row, vector)``.
    """
    if matrix.shape[0] == 0:
        return np.zeros(0)
    return np.einsum("ij,j->i", matrix, vector)


# agora: shard-safe
def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine of two vectors mapped to [0, 1] (0.5 = orthogonal)."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    na = np.linalg.norm(a)
    nb = np.linalg.norm(b)
    if na == 0 or nb == 0:
        return 0.0
    return float((1.0 + dot_kernel(a, b) / (na * nb)) / 2.0)


# agora: shard-safe
def nonnegative_cosine(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine for non-negative vectors (already in [0, 1])."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    na = np.linalg.norm(a)
    nb = np.linalg.norm(b)
    if na == 0 or nb == 0:
        return 0.0
    return float(np.clip(dot_kernel(a, b) / (na * nb), 0.0, 1.0))


# agora: shard-safe
def batch_nonnegative_cosine(
    matrix: np.ndarray,
    row_norms: np.ndarray,
    vector: np.ndarray,
    vector_norm: float,
) -> np.ndarray:
    """Vectorized :func:`nonnegative_cosine` of each matrix row vs ``vector``.

    ``row_norms`` must hold ``np.linalg.norm(row)`` per row and
    ``vector_norm`` must be ``np.linalg.norm(vector)`` — they are taken as
    arguments so callers can cache them.  Result element ``i`` is bitwise
    equal to ``nonnegative_cosine(matrix[i], vector)``.
    """
    n = matrix.shape[0]
    if n == 0:
        return np.zeros(0)
    if vector_norm == 0:
        return np.zeros(n)
    dots = batch_dot_kernel(matrix, vector)
    with np.errstate(divide="ignore", invalid="ignore"):
        cosines = np.clip(dots / (row_norms * vector_norm), 0.0, 1.0)
    return np.where(row_norms == 0, 0.0, cosines)


# agora: shard-safe
def jaccard_similarity(a: Iterable[str], b: Iterable[str]) -> float:
    """Jaccard index of two term sets."""
    set_a, set_b = set(a), set(b)
    if not set_a and not set_b:
        return 1.0
    union = set_a | set_b
    return len(set_a & set_b) / len(union)


# agora: shard-safe
def weighted_jaccard(a: Mapping[str, float], b: Mapping[str, float]) -> float:
    """Weighted Jaccard (Ruzicka) similarity of two weighted bags.

    Accumulates in sorted key order so the result is bitwise identical
    across processes regardless of string-hash randomization (see
    :func:`bag_cosine`).
    """
    keys = sorted(set(a) | set(b))
    if not keys:
        return 1.0
    minimum = sum(min(a.get(k, 0.0), b.get(k, 0.0)) for k in keys)
    maximum = sum(max(a.get(k, 0.0), b.get(k, 0.0)) for k in keys)
    if maximum == 0:
        return 1.0
    return minimum / maximum


# agora: shard-safe
def sublinear_tf(terms: Mapping[str, int]) -> Dict[str, float]:
    """Sublinear (1 + log) term-frequency weighting."""
    return {
        term: 1.0 + float(np.log(count)) if count > 0 else 0.0
        for term, count in terms.items()
        if count > 0
    }


# agora: shard-safe
def bag_cosine(a: Mapping[str, float], b: Mapping[str, float]) -> float:
    """Cosine similarity of two sparse weighted bags, in [0, 1].

    The dot product accumulates over the shared keys in *sorted* order:
    set iteration order follows per-process string-hash randomization,
    and float addition is not associative, so an unsorted reduction can
    differ in the last ulp between the coordinator and a spawned shard
    worker.  A canonical order makes the score a pure function of the
    bags, byte-for-byte, in every process.
    """
    if not a or not b:
        return 0.0
    shared = sorted(set(a) & set(b))
    dot = sum(a[k] * b[k] for k in shared)
    norm_a = bag_norm(a)
    norm_b = bag_norm(b)
    if norm_a == 0 or norm_b == 0:
        return 0.0
    return float(np.clip(dot / (norm_a * norm_b), 0.0, 1.0))


# agora: shard-safe
def bag_norm(bag: Mapping[str, float]) -> float:
    """Euclidean norm of a sparse weighted bag (cacheable per item)."""
    return float(np.sqrt(sum(v * v for v in bag.values())))


# agora: shard-safe
def batch_bag_cosine(
    query_bag: Mapping[str, float],
    candidate_bags: Sequence[Mapping[str, float]],
    candidate_norms: Optional[Sequence[float]] = None,
) -> np.ndarray:
    """:func:`bag_cosine` of ``query_bag`` against many candidate bags.

    The query-side norm is computed once instead of once per pair;
    ``candidate_norms`` (``bag_norm`` per bag) may be passed to reuse
    cached values.  Element ``i`` is bitwise equal to
    ``bag_cosine(query_bag, candidate_bags[i])`` — including the sorted
    shared-key reduction order that keeps scores hash-seed-independent
    across processes.
    """
    n = len(candidate_bags)
    scores = np.zeros(n)
    if n == 0 or not query_bag:
        return scores
    query_keys = set(query_bag)
    query_norm = bag_norm(query_bag)
    if query_norm == 0:
        return scores
    norms: List[float] = (
        list(candidate_norms)
        if candidate_norms is not None
        else [bag_norm(bag) for bag in candidate_bags]
    )
    for i, bag in enumerate(candidate_bags):
        if not bag or norms[i] == 0:
            continue
        shared = sorted(query_keys & set(bag))
        dot = sum(query_bag[k] * bag[k] for k in shared)
        scores[i] = float(np.clip(dot / (query_norm * norms[i]), 0.0, 1.0))
    return scores


class EnsembleSimilarity:
    """A weighted combination of several score functions.

    Each member is a callable ``(query, candidate) -> float`` in [0, 1].
    """

    def __init__(self, members: Sequence, weights: Optional[Sequence[float]] = None):
        if not members:
            raise ValueError("ensemble needs at least one member")
        self.members = list(members)
        if weights is None:
            weights = [1.0] * len(members)
        if len(weights) != len(members):
            raise ValueError("weights must match members")
        if any(w < 0 for w in weights):
            raise ValueError("weights must be non-negative")
        total = sum(weights)
        if total <= 0:
            raise ValueError("at least one weight must be positive")
        self.weights = [w / total for w in weights]

    def __call__(self, query, candidate) -> float:
        return sum(
            weight * member(query, candidate)
            for member, weight in zip(self.members, self.weights)
        )
