"""JSONL exporters for spans and metrics, plus run-directory helpers.

Everything is written in deterministic order (spans by id, metrics by
name) with canonical JSON per line, so exported artifacts from two
same-seed runs are byte-identical and can be diffed with standard tools.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.obs.flight import FlightRecorder
from repro.obs.manifest import RunManifest, canonical_json
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import SimProfiler, write_profile
from repro.obs.slo import SLOReport, write_slo_report
from repro.obs.spans import Span, SpanTracer

PathLike = Union[str, Path]

#: Conventional artifact filenames inside a run directory.
SPANS_FILE = "spans.jsonl"
METRICS_FILE = "metrics.jsonl"
MANIFEST_FILE = "manifest.json"
SLO_FILE = "slo.json"
#: Flight recordings live in their own subdirectory (chunked JSONL).
FLIGHT_DIR = "flight"


def write_spans_jsonl(spans: Sequence[Span], path: PathLike) -> int:
    """Write one span per line, ordered by span id; returns #lines."""
    ordered = sorted(spans, key=lambda span: span.span_id)
    lines = [canonical_json(span.to_dict()) for span in ordered]
    Path(path).write_text("\n".join(lines) + ("\n" if lines else ""))
    return len(lines)


def load_spans_jsonl(path: PathLike) -> List[Span]:
    """Read a spans JSONL file back into :class:`Span` objects."""
    import json

    spans: List[Span] = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if line:
            spans.append(Span.from_dict(json.loads(line)))
    return spans


def write_metrics_jsonl(registry: MetricsRegistry, path: PathLike) -> int:
    """Write one metric per line (kind, name, value/summary); returns #lines."""
    lines: List[str] = []
    for name, value in registry.counters().items():
        lines.append(canonical_json({"kind": "counter", "name": name, "value": value}))
    for name, value in registry.gauges().items():
        lines.append(canonical_json({"kind": "gauge", "name": name, "value": value}))
    for name, histogram in registry.histograms().items():
        lines.append(
            canonical_json(
                {"kind": "histogram", "name": name, "summary": histogram.summary()}
            )
        )
    Path(path).write_text("\n".join(lines) + ("\n" if lines else ""))
    return len(lines)


def load_metrics_jsonl(path: PathLike) -> List[Dict[str, Any]]:
    """Read a metrics JSONL file back into plain dicts."""
    import json

    return [
        json.loads(line)
        for line in Path(path).read_text().splitlines()
        if line.strip()
    ]


def write_manifest(manifest: RunManifest, path: PathLike) -> None:
    """Write a manifest as canonical JSON."""
    Path(path).write_text(manifest.to_json() + "\n")


def load_manifest(path: PathLike) -> RunManifest:
    """Read a manifest written by :func:`write_manifest`."""
    return RunManifest.from_json(Path(path).read_text())


def export_run(
    directory: PathLike,
    manifest: RunManifest,
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[SpanTracer] = None,
    profiler: Optional[SimProfiler] = None,
    slo_report: Optional[SLOReport] = None,
    flight: Optional[FlightRecorder] = None,
) -> Dict[str, str]:
    """Write a run's full artifact set into ``directory``.

    Produces ``manifest.json`` always, plus ``metrics.jsonl`` /
    ``spans.jsonl`` when a registry/tracer is given, ``profile.folded``
    + ``profile.json`` when a profiler is given (stacks need the tracer
    too), ``slo.json`` when an SLO report is given, and a ``flight/``
    recording directory when a flight recorder is given (the recorder is
    finalized here).  Returns a map of artifact kind → written path (for
    logs and CI upload globs).
    """
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    written: Dict[str, str] = {}
    manifest_path = target / MANIFEST_FILE
    write_manifest(manifest, manifest_path)
    written["manifest"] = str(manifest_path)
    if registry is not None:
        metrics_path = target / METRICS_FILE
        write_metrics_jsonl(registry, metrics_path)
        written["metrics"] = str(metrics_path)
    if tracer is not None:
        spans_path = target / SPANS_FILE
        write_spans_jsonl(tracer.spans(), spans_path)
        written["spans"] = str(spans_path)
    if profiler is not None:
        spans = tracer.spans() if tracer is not None else []
        written.update(write_profile(target, profiler, spans))
    if slo_report is not None:
        slo_path = target / SLO_FILE
        write_slo_report(slo_report, slo_path)
        written["slo"] = str(slo_path)
    if flight is not None:
        written.update(flight.finalize(target / FLIGHT_DIR))
    return written
