"""Trace recording: counters, timers and timestamped event logs.

The :class:`TraceRecorder` is the lightweight facade components write
through — experiments create one per run and read the aggregates
afterwards.  Since the observability layer landed, the recorder is a
*view* over a :class:`repro.obs.metrics.MetricsRegistry`: ``count()``
lands in a registry counter and ``observe()`` in a registry histogram,
so everything recorded here also shows up in metric snapshots, run
manifests and dashboards.  Timestamped records stay local to the
recorder (they are the free-form event log; spans are the structured
one).

Read-side purity: every read accessor (``counter``, ``timer``,
``timers``, ``summary``) is non-mutating — looking up a name that was
never written does not create an entry, so snapshots contain only
metrics that were actually observed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.obs.metrics import Histogram, MetricsRegistry


@dataclass
class TraceRecord:
    """A single timestamped trace entry."""

    time: float
    category: str
    label: str
    payload: Any = None


@dataclass
class TimerStats:
    """Aggregate statistics for a named timer.

    ``TraceRecorder.timer()`` returns these as immutable-by-convention
    *snapshots* of the backing histogram; folding observations into a
    snapshot does not write back to the recorder.
    """

    count: int = 0
    total: float = 0.0
    minimum: float = float("inf")
    maximum: float = float("-inf")

    def observe(self, value: float) -> None:
        """Fold one observation into the aggregate."""
        self.count += 1
        self.total += value
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    @property
    def mean(self) -> float:
        """Mean of the observations (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    @classmethod
    def from_histogram(cls, histogram: Histogram) -> "TimerStats":
        """Snapshot a registry histogram into the legacy timer shape."""
        return cls(
            count=histogram.count,
            total=histogram.total,
            minimum=histogram.minimum,
            maximum=histogram.maximum,
        )


class TraceRecorder:
    """Collects counters, timers and event records for one simulation run.

    Parameters
    ----------
    keep_records:
        Disable to skip the timestamped record log entirely.
    max_records:
        Cap on stored records; later records are dropped (and counted).
    metrics:
        Backing registry; a private one is created when omitted.  Pass a
        shared registry to fold several recorders into one snapshot.
    """

    def __init__(
        self,
        keep_records: bool = True,
        max_records: int = 100_000,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._records: List[TraceRecord] = []
        self._keep_records = keep_records
        self._max_records = max_records
        self._dropped = 0

    # -- counters -------------------------------------------------------
    def count(self, name: str, amount: float = 1.0) -> None:
        """Increment counter ``name`` by ``amount``."""
        self.metrics.counter(name).inc(amount)

    def counter(self, name: str) -> float:
        """Return the current value of counter ``name`` (0 if untouched)."""
        return self.metrics.counter_value(name)

    def counters(self) -> Dict[str, float]:
        """Return a snapshot of all counters."""
        return self.metrics.counters()

    # -- timers ----------------------------------------------------------
    def observe(self, name: str, value: float) -> None:
        """Record an observation for timer/metric ``name``."""
        self.metrics.histogram(name).observe(value)

    def timer(self, name: str) -> TimerStats:
        """Snapshot stats for timer ``name`` (reads never create entries)."""
        histogram = self.metrics.histogram_or_none(name)
        if histogram is None:
            return TimerStats()
        return TimerStats.from_histogram(histogram)

    def timers(self) -> Dict[str, TimerStats]:
        """Snapshot of all *observed* timers."""
        return {
            name: TimerStats.from_histogram(histogram)
            for name, histogram in self.metrics.histograms().items()
        }

    # -- records ----------------------------------------------------------
    def record(self, time: float, category: str, label: str, payload: Any = None) -> None:
        """Append a timestamped record (subject to the record cap)."""
        if not self._keep_records:
            return
        if len(self._records) >= self._max_records:
            self._dropped += 1
            return
        self._records.append(TraceRecord(time, category, label, payload))

    def records(self, category: Optional[str] = None) -> List[TraceRecord]:
        """Return records, optionally filtered by ``category``."""
        if category is None:
            return list(self._records)
        return [r for r in self._records if r.category == category]

    @property
    def dropped_records(self) -> int:
        """Records dropped after the cap was hit."""
        return self._dropped

    def summary(self) -> Dict[str, Any]:
        """Return a compact dictionary summary (counters + timer means).

        Pure: summarising never creates entries, so only counters that
        were incremented and timers that were observed appear.
        """
        return {
            "counters": self.counters(),
            "timers": {
                name: {"count": ts.count, "mean": ts.mean, "min": ts.minimum, "max": ts.maximum}
                for name, ts in self.timers().items()
            },
            "records": len(self._records),
            "dropped": self._dropped,
        }
