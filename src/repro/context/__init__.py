"""Contextualization: context model and conditional profiles (paper §8).

Public API:

- :class:`Context`, :func:`context_similarity`,
  :data:`CONTEXT_DIMENSIONS`, :data:`TASKS`, :data:`TIMES_OF_DAY`.
- :class:`ActivationRule`, :class:`ProfileOverlay`.
- :class:`ConditionalProfile`.
- :class:`ContextInferencer`, :class:`ActivityObservation`.
"""

from repro.context.conditional import ConditionalProfile
from repro.context.inference import ActivityObservation, ContextInferencer
from repro.context.model import (
    ACTIVITIES,
    CONTEXT_DIMENSIONS,
    TASKS,
    TIMES_OF_DAY,
    Context,
    context_similarity,
)
from repro.context.rules import ActivationRule, ProfileOverlay

__all__ = [
    "ACTIVITIES",
    "ActivationRule",
    "ActivityObservation",
    "CONTEXT_DIMENSIONS",
    "ConditionalProfile",
    "Context",
    "ContextInferencer",
    "ProfileOverlay",
    "TASKS",
    "TIMES_OF_DAY",
    "context_similarity",
]
