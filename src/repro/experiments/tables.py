"""ASCII table rendering for benchmark reports."""

from __future__ import annotations

from typing import List, Optional, Sequence


def format_cell(value) -> str:
    """Render one cell (floats to 3 decimals)."""
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: Optional[str] = None,
) -> str:
    """Render a fixed-width ASCII table (the benches print these)."""
    if not headers:
        raise ValueError("table needs headers")
    formatted_rows = [[format_cell(cell) for cell in row] for row in rows]
    for row in formatted_rows:
        if len(row) != len(headers):
            raise ValueError("row width must match headers")
    widths = [len(h) for h in headers]
    for row in formatted_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    separator = "-+-".join("-" * width for width in widths)
    parts: List[str] = []
    if title:
        parts.append(f"== {title} ==")
    parts.append(line(list(headers)))
    parts.append(separator)
    parts.extend(line(row) for row in formatted_rows)
    return "\n".join(parts)
