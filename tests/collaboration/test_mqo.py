"""Tests for multi-query optimization (shared jobs)."""

import pytest

from repro.collaboration import SharedJobExecutor, job_key
from repro.data import DomainSpec
from repro.query import ExecutionContext, Retrieve, standard_plan
from repro.sources import SourceRegistry

from tests.conftest import make_source, make_topic_query


@pytest.fixture
def mqo_setup(corpus_generator, matching_engine, streams, oracle):
    registry = SourceRegistry()
    museum = DomainSpec(name="museum", topic_prior={"folk-jewelry": 1.0})
    registry.register(
        make_source("m1", corpus_generator, matching_engine, streams, domain_spec=museum)
    )
    registry.register(
        make_source("m2", corpus_generator, matching_engine, streams, domain_spec=museum)
    )
    context = ExecutionContext(registry=registry, oracle=oracle, consumer_id="group")
    return registry, SharedJobExecutor(context)


class TestJobKey:
    def test_same_terms_same_source_share(self, topic_space, vocabulary):
        query = make_topic_query(topic_space, vocabulary, "folk-jewelry", seed=1)
        a = Retrieve(query.restricted_to("museum"), "m1")
        b = Retrieve(query.restricted_to("museum"), "m1")
        assert job_key(a) == job_key(b)

    def test_different_sources_differ(self, topic_space, vocabulary):
        query = make_topic_query(topic_space, vocabulary, "folk-jewelry", seed=1)
        a = Retrieve(query.restricted_to("museum"), "m1")
        b = Retrieve(query.restricted_to("museum"), "m2")
        assert job_key(a) != job_key(b)

    def test_different_terms_differ(self, topic_space, vocabulary):
        q1 = make_topic_query(topic_space, vocabulary, "folk-jewelry", seed=1)
        q2 = make_topic_query(topic_space, vocabulary, "dance-forms", seed=2)
        a = Retrieve(q1.restricted_to("museum"), "m1")
        b = Retrieve(q2.restricted_to("museum"), "m1")
        assert job_key(a) != job_key(b)


class TestSharing:
    def test_analyse_counts_overlap(self, mqo_setup, topic_space, vocabulary):
        registry, executor = mqo_setup
        # Both members run the same goal query (identical terms, seed).
        query = make_topic_query(topic_space, vocabulary, "folk-jewelry", seed=7)
        plan_iris = standard_plan(
            [Retrieve(query.restricted_to("museum"), "m1"),
             Retrieve(query.restricted_to("museum"), "m2")], k=10,
        )
        plan_jason = standard_plan(
            [Retrieve(query.restricted_to("museum"), "m1")], k=10,
        )
        report = executor.analyse({"iris": plan_iris, "jason": plan_jason})
        assert report.total_jobs == 3
        assert report.distinct_jobs == 2
        assert report.jobs_saved == 1
        assert report.savings_ratio == pytest.approx(1 / 3)

    def test_execute_shares_and_distributes(self, mqo_setup, topic_space, vocabulary):
        registry, executor = mqo_setup
        query = make_topic_query(topic_space, vocabulary, "folk-jewelry", seed=7, k=5)
        plans = {
            "iris": standard_plan([Retrieve(query.restricted_to("museum"), "m1")], k=5),
            "jason": standard_plan([Retrieve(query.restricted_to("museum"), "m1")], k=5),
        }
        result = executor.execute(plans, {"iris": query, "jason": query})
        assert result.report.distinct_jobs == 1
        assert result.report.total_jobs == 2
        iris_items = [m.item.item_id for m in result.member_results["iris"]]
        jason_items = [m.item.item_id for m in result.member_results["jason"]]
        assert iris_items == jason_items
        assert len(iris_items) > 0

    def test_members_mismatch_rejected(self, mqo_setup, topic_space, vocabulary):
        registry, executor = mqo_setup
        query = make_topic_query(topic_space, vocabulary, "folk-jewelry")
        plan = standard_plan([Retrieve(query.restricted_to("museum"), "m1")], k=5)
        with pytest.raises(ValueError):
            executor.execute({"iris": plan}, {"jason": query})

    def test_no_sharing_between_distinct_queries(self, mqo_setup, topic_space, vocabulary):
        registry, executor = mqo_setup
        q1 = make_topic_query(topic_space, vocabulary, "folk-jewelry", seed=1, k=5)
        q2 = make_topic_query(topic_space, vocabulary, "dance-forms", seed=2, k=5)
        plans = {
            "iris": standard_plan([Retrieve(q1.restricted_to("museum"), "m1")], k=5),
            "jason": standard_plan([Retrieve(q2.restricted_to("museum"), "m1")], k=5),
        }
        result = executor.execute(plans, {"iris": q1, "jason": q2})
        assert result.report.jobs_saved == 0
