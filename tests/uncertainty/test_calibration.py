"""Tests for score calibration."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.uncertainty import (
    BinnedCalibrator,
    expected_calibration_error,
    pool_adjacent_violators,
    ranking_auc,
)


class TestPAV:
    def test_already_monotone_unchanged(self):
        values = [0.1, 0.2, 0.5, 0.9]
        result = pool_adjacent_violators(values, [1, 1, 1, 1])
        np.testing.assert_allclose(result, values)

    def test_violation_pooled(self):
        result = pool_adjacent_violators([0.5, 0.1], [1, 1])
        np.testing.assert_allclose(result, [0.3, 0.3])

    def test_weighted_pooling(self):
        result = pool_adjacent_violators([0.6, 0.0], [3, 1])
        np.testing.assert_allclose(result, [0.45, 0.45])

    def test_output_is_monotone(self):
        rng = np.random.default_rng(0)
        values = rng.random(30)
        result = pool_adjacent_violators(values, np.ones(30))
        assert np.all(np.diff(result) >= -1e-12)

    @given(st.lists(st.floats(min_value=0, max_value=1, allow_nan=False),
                    min_size=1, max_size=30))
    def test_monotone_property(self, values):
        result = pool_adjacent_violators(values, np.ones(len(values)))
        assert np.all(np.diff(result) >= -1e-9)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            pool_adjacent_violators([0.5], [-1.0])


class TestBinnedCalibrator:
    def _synthetic(self, n=2000, seed=0):
        """Scores whose true match probability is score**2."""
        rng = np.random.default_rng(seed)
        scores = rng.random(n)
        labels = (rng.random(n) < scores**2).astype(int)
        return scores, labels

    def test_fit_predict_bounds(self):
        scores, labels = self._synthetic()
        calibrator = BinnedCalibrator().fit(scores, labels)
        for s in (0.0, 0.3, 0.7, 1.0):
            assert 0.0 <= calibrator.predict(s) <= 1.0

    def test_calibration_reduces_ece(self):
        scores, labels = self._synthetic()
        calibrator = BinnedCalibrator(n_bins=10).fit(scores, labels)
        raw_ece = expected_calibration_error(scores, labels)
        calibrated = calibrator.predict_many(scores)
        calibrated_ece = expected_calibration_error(calibrated, labels)
        assert calibrated_ece < raw_ece

    def test_prediction_monotone(self):
        scores, labels = self._synthetic()
        calibrator = BinnedCalibrator().fit(scores, labels)
        predictions = calibrator.predict_many(np.linspace(0, 1, 50))
        assert np.all(np.diff(predictions) >= -1e-9)

    def test_unfitted_predict_raises(self):
        with pytest.raises(RuntimeError):
            BinnedCalibrator().predict(0.5)

    def test_empty_fit_rejected(self):
        with pytest.raises(ValueError):
            BinnedCalibrator().fit([], [])

    def test_bad_labels_rejected(self):
        with pytest.raises(ValueError):
            BinnedCalibrator().fit([0.5], [0.5])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            BinnedCalibrator().fit([0.5, 0.6], [1])

    def test_too_few_bins_rejected(self):
        with pytest.raises(ValueError):
            BinnedCalibrator(n_bins=1)


class TestECE:
    def test_perfectly_calibrated(self):
        rng = np.random.default_rng(1)
        probs = rng.random(5000)
        labels = (rng.random(5000) < probs).astype(int)
        assert expected_calibration_error(probs, labels) < 0.05

    def test_maximally_miscalibrated(self):
        probs = np.full(100, 0.9)
        labels = np.zeros(100)
        assert expected_calibration_error(probs, labels) == pytest.approx(0.9)

    def test_empty(self):
        assert expected_calibration_error([], []) == 0.0


class TestAUC:
    def test_perfect_separation(self):
        scores = [0.1, 0.2, 0.8, 0.9]
        labels = [0, 0, 1, 1]
        assert ranking_auc(scores, labels) == 1.0

    def test_inverted(self):
        scores = [0.9, 0.8, 0.2, 0.1]
        labels = [0, 0, 1, 1]
        assert ranking_auc(scores, labels) == 0.0

    def test_random_is_half(self):
        rng = np.random.default_rng(2)
        scores = rng.random(2000)
        labels = rng.integers(0, 2, 2000)
        assert ranking_auc(scores, labels) == pytest.approx(0.5, abs=0.05)

    def test_degenerate_single_class(self):
        assert ranking_auc([0.5, 0.6], [1, 1]) == 0.5

    def test_ties_handled(self):
        assert ranking_auc([0.5, 0.5], [0, 1]) == pytest.approx(0.5)
