"""Baseline planners for the T5 experiment.

Each baseline picks one source per job by a naive rule; comparing them
against the multi-objective search quantifies the value of the paper's
trading-based optimization.
"""

from __future__ import annotations

from typing import Dict, List


from repro.optimizer.candidates import CandidateAssignment
from repro.optimizer.plans import CandidatePlan
from repro.optimizer.search import CandidateTable
from repro.sim.rng import ScopedStreams


class RandomPlanner:
    """Uniform random source per job."""

    name = "random"

    def __init__(self, streams: ScopedStreams):
        self._rng = streams.stream("random-planner")

    def plan(self, table: CandidateTable) -> CandidatePlan:
        """Pick one source per job by this baseline's rule."""
        if not table:
            raise ValueError("candidate table is empty")
        assignments: Dict[str, List[CandidateAssignment]] = {}
        for job_id in sorted(table):
            candidates = table[job_id]
            assignments[job_id] = [candidates[int(self._rng.integers(len(candidates)))]]
        return CandidatePlan(assignments)


class CostGreedyPlanner:
    """Cheapest (fastest expected) source per job, quality ignored."""

    name = "cost-greedy"

    def plan(self, table: CandidateTable) -> CandidatePlan:
        """Pick one source per job by this baseline's rule."""
        if not table:
            raise ValueError("candidate table is empty")
        return CandidatePlan(
            {
                job_id: [min(candidates, key=lambda c: (c.cost.mean, c.source_id))]
                for job_id, candidates in sorted(table.items())
            }
        )


class QualityGreedyPlanner:
    """Highest expected completeness per job, cost ignored."""

    name = "quality-greedy"

    def plan(self, table: CandidateTable) -> CandidatePlan:
        """Pick one source per job by this baseline's rule."""
        if not table:
            raise ValueError("candidate table is empty")
        return CandidatePlan(
            {
                job_id: [
                    max(
                        candidates,
                        key=lambda c: (c.expected.completeness, -c.cost.mean, c.source_id),
                    )
                ]
                for job_id, candidates in sorted(table.items())
            }
        )


class RoundRobinPlanner:
    """Cycles through sources across jobs (load-spreading, oblivious)."""

    name = "round-robin"

    def __init__(self) -> None:
        self._cursor = 0

    def plan(self, table: CandidateTable) -> CandidatePlan:
        """Pick one source per job by this baseline's rule."""
        if not table:
            raise ValueError("candidate table is empty")
        assignments: Dict[str, List[CandidateAssignment]] = {}
        for job_id in sorted(table):
            candidates = sorted(table[job_id], key=lambda c: c.source_id)
            assignments[job_id] = [candidates[self._cursor % len(candidates)]]
            self._cursor += 1
        return CandidatePlan(assignments)


def baseline_suite(streams: ScopedStreams) -> List:
    """All baseline planners (fresh instances)."""
    return [
        RandomPlanner(streams),
        CostGreedyPlanner(),
        QualityGreedyPlanner(),
        RoundRobinPlanner(),
    ]
