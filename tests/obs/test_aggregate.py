"""Tests for the deterministic shard-snapshot merge law."""

import pytest

from repro.obs import (
    Histogram,
    MetricsRegistry,
    ShardSnapshot,
    SpanTracer,
    TraceContext,
    load_shard_snapshot,
    merge_snapshots,
    merged_manifest,
    shard_of,
    snapshot_shard,
    write_merged_spans_jsonl,
    write_shard_snapshot,
)
from repro.obs.aggregate import export_merged_run


def make_snapshot(shard_id, sim_time=10.0, counters=None, gauges=None,
                  values=(), buckets=(1.0, 2.0)):
    registry = MetricsRegistry()
    for name, value in (counters or {}).items():
        registry.counter(name).inc(value)
    for name, value in (gauges or {}).items():
        registry.gauge(name).set(value)
    for value in values:
        registry.histogram("lat", buckets=buckets).observe(value)
    tracer = SpanTracer()
    tracer.attach(TraceContext(trace_id="t", shard_id=shard_id))
    with tracer.span("shard"):
        with tracer.span("op"):
            pass
    return snapshot_shard(
        shard_id, registry, tracer=tracer, sim_time=sim_time,
        event_count=int(sim_time),
    )


class TestMergeLaw:
    def test_counters_sum(self):
        merged = merge_snapshots([
            make_snapshot(0, counters={"ops": 3.0}),
            make_snapshot(1, counters={"ops": 4.0, "extra": 1.0}),
        ])
        assert merged.registry.counter_value("ops") == 7.0
        assert merged.registry.counter_value("extra") == 1.0

    def test_gauges_resolve_by_sim_time_then_shard(self):
        late = make_snapshot(0, sim_time=20.0, gauges={"depth": 5.0})
        early = make_snapshot(1, sim_time=10.0, gauges={"depth": 9.0})
        merged = merge_snapshots([late, early])
        assert merged.registry.gauge_value("depth") == 5.0
        # Equal sim times: the higher shard id wins (total order).
        tie_a = make_snapshot(0, sim_time=10.0, gauges={"depth": 1.0})
        tie_b = make_snapshot(1, sim_time=10.0, gauges={"depth": 2.0})
        merged = merge_snapshots([tie_b, tie_a])
        assert merged.registry.gauge_value("depth") == 2.0

    def test_histograms_merge_bucket_wise(self):
        merged = merge_snapshots([
            make_snapshot(0, values=(0.5, 1.5)),
            make_snapshot(1, values=(3.0,)),
        ])
        histogram = merged.registry.histogram_or_none("lat")
        assert histogram.count == 3
        assert histogram.total == 5.0
        assert histogram.minimum == 0.5
        assert histogram.maximum == 3.0
        assert histogram.bucket_counts() == (1, 1, 1)

    def test_spans_interleave_on_start_shard_seq(self):
        merged = merge_snapshots([make_snapshot(1), make_snapshot(0)])
        keys = [
            (span.start, shard_of(span.span_id)) for span in merged.spans
        ]
        assert keys == sorted(keys)
        assert merged.span_count == 4

    def test_merge_is_order_free(self):
        parts = [
            make_snapshot(0, sim_time=5.0, counters={"ops": 1.0},
                          gauges={"g": 1.0}, values=(0.5,)),
            make_snapshot(1, sim_time=9.0, counters={"ops": 2.0},
                          gauges={"g": 2.0}, values=(1.5,)),
            make_snapshot(2, sim_time=7.0, counters={"ops": 4.0},
                          values=(3.0,)),
        ]
        forward = merge_snapshots(parts)
        backward = merge_snapshots(list(reversed(parts)))
        assert forward.registry.snapshot() == backward.registry.snapshot()
        assert forward.spans == backward.spans
        assert forward.sim_time == backward.sim_time == 9.0
        assert forward.event_count == backward.event_count

    def test_totals_aggregate(self):
        merged = merge_snapshots([
            make_snapshot(0, sim_time=5.0), make_snapshot(1, sim_time=8.0),
        ])
        assert merged.sim_time == 8.0
        assert merged.event_count == 13
        assert merged.shard_ids == [0, 1]


class TestMergeErrors:
    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            merge_snapshots([])

    def test_duplicate_shard_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate shard ids"):
            merge_snapshots([make_snapshot(1), make_snapshot(1)])

    def test_bucket_ladder_mismatch_rejected(self):
        with pytest.raises(ValueError, match="bucket"):
            merge_snapshots([
                make_snapshot(0, values=(0.5,), buckets=(1.0, 2.0)),
                make_snapshot(1, values=(0.5,), buckets=(1.0, 4.0)),
            ])


class TestSnapshotRoundTrip:
    def test_file_round_trip(self, tmp_path):
        snapshot = make_snapshot(2, counters={"ops": 3.0}, gauges={"g": 1.5},
                                 values=(0.5, 3.0))
        path = tmp_path / "shard-2" / "shard.json"
        write_shard_snapshot(snapshot, path)
        assert load_shard_snapshot(path) == snapshot

    def test_snapshot_carries_trace_id_and_drops(self):
        snapshot = make_snapshot(1)
        assert snapshot.trace_id == "t"
        assert snapshot.dropped_spans == 0


class TestMergedArtifacts:
    def make_parts(self):
        return [
            make_snapshot(0, sim_time=5.0, counters={"ops": 1.0}, values=(0.5,)),
            make_snapshot(1, sim_time=9.0, counters={"ops": 2.0}, values=(1.5,)),
        ]

    def test_merged_manifest_has_per_shard_sections(self):
        parts = self.make_parts()
        manifest = merged_manifest(parts, seed=11, config_digest="cfg",
                                   scenario="unit")
        assert sorted(manifest.shards) == ["0", "1"]
        assert manifest.shards["1"]["sim_time"] == 9.0
        assert manifest.shards["0"]["span_count"] == 2
        assert manifest.event_count == 14
        assert manifest.metrics["counters"]["ops"] == 3.0

    def test_merged_export_is_byte_stable(self, tmp_path):
        for name in ("a", "b"):
            parts = self.make_parts()
            merged = merge_snapshots(parts)
            manifest = merged_manifest(parts, seed=11, config_digest="cfg",
                                       merged=merged)
            export_merged_run(tmp_path / name, merged, manifest)
        for artifact in ("manifest.json", "merged_spans.jsonl",
                         "merged_metrics.jsonl"):
            left = (tmp_path / "a" / artifact).read_bytes()
            right = (tmp_path / "b" / artifact).read_bytes()
            assert left == right, artifact

    def test_merged_spans_jsonl_preserves_interleaving(self, tmp_path):
        merged = merge_snapshots(self.make_parts())
        path = tmp_path / "merged_spans.jsonl"
        assert write_merged_spans_jsonl(merged.spans, path) == 4
        import json

        rows = [json.loads(line) for line in path.read_text().splitlines()]
        keys = [(row["start"], shard_of(row["span_id"])) for row in rows]
        assert keys == sorted(keys)


class TestHistogramState:
    def test_state_round_trip(self):
        histogram = Histogram("lat", buckets=(1.0, 2.0))
        for value in (0.5, 1.5, 9.0):
            histogram.observe(value)
        clone = Histogram.from_state("lat", histogram.state_dict())
        assert clone.bucket_counts() == histogram.bucket_counts()
        assert clone.count == histogram.count
        assert clone.total == histogram.total
        assert clone.minimum == histogram.minimum
        assert clone.maximum == histogram.maximum

    def test_empty_state_round_trip(self):
        clone = Histogram.from_state("lat", Histogram("lat").state_dict())
        assert clone.count == 0
        assert clone.quantile(0.99) == 0.0

    def test_merge_from_rejects_mismatched_ladder(self):
        left = Histogram("lat", buckets=(1.0, 2.0))
        right = Histogram("lat", buckets=(1.0, 3.0))
        with pytest.raises(ValueError):
            left.merge_from(right)

    def test_merged_quantiles_match_union_of_observations(self):
        union = Histogram("lat")
        left, right = Histogram("lat"), Histogram("lat")
        for value in (0.01, 0.2, 0.4):
            union.observe(value)
            left.observe(value)
        for value in (3.0, 30.0):
            union.observe(value)
            right.observe(value)
        left.merge_from(right)
        for q in (0.5, 0.9, 0.99):
            assert left.quantile(q) == union.quantile(q)
