"""Deterministic random-number streams for reproducible simulation.

Every stochastic component in the library draws from a *named child stream*
of a single root seed.  Two runs with the same root seed produce identical
results regardless of the order in which components were created, because
each stream is derived from the root seed and the stream's name alone.

Example
-------
>>> streams = RngStreams(seed=42)
>>> a = streams.stream("network.latency")
>>> b = streams.stream("sources.availability")
>>> a is streams.stream("network.latency")
True
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterator

import numpy as np


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``root_seed`` and a stream ``name``.

    The derivation is stable across platforms and Python versions: it hashes
    the UTF-8 encoding of the name together with the root seed using SHA-256
    and keeps the low 64 bits.
    """
    payload = f"{root_seed}:{name}".encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "little")


class RngStreams:
    """A registry of named, independently seeded ``numpy`` generators.

    Parameters
    ----------
    seed:
        The root seed.  All child streams are pure functions of this seed
        and their name.
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        if name not in self._streams:
            child_seed = derive_seed(self.seed, name)
            self._streams[name] = np.random.default_rng(child_seed)
        return self._streams[name]

    def fresh(self, name: str) -> np.random.Generator:
        """Return a *new* generator for ``name``, resetting any prior state."""
        self._streams.pop(name, None)
        return self.stream(name)

    def names(self) -> Iterator[str]:
        """Iterate over the names of streams created so far."""
        return iter(sorted(self._streams))

    def spawn(self, prefix: str) -> "ScopedStreams":
        """Return a view that prefixes every stream name with ``prefix``."""
        return ScopedStreams(self, prefix)

    def __repr__(self) -> str:
        return f"RngStreams(seed={self.seed}, streams={len(self._streams)})"


class ScopedStreams:
    """A prefixed view over an :class:`RngStreams` registry.

    Components receive a scoped view so that their stream names cannot
    collide with other components' names.
    """

    def __init__(self, parent: RngStreams, prefix: str):
        self._parent = parent
        self._prefix = prefix

    @property
    def seed(self) -> int:
        """The root seed of the underlying registry."""
        return self._parent.seed

    def stream(self, name: str) -> np.random.Generator:
        """The named generator (prefix applied)."""
        return self._parent.stream(f"{self._prefix}.{name}")

    def fresh(self, name: str) -> np.random.Generator:
        """A reset named generator (prefix applied)."""
        return self._parent.fresh(f"{self._prefix}.{name}")

    def spawn(self, prefix: str) -> "ScopedStreams":
        """A nested scope with an extended prefix."""
        return ScopedStreams(self._parent, f"{self._prefix}.{prefix}")

    def __repr__(self) -> str:
        return f"ScopedStreams(prefix={self._prefix!r}, seed={self.seed})"
