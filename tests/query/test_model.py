"""Tests for the query model and decomposition."""

import numpy as np
import pytest

from repro.data import TextDocument
from repro.qos import QoSRequirement
from repro.query import Query, QueryKind, decompose

from tests.conftest import make_topic_query


def _ref_item():
    return TextDocument(
        item_id="ref", domain="museum", latent=np.array([1.0, 0.0]),
        terms={"w00001": 2},
    )


class TestQueryValidation:
    def test_similarity_needs_reference(self):
        with pytest.raises(ValueError):
            Query(kind=QueryKind.SIMILARITY)

    def test_topic_needs_terms(self):
        with pytest.raises(ValueError):
            Query(kind=QueryKind.TOPIC)

    def test_hybrid_needs_both(self):
        with pytest.raises(ValueError):
            Query(kind=QueryKind.HYBRID, reference_item=_ref_item())

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            Query(kind=QueryKind.SIMILARITY, reference_item=_ref_item(), k=0)

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            Query(kind=QueryKind.SIMILARITY, reference_item=_ref_item(), threshold=2.0)

    def test_query_ids_unique(self):
        a = Query(kind=QueryKind.SIMILARITY, reference_item=_ref_item())
        b = Query(kind=QueryKind.SIMILARITY, reference_item=_ref_item())
        assert a.query_id != b.query_id


class TestEvidence:
    def test_similarity_evidence_is_reference(self):
        query = Query(kind=QueryKind.SIMILARITY, reference_item=_ref_item())
        assert query.evidence_item() is query.reference_item

    def test_topic_evidence_is_synthetic_doc(self, topic_space, vocabulary):
        query = make_topic_query(topic_space, vocabulary, "folk-jewelry")
        evidence = query.evidence_item()
        assert isinstance(evidence, TextDocument)
        assert evidence.terms == query.terms


class TestTargeting:
    def test_none_targets_everything(self):
        query = Query(kind=QueryKind.SIMILARITY, reference_item=_ref_item())
        assert query.targets("anything")

    def test_restricted_targets(self):
        query = Query(
            kind=QueryKind.SIMILARITY, reference_item=_ref_item(),
            target_domains=("museum",),
        )
        assert query.targets("museum")
        assert not query.targets("auction")


class TestDecomposition:
    def test_decompose_all_domains(self):
        query = Query(kind=QueryKind.SIMILARITY, reference_item=_ref_item())
        subqueries = decompose(query, ["auction", "museum"])
        assert [s.domain for s in subqueries] == ["auction", "museum"]

    def test_decompose_respects_targets(self):
        query = Query(
            kind=QueryKind.SIMILARITY, reference_item=_ref_item(),
            target_domains=("museum",),
        )
        subqueries = decompose(query, ["auction", "museum", "thesis"])
        assert [s.domain for s in subqueries] == ["museum"]

    def test_decompose_dedupes_domains(self):
        query = Query(kind=QueryKind.SIMILARITY, reference_item=_ref_item())
        subqueries = decompose(query, ["museum", "museum"])
        assert len(subqueries) == 1

    def test_subquery_inherits_parameters(self):
        query = Query(
            kind=QueryKind.SIMILARITY, reference_item=_ref_item(), k=7, threshold=0.4,
        )
        subquery = query.restricted_to("museum")
        assert subquery.k == 7
        assert subquery.threshold == 0.4
        assert "museum" in subquery.subquery_id

    def test_with_requirement_copies(self):
        query = Query(kind=QueryKind.SIMILARITY, reference_item=_ref_item())
        stricter = query.with_requirement(QoSRequirement(min_trust=0.9))
        assert stricter.requirement.min_trust == 0.9
        assert query.requirement.min_trust is None
