"""End-to-end observability: causal span trees and manifest attestation.

The acceptance bar for the observability layer: a seeded run exports a
span forest where every retry/hedge/failover/merge span is a descendant
of the query that caused it (causality survives the event queue), and
two same-seed runs produce manifests with zero drift while different
seeds visibly drift.
"""

import numpy as np
import pytest

from repro.core import Consumer
from repro.core.builder import build_agora
from repro.data import DomainSpec, reset_item_ids
from repro.net import LoadModel, LoadSpec, NodeHealth, reset_message_ids
from repro.obs import SpanTracer, ancestors, descendants_of, diff_manifests, span_index
from repro.personalization import UserProfile
from repro.query import (
    ExecutionContext,
    QueryExecutor,
    Retrieve,
    reset_query_ids,
    standard_plan,
)
from repro.resilience import (
    BreakerBoard,
    HedgePolicy,
    ResilienceConfig,
    ResilienceRuntime,
    RetryPolicy,
)
from repro.sim import Simulator
from repro.sources import SourceRegistry
from repro.workloads import QueryWorkloadGenerator

from tests.conftest import make_source, make_topic_query


@pytest.fixture
def stack(corpus_generator, matching_engine, streams, oracle):
    """Two mirrored museum sources on separate nodes, with a live tracer."""
    tracer = SpanTracer()
    sim = Simulator(seed=5, tracer=tracer)
    nodes = ["node-m1", "node-m2"]
    health = NodeHealth(sim, nodes, sim.rng.spawn("h"), enabled=False)
    load = LoadModel(nodes, sim.rng.spawn("l"), LoadSpec(capacity=10.0))
    registry = SourceRegistry()
    museum = DomainSpec(name="museum", topic_prior={"folk-jewelry": 1.0})
    shared = corpus_generator.generate(museum, 25)
    for source_id in ("m1", "m2"):
        registry.register(make_source(
            source_id, corpus_generator, matching_engine, streams,
            domain_spec=museum, health=health, load=load, items=shared,
        ))
    return sim, tracer, health, registry, oracle


def make_context(sim, tracer, registry, oracle, config, seed=11):
    board = BreakerBoard(config.breaker, now_fn=lambda: sim.now, trace=sim.trace)
    runtime = ResilienceRuntime(
        config, registry=registry, breakers=board,
        rng=np.random.default_rng(seed), trace=sim.trace,
        now_fn=lambda: sim.now,
    )
    return ExecutionContext(
        registry=registry, oracle=oracle, now=sim.now,
        consumer_id="iris", resilience=runtime, tracer=tracer,
    )


def museum_plan(topic_space, vocabulary, k=8):
    query = make_topic_query(topic_space, vocabulary, "folk-jewelry", k=k)
    plan = standard_plan([Retrieve(query.restricted_to("museum"), "m1")], k=k)
    return query, plan


def spans_named(spans, name):
    return [s for s in spans if s.name == name]


class TestExecutorSpanCausality:
    def test_retry_and_failover_descend_from_execute_root(
        self, stack, topic_space, vocabulary
    ):
        sim, tracer, health, registry, oracle = stack
        health.set_state("node-m1", False)  # primary down -> retries, failover
        context = make_context(
            sim, tracer, registry, oracle, ResilienceConfig.default_enabled()
        )
        query, plan = museum_plan(topic_space, vocabulary)
        result = QueryExecutor(context).execute(plan, query)
        assert result.resilience_events.get("failovers", 0) >= 1

        spans = tracer.spans()
        roots = spans_named(spans, "execute")
        assert len(roots) == 1
        root = roots[0]
        retries = spans_named(spans, "retry")
        failovers = spans_named(spans, "failover")
        assert retries and failovers
        descendants = {s.span_id for s in descendants_of(root.span_id, spans)}
        for span in retries + failovers + spans_named(spans, "merge"):
            assert span.span_id in descendants
        # Retry spans carry attempt numbers against the declined primary.
        assert [s.attributes["attempt"] for s in retries] == [1, 2]
        assert all(s.attributes["declined"] for s in retries)
        assert failovers[0].attributes["primary"] == "m1"
        assert failovers[0].attributes["alternate"] == "m2"

    def test_hedge_span_descends_from_its_retrieve(
        self, stack, topic_space, vocabulary
    ):
        sim, tracer, health, registry, oracle = stack
        config = ResilienceConfig(
            enabled=True,
            retry=RetryPolicy(max_attempts=1),
            hedge=HedgePolicy(threshold=0.01, max_hedges=1),
        )
        context = make_context(sim, tracer, registry, oracle, config)
        query, plan = museum_plan(topic_space, vocabulary, k=25)
        result = QueryExecutor(context).execute(plan, query)
        assert result.resilience_events.get("hedges", 0) == 1

        spans = tracer.spans()
        index = span_index(spans)
        hedges = spans_named(spans, "hedge")
        assert len(hedges) == 1
        chain = [s.name for s in ancestors(hedges[0], index)]
        assert chain[0] == "retrieve"
        assert chain[-1] == "execute"

    def test_virtual_timestamps_nest(self, stack, topic_space, vocabulary):
        sim, tracer, health, registry, oracle = stack
        health.set_state("node-m1", False)
        context = make_context(
            sim, tracer, registry, oracle, ResilienceConfig.default_enabled()
        )
        query, plan = museum_plan(topic_space, vocabulary)
        QueryExecutor(context).execute(plan, query)
        index = span_index(tracer.spans())
        for span in tracer.spans():
            assert span.end is not None
            assert span.end >= span.start
            if span.parent_id is not None and span.parent_id in index:
                parent = index[span.parent_id]
                assert parent.start <= span.start


def run_traced_scenario(seed, availability=0.5, n_queries=8):
    # Mirrors examples/observability_demo.py: half the overlay down so
    # retries and failovers actually fire.
    reset_item_ids()
    reset_query_ids()
    reset_message_ids()
    agora = build_agora(seed=seed, n_sources=8, items_per_source=12,
                        calibration_pairs=0, enable_tracing=True)
    rng = np.random.default_rng(seed + 1)
    for node in agora.topology.nodes[:-1]:
        agora.health.set_state(node, bool(rng.random() < availability))
    workload = QueryWorkloadGenerator(
        agora.topic_space, agora.vocabulary, agora.sim.rng.spawn("obs-demo"),
    )
    profile = UserProfile(
        user_id="iris", interests=agora.topic_space.basis("folk-jewelry", 0.9),
    )
    consumer = Consumer(
        agora, profile, planner="trading",
        resilience=ResilienceConfig.default_enabled(),
    )
    for index in range(n_queries):
        topic = agora.topic_space.names[index % 5]
        consumer.ask(workload.topic_query(topic, k=10))
    return agora


class TestAgoraEndToEnd:
    def test_every_effect_span_descends_from_a_query_root(self):
        agora = run_traced_scenario(seed=11)
        spans = agora.tracer.spans()
        index = span_index(spans)
        roots = spans_named(spans, "query")
        assert len(roots) == 8
        effect_names = {"retry", "hedge", "failover", "merge", "retrieve",
                        "plan", "settle", "rank", "execute"}
        effects = [s for s in spans if s.name in effect_names]
        assert effects
        # Causality: the ancestor chain of every effect span reaches a
        # query root — nothing is orphaned by the trip through the
        # event queue.
        for span in effects:
            chain = ancestors(span, index)
            assert chain, f"span {span.name}#{span.span_id} has no ancestors"
            assert chain[-1].name == "query"

    def test_scenario_produces_resilience_spans(self):
        agora = run_traced_scenario(seed=11)
        counters = agora.sim.metrics.counters()
        retries = counters.get("resilience.retries", 0)
        spans = agora.tracer.spans()
        assert retries >= 1
        assert len(spans_named(spans, "retry")) == retries

    def test_manifest_counts_match_run_state(self):
        agora = run_traced_scenario(seed=11)
        manifest = agora.run_manifest(scenario="integration")
        assert manifest.event_count == agora.sim.processed
        assert manifest.span_count == agora.tracer.span_count
        assert manifest.metrics == agora.sim.metrics.snapshot()
        assert manifest.labels == {"scenario": "integration"}

    def test_same_seed_zero_drift_diff_seed_drifts(self):
        first = run_traced_scenario(seed=11).run_manifest()
        second = run_traced_scenario(seed=11).run_manifest()
        report = diff_manifests(first, second)
        assert report.clean, report.render()
        assert first.digest() == second.digest()

        other = run_traced_scenario(seed=12).run_manifest()
        drifted = diff_manifests(first, other)
        assert not drifted.clean
        assert any(d.key == "seed" for d in drifted.drifts)

    def test_tracing_disabled_changes_no_results(self):
        def outcomes(enable_tracing):
            reset_item_ids()
            reset_query_ids()
            reset_message_ids()
            agora = build_agora(seed=7, n_sources=6, items_per_source=10,
                                calibration_pairs=0,
                                enable_tracing=enable_tracing)
            workload = QueryWorkloadGenerator(
                agora.topic_space, agora.vocabulary, agora.sim.rng.spawn("obs"),
            )
            profile = UserProfile(
                user_id="iris",
                interests=agora.topic_space.basis("folk-jewelry", 0.9),
            )
            consumer = Consumer(agora, profile)
            trail = []
            for index in range(4):
                topic = agora.topic_space.names[index % 5]
                outcome = consumer.ask(workload.topic_query(topic, k=6))
                trail.append((
                    sorted(item.item_id for item in outcome.results.items()),
                    round(outcome.response_time, 12),
                ))
            return trail

        assert outcomes(True) == outcomes(False)
