"""Trace recording: counters, timers and timestamped event logs.

The :class:`TraceRecorder` is deliberately lightweight — experiments create
one per run and read the aggregates afterwards.  Records are plain tuples
so traces can be serialised or compared cheaply in tests.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Any, Dict, List, Optional


@dataclass
class TraceRecord:
    """A single timestamped trace entry."""

    time: float
    category: str
    label: str
    payload: Any = None


@dataclass
class TimerStats:
    """Aggregate statistics for a named timer."""

    count: int = 0
    total: float = 0.0
    minimum: float = float("inf")
    maximum: float = float("-inf")

    def observe(self, value: float) -> None:
        """Fold one observation into the aggregate."""
        self.count += 1
        self.total += value
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    @property
    def mean(self) -> float:
        """Mean of the observations (0 when empty)."""
        return self.total / self.count if self.count else 0.0


class TraceRecorder:
    """Collects counters, timers and event records for one simulation run."""

    def __init__(self, keep_records: bool = True, max_records: int = 100_000):
        self._counters: Dict[str, float] = defaultdict(float)
        self._timers: Dict[str, TimerStats] = defaultdict(TimerStats)
        self._records: List[TraceRecord] = []
        self._keep_records = keep_records
        self._max_records = max_records
        self._dropped = 0

    # -- counters -------------------------------------------------------
    def count(self, name: str, amount: float = 1.0) -> None:
        """Increment counter ``name`` by ``amount``."""
        self._counters[name] += amount

    def counter(self, name: str) -> float:
        """Return the current value of counter ``name`` (0 if untouched)."""
        return self._counters.get(name, 0.0)

    def counters(self) -> Dict[str, float]:
        """Return a snapshot of all counters."""
        return dict(self._counters)

    # -- timers ----------------------------------------------------------
    def observe(self, name: str, value: float) -> None:
        """Record an observation for timer/metric ``name``."""
        self._timers[name].observe(value)

    def timer(self, name: str) -> TimerStats:
        """Return aggregate stats for timer ``name``."""
        return self._timers[name]

    def timers(self) -> Dict[str, TimerStats]:
        """Snapshot of all timers."""
        return dict(self._timers)

    # -- records ----------------------------------------------------------
    def record(self, time: float, category: str, label: str, payload: Any = None) -> None:
        """Append a timestamped record (subject to the record cap)."""
        if not self._keep_records:
            return
        if len(self._records) >= self._max_records:
            self._dropped += 1
            return
        self._records.append(TraceRecord(time, category, label, payload))

    def records(self, category: Optional[str] = None) -> List[TraceRecord]:
        """Return records, optionally filtered by ``category``."""
        if category is None:
            return list(self._records)
        return [r for r in self._records if r.category == category]

    @property
    def dropped_records(self) -> int:
        """Records dropped after the cap was hit."""
        return self._dropped

    def summary(self) -> Dict[str, Any]:
        """Return a compact dictionary summary (counters + timer means)."""
        return {
            "counters": self.counters(),
            "timers": {
                name: {"count": ts.count, "mean": ts.mean, "min": ts.minimum, "max": ts.maximum}
                for name, ts in self._timers.items()
            },
            "records": len(self._records),
            "dropped": self._dropped,
        }
