# module: repro.core.fixture_internals
"""Fixture: kernel-internal access outside repro.sim that AGR006 must flag."""


class Meddler:
    def __init__(self):
        self._now = 0.0  # fine: our own attribute, not the kernel's

    def interfere(self, sim, queue):
        sim._heap.append(object())  # expect: AGR006
        drift = queue._now  # expect: AGR006
        sim.now = 99.0  # expect: AGR006
        legit = sim.now  # fine: reading the public clock
        return drift, legit
