"""Provenance records: where an information item came from.

The paper emphasises that results in an Open Agora are of *uncertain
origin*.  We track origin explicitly so that experiments can measure how
well trust mechanisms recover it.  A provenance chain records each hand-off
(source → intermediary → consumer) with a timestamp.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class ProvenanceHop:
    """One hop in a provenance chain."""

    holder_id: str
    time: float
    role: str = "source"  # "source" | "intermediary" | "consumer"


@dataclass
class ProvenanceChain:
    """The ordered list of holders an item passed through."""

    item_id: str
    hops: List[ProvenanceHop] = field(default_factory=list)

    def extend(self, holder_id: str, time: float, role: str = "intermediary") -> "ProvenanceChain":
        """Return a new chain with one more hop appended."""
        if self.hops and time < self.hops[-1].time:
            raise ValueError("provenance hops must be time-ordered")
        return ProvenanceChain(self.item_id, self.hops + [ProvenanceHop(holder_id, time, role)])

    @property
    def origin(self) -> Optional[str]:
        """The first holder (the true origin), or ``None`` if empty."""
        return self.hops[0].holder_id if self.hops else None

    @property
    def current_holder(self) -> Optional[str]:
        """The most recent holder, if any."""
        return self.hops[-1].holder_id if self.hops else None

    @property
    def length(self) -> int:
        """Number of hops in the chain."""
        return len(self.hops)

    def holders(self) -> Tuple[str, ...]:
        """All holder ids in hop order."""
        return tuple(hop.holder_id for hop in self.hops)


def originate(item_id: str, source_id: str, time: float) -> ProvenanceChain:
    """Create a fresh chain rooted at ``source_id``."""
    return ProvenanceChain(item_id, [ProvenanceHop(source_id, time, role="source")])
