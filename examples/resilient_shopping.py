"""Resilient shopping: surviving an unreliable agora.

Demonstrates the machinery the paper's §2-§3 uncertainty story demands
when things actually go wrong:

1. the asynchronous marketplace — trading happens as messages over the
   simulated overlay, and bids can miss the deadline;
2. adaptive re-execution — a contracted source goes dark between planning
   and execution and the job is re-assigned on the fly;
3. requirement relaxation — the market refuses Iris's strict terms until
   she trades quality for service;
4. socialized trust — Jason's bad experience with a source warns Iris off
   before she gets burned herself;
5. resilience policies — a scripted outage window takes a source down and
   the executor's retries, circuit breakers, and failover reroute the
   lost jobs to a live mirror.

Run with:  python examples/resilient_shopping.py
"""

from collections import defaultdict

from repro import Consumer, QoSRequirement, QoSWeights, UserProfile, build_agora
from repro.core import AsyncMarketplace
from repro.query import (
    AdaptiveExecutor,
    ExecutionContext,
    fallbacks_from_registry,
)
from repro.resilience import FaultScript, ResilienceConfig
from repro.social import AffineNeighbour, SocialTrustView
from repro.trust import ReputationSystem
from repro.workloads import QueryWorkloadGenerator


def main() -> None:
    agora = build_agora(seed=404, n_sources=10, items_per_source=30)
    workload = QueryWorkloadGenerator(
        agora.topic_space, agora.vocabulary, agora.sim.rng.spawn("resilient"),
    )
    profile = UserProfile(
        user_id="iris",
        interests=agora.topic_space.basis("folk-jewelry", 0.9),
    )
    consumer = Consumer(agora, profile, planner="trading")

    # ------------------------------------------------------------------
    print("=== 1. Trading over the wire (asynchronous marketplace) ===")
    marketplace = AsyncMarketplace(agora)
    outcomes = []
    query = workload.topic_query(
        "folk-jewelry", k=8, issuer_id="iris",
        requirement=QoSRequirement(min_completeness=0.15),
    )
    marketplace.negotiate(query, QoSWeights(), outcomes.append,
                          bid_deadline=2.0)
    agora.run(until=agora.now + 10.0)
    negotiated = outcomes[0]
    print(f"  {marketplace.bids_received} bids arrived in time, "
          f"{marketplace.bids_late} too late; "
          f"{len(negotiated.contracts)} contracts signed")

    # ------------------------------------------------------------------
    print("\n=== 2. A contracted source goes dark: adaptive execution ===")
    victim = negotiated.plan.leaves()[0].source_id
    agora.health.set_state(agora.registry.source(victim).node_id, False)
    print(f"  {victim} went down after signing!")
    context = ExecutionContext(
        registry=agora.registry, oracle=agora.oracle,
        calibrator=agora.calibrator if agora.calibrator.is_fitted else None,
        now=agora.now, consumer_id="iris",
    )
    adaptive = AdaptiveExecutor(
        context, fallbacks_from_registry(agora.registry, consumer.reputation),
    )
    result = adaptive.execute(negotiated.plan, query)
    for move in result.reassignments:
        print(f"  job {move.job_id}: {move.from_source} -> {move.to_source}")
    print(f"  recovered: {result.recovered} "
          f"({len(result.final.results)} results)")
    agora.health.set_state(agora.registry.source(victim).node_id, True)

    # ------------------------------------------------------------------
    print("\n=== 3. The market refuses strict terms: relaxation ===")
    strict = workload.topic_query(
        "folk-jewelry", k=5, issuer_id="iris",
        requirement=QoSRequirement(min_completeness=0.99,
                                   min_correctness=0.99,
                                   max_response_time=0.001),
    )
    blunt = consumer.ask(strict)
    print(f"  strict ask: {len(blunt.unserved_jobs)} of "
          f"{len(blunt.unserved_jobs) + len(blunt.contracts)} jobs unserved")
    relaxed = consumer.ask_with_relaxation(
        workload.topic_query("folk-jewelry", k=5, issuer_id="iris",
                             requirement=strict.requirement),
        relaxation_step=0.5, max_relaxations=4,
    )
    final_req = relaxed.query.requirement
    print("  after relaxation: served with min_completeness="
          f"{final_req.min_completeness:.2f}, "
          f"{len(relaxed.ranked_items)} results, "
          f"utility {relaxed.utility:.3f}")

    # ------------------------------------------------------------------
    print("\n=== 4. Socialized trust: learning from Jason's burns ===")
    jason_reputation = ReputationSystem()
    burned_source = sorted(agora.sources)[0]
    for __ in range(8):
        jason_reputation.observe(burned_source, 0.0)  # Jason got burned
    jason = AffineNeighbour(
        "jason", affinity=0.85,
        profile=UserProfile(user_id="jason",
                            interests=agora.topic_space.basis("dance-forms", 0.9)),
    )
    social_view = SocialTrustView(
        consumer.reputation, {"jason": jason_reputation}, [jason],
    )
    own = consumer.reputation.score(burned_source)
    social = social_view.score(burned_source)
    print(f"  Iris's own view of {burned_source}: {own:.2f} (little experience)")
    print(f"  with Jason's shared experience:     {social:.2f} — avoided")

    # ------------------------------------------------------------------
    print("\n=== 5. Scripted outage, survived by resilience policies ===")
    # Pick a source whose domain has a live mirror to fail over to.
    by_domain = defaultdict(list)
    for source_id, source in sorted(agora.sources.items()):
        for domain in source.domains:
            by_domain[domain].append(source_id)
    mirrored = next(ids for ids in by_domain.values() if len(ids) > 1)
    victim = mirrored[0]
    script = FaultScript().outage(
        agora.sources[victim].node_id, start=agora.now + 1.0, duration=500.0,
    )
    agora.inject_faults(script)
    agora.run(until=agora.now + 2.0)  # into the outage window
    print(f"  outage window opened: {victim} is down")

    hardened = Consumer(
        agora, profile, planner="greedy",
        resilience=ResilienceConfig.default_enabled(),
    )
    domain = next(d for d, ids in by_domain.items() if ids is mirrored)
    topic = max(
        agora.topic_space.names,
        key=lambda name: sum(
            agora.oracle.is_relevant(
                workload.topic_query(name, k=1), item
            )
            for item in agora.sources[victim].visible_items(agora.now)
        ),
    )
    outcome = hardened.ask(workload.topic_query(topic, k=8, issuer_id="iris"))
    events = dict(outcome.resilience_events)
    print(f"  asked for '{topic}' (served by {domain} sources)")
    print(f"  resilience events: {events or 'none needed'}")
    print(f"  {len(outcome.ranked_items)} results delivered, "
          f"utility {outcome.utility:.3f}")


if __name__ == "__main__":
    main()
