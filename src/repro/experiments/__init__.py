"""Experiment harness: metrics, tables, result collection.

Public API:

- :func:`summarize`, :class:`Summary`, :func:`relative_improvement`,
  :func:`win_rate`.
- :func:`render_table`.
- :class:`ExperimentResult`, :class:`ExperimentSuite`.
"""

from repro.experiments.metrics import (
    Summary,
    mann_whitney_p,
    relative_improvement,
    summarize,
    win_rate,
)
from repro.experiments.runner import (
    ExperimentResult,
    ExperimentSuite,
    append_run_dashboard,
    render_run_dashboard,
)
from repro.experiments.tables import render_table

__all__ = [
    "ExperimentResult",
    "ExperimentSuite",
    "Summary",
    "append_run_dashboard",
    "mann_whitney_p",
    "relative_improvement",
    "render_run_dashboard",
    "render_table",
    "summarize",
    "win_rate",
]
