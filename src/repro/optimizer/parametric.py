"""Parametric query optimization.

§2: environment uncertainty "is partially overcome through dynamic or
parametric query optimization".  The dynamic flavour lives in
:mod:`repro.query.adaptive`; this module is the parametric one: optimize
*once per load regime* at plan time, then at execution time observe the
actual load and dispatch the plan prepared for the closest regime —
no re-optimization on the critical path.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Sequence

from repro.optimizer.candidates import CandidateAssignment
from repro.optimizer.plans import PlanEvaluation
from repro.optimizer.search import CandidateTable, Evaluator
from repro.qos.vector import QoSVector


@dataclass(frozen=True)
class LoadRegime:
    """A hypothesised system condition at execution time.

    ``cost_multiplier`` scales every candidate's expected response time
    (and cost): 1.0 = the advertised baseline, 3.0 = heavily loaded.
    """

    name: str
    cost_multiplier: float

    def __post_init__(self) -> None:
        if self.cost_multiplier <= 0:
            raise ValueError("cost_multiplier must be positive")


DEFAULT_REGIMES = (
    LoadRegime("light", 0.7),
    LoadRegime("nominal", 1.0),
    LoadRegime("heavy", 2.5),
)


def scale_candidate(
    candidate: CandidateAssignment, multiplier: float
) -> CandidateAssignment:
    """A copy of ``candidate`` with time-like quantities scaled."""
    if multiplier <= 0:
        raise ValueError("multiplier must be positive")
    expected = candidate.expected
    scaled_expected = QoSVector(
        response_time=expected.response_time * multiplier,
        completeness=expected.completeness,
        freshness=expected.freshness,
        correctness=expected.correctness,
        trust=expected.trust,
    )
    return replace(
        candidate, expected=scaled_expected, cost=candidate.cost.scale(multiplier),
    )


@dataclass
class ParametricPlan:
    """The prepared per-regime plans."""

    by_regime: Dict[str, PlanEvaluation]
    regimes: Sequence[LoadRegime]

    def choose(self, observed_multiplier: float) -> PlanEvaluation:
        """Dispatch the plan prepared for the closest regime."""
        if observed_multiplier <= 0:
            raise ValueError("observed_multiplier must be positive")
        closest = min(
            self.regimes,
            key=lambda regime: (
                abs(regime.cost_multiplier - observed_multiplier), regime.name,
            ),
        )
        return self.by_regime[closest.name]

    def plans_differ(self) -> bool:
        """Whether any two regimes prepared different plans."""
        signatures = {
            evaluation.plan.signature() for evaluation in self.by_regime.values()
        }
        return len(signatures) > 1


class ParametricPlanner:
    """Prepares one plan per load regime.

    Parameters
    ----------
    searcher:
        Any object with ``search(table, evaluator) -> SearchResult``
        (exhaustive, greedy, local, evolutionary).
    regimes:
        The load hypotheses to prepare for.
    """

    def __init__(self, searcher, regimes: Sequence[LoadRegime] = DEFAULT_REGIMES):
        if not regimes:
            raise ValueError("need at least one regime")
        names = [regime.name for regime in regimes]
        if len(set(names)) != len(names):
            raise ValueError("regime names must be unique")
        self.searcher = searcher
        self.regimes = tuple(regimes)

    def prepare(self, table: CandidateTable, evaluator: Evaluator) -> ParametricPlan:
        """Run one search per regime over the rescaled candidate table."""
        if not table:
            raise ValueError("candidate table is empty")
        by_regime: Dict[str, PlanEvaluation] = {}
        for regime in self.regimes:
            scaled = {
                job_id: [
                    scale_candidate(candidate, regime.cost_multiplier)
                    for candidate in candidates
                ]
                for job_id, candidates in table.items()
            }
            by_regime[regime.name] = self.searcher.search(scaled, evaluator).best
        return ParametricPlan(by_regime=by_regime, regimes=self.regimes)
