"""Resilient query execution (§2 pathologies, consumer-side defences).

Public API:

- Policies: :class:`RetryPolicy`, :class:`HedgePolicy`,
  :class:`BreakerPolicy`, :class:`ResilienceConfig`.
- Breakers: :class:`CircuitBreaker`, :class:`BreakerBoard`,
  :class:`BreakerState`.
- Hedging: :class:`HedgeSelector`, :class:`HedgeOutcome`.
- Fault injection: :class:`FaultEvent`, :class:`FaultScript`,
  :class:`FaultInjector`.
- :class:`ResilienceRuntime` — what the executor actually consults.
"""

from repro.resilience.breaker import BreakerBoard, BreakerState, CircuitBreaker
from repro.resilience.faults import FaultEvent, FaultInjector, FaultScript
from repro.resilience.hedging import HedgeOutcome, HedgeSelector
from repro.resilience.policy import (
    BreakerPolicy,
    HedgePolicy,
    ResilienceConfig,
    RetryPolicy,
)
from repro.resilience.runtime import ResilienceRuntime

__all__ = [
    "BreakerBoard",
    "BreakerPolicy",
    "BreakerState",
    "CircuitBreaker",
    "FaultEvent",
    "FaultInjector",
    "FaultScript",
    "HedgeOutcome",
    "HedgePolicy",
    "HedgeSelector",
    "ResilienceConfig",
    "ResilienceRuntime",
    "RetryPolicy",
]
