"""Tests for overlay topologies."""

import networkx as nx
import pytest

from repro.net import (
    random_topology,
    scale_free_topology,
    small_world_topology,
    star_topology,
)
from repro.sim import RngStreams


@pytest.fixture
def streams():
    return RngStreams(3).spawn("net")


class TestBuilders:
    @pytest.mark.parametrize("n", [2, 5, 20])
    def test_random_connected(self, streams, n):
        topo = random_topology(n, streams, edge_probability=0.1)
        assert topo.node_count == n
        assert nx.is_connected(topo.graph)

    def test_small_world(self, streams):
        topo = small_world_topology(20, streams, k_neighbors=4)
        assert topo.node_count == 20
        assert nx.is_connected(topo.graph)

    def test_small_world_too_small(self, streams):
        with pytest.raises(ValueError):
            small_world_topology(3, streams, k_neighbors=4)

    def test_scale_free(self, streams):
        topo = scale_free_topology(30, streams, attachment=2)
        degrees = sorted((d for __, d in topo.graph.degree()), reverse=True)
        assert degrees[0] > degrees[-1]  # hubs exist

    def test_scale_free_too_small(self, streams):
        with pytest.raises(ValueError):
            scale_free_topology(2, streams, attachment=2)

    def test_star(self, streams):
        topo = star_topology(6, streams)
        degrees = dict(topo.graph.degree())
        assert max(degrees.values()) == 5

    def test_star_too_small(self, streams):
        with pytest.raises(ValueError):
            star_topology(1, streams)

    def test_node_naming(self, streams):
        topo = random_topology(5, streams)
        assert topo.nodes == ["n0", "n1", "n2", "n3", "n4"]

    def test_deterministic_given_seed(self):
        t1 = random_topology(15, RngStreams(9).spawn("net"))
        t2 = random_topology(15, RngStreams(9).spawn("net"))
        assert sorted(t1.graph.edges) == sorted(t2.graph.edges)


class TestLinks:
    def test_link_lookup_symmetric(self, streams):
        topo = random_topology(8, streams)
        a, b = sorted(topo.graph.edges)[0]
        assert topo.link(a, b) == topo.link(b, a)

    def test_link_missing(self, streams):
        topo = star_topology(4, streams)
        leaves = [n for n, d in topo.graph.degree() if d == 1]
        with pytest.raises(KeyError):
            topo.link(leaves[0], leaves[1])

    def test_latency_within_range(self, streams):
        topo = random_topology(10, streams, latency_range=(0.5, 0.6))
        for a, b in topo.graph.edges:
            assert 0.5 <= topo.link(a, b).latency <= 0.6


class TestPaths:
    def test_shortest_path_endpoints(self, streams):
        topo = random_topology(12, streams)
        path = topo.shortest_path("n0", "n5")
        assert path[0] == "n0"
        assert path[-1] == "n5"

    def test_path_latency_positive(self, streams):
        topo = random_topology(12, streams)
        path = topo.shortest_path("n0", "n7")
        assert topo.path_latency(path) > 0

    def test_trivial_path_latency_zero(self, streams):
        topo = random_topology(12, streams)
        assert topo.path_latency(["n0"]) == 0.0

    def test_diameter_latency(self, streams):
        topo = star_topology(5, streams, latency_range=(0.1, 0.1))
        assert topo.diameter_latency() == pytest.approx(0.2)
