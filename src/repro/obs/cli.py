"""``python -m repro.obs`` — inspect and compare exported run artifacts.

Subcommands
-----------
``summary <manifest.json> [--by-shard]``
    Print a run's provenance header and its metric snapshot; with
    ``--by-shard``, also the per-shard sections of a merged manifest.
``spans <spans.jsonl>``
    Render the exported span forest as an indented causal tree.
``diff <left-manifest.json> <right-manifest.json>``
    Compare two run manifests; exit 0 on zero drift, 1 when any field or
    metric drifted (the machine-checkable regression gate).
``flame <profile.folded> [--top N]``
    Render a folded-stack profile as a ranked hotspot table.
``slo <slo.json> [--strict]``
    Render an exported SLO burn-rate report; with ``--strict``, exit 1
    when any SLO is critical (the default stays observe-only).
``divergence <left> <right> [--context K] [--json]``
    Align two flight recordings (or two run directories holding one
    recording per shard) and name the first event at which they stop
    being bitwise-identical; exit 0 identical, 1 diverged.

Exit codes: 0 success (and clean diff / non-breached strict slo /
identical recordings), 1 drift, strict-mode breach or divergence,
2 usage errors and unreadable/invalid artifact files (reported on
stderr, never as a traceback).

Every subcommand loads its artifacts through one shared
:func:`_load_artifact` path, so a missing, unreadable or malformed file
produces the same ``error: …`` + exit 2 behavior everywhere.

The CLI works on *files only* — recording happens wherever a run happens
(see ``examples/observability_demo.py``), keeping ``repro.obs`` at the
bottom of the layer DAG.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.obs.divergence import align_runs, render_alignment
from repro.obs.export import load_manifest, load_spans_jsonl
from repro.obs.manifest import RunManifest, canonical_json, diff_manifests
from repro.obs.profile import parse_folded
from repro.obs.slo import SLOReport, load_slo_report
from repro.obs.spans import Span, child_map


class ArtifactError(Exception):
    """An artifact file could not be read or parsed (CLI exit 2)."""


def _load_artifact(loader: Callable[..., Any], *paths: str, **kwargs: Any) -> Any:
    """Run an artifact ``loader`` with uniform bad-file translation.

    Every subcommand funnels its file access through here, so a missing
    file, a permissions problem or malformed content produces the same
    ``error: <reason>`` + exit-2 behavior regardless of which artifact
    kind was being read.
    """
    try:
        return loader(*paths, **kwargs)
    except (OSError, json.JSONDecodeError, KeyError, ValueError) as exc:
        raise ArtifactError(str(exc)) from exc


def _render_attributes(span: Span) -> str:
    if not span.attributes:
        return ""
    parts = [f"{key}={span.attributes[key]!r}" for key in sorted(span.attributes)]
    return " {" + ", ".join(parts) + "}"


def render_span_tree(spans: Sequence[Span], limit: Optional[int] = None) -> str:
    """Indented text rendering of the span forest (depth-first, id order)."""
    children = child_map(spans)
    lines: List[str] = []

    def visit(span: Span, depth: int) -> None:
        if limit is not None and len(lines) >= limit:
            return
        marker = "!" if span.status != "ok" else ""
        end = f"{span.end:.4f}" if span.end is not None else "…"
        lines.append(
            f"{'  ' * depth}#{span.span_id} {span.name}{marker} "
            f"[{span.start:.4f}→{end}]{_render_attributes(span)}"
        )
        for child in children.get(span.span_id, []):
            visit(child, depth + 1)

    for root in children.get(None, []):
        visit(root, 0)
    total = len(spans)
    if limit is not None and total > len(lines):
        lines.append(f"… ({total - len(lines)} more spans)")
    return "\n".join(lines)


def _render_summary(manifest: RunManifest, top: int, by_shard: bool = False) -> str:
    lines = [
        f"seed:           {manifest.seed}",
        f"config digest:  {manifest.config_digest}",
        f"manifest digest: {manifest.digest()}",
        f"events:         {manifest.event_count}",
        f"spans:          {manifest.span_count}",
    ]
    if by_shard:
        if not manifest.shards:
            lines.append("shards:         (single-process run: no per-shard sections)")
        else:
            lines.append(f"shards ({len(manifest.shards)}):")
            for shard_id in sorted(manifest.shards, key=int):
                section = manifest.shards[shard_id]
                lines.append(
                    f"  shard {shard_id}: sim_time={section.get('sim_time', 0.0):g} "
                    f"events={section.get('event_count', 0)} "
                    f"spans={section.get('span_count', 0)} "
                    f"dropped={section.get('dropped_spans', 0)}"
                )
    metrics: Dict[str, Any] = manifest.metrics
    counters: Dict[str, float] = dict(metrics.get("counters", {}))
    if counters:
        lines.append(f"counters ({len(counters)} total, top {top} by value):")
        ranked = sorted(counters.items(), key=lambda pair: (-pair[1], pair[0]))
        for name, value in ranked[:top]:
            lines.append(f"  {name} = {value:g}")
    histograms: Dict[str, Any] = dict(metrics.get("histograms", {}))
    if histograms:
        lines.append(f"distributions ({len(histograms)}):")
        for name in sorted(histograms)[:top]:
            summary = histograms[name]
            lines.append(
                f"  {name}: n={summary.get('count', 0):g} "
                f"mean={summary.get('mean', 0.0):.4f} "
                f"p99={summary.get('p99', 0.0):.4f}"
            )
    return "\n".join(lines)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect and compare exported observability artifacts.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    summary = subparsers.add_parser("summary", help="summarise one run manifest")
    summary.add_argument("manifest", help="path to manifest.json")
    summary.add_argument(
        "--top", type=int, default=10, help="how many metrics to show (default 10)"
    )
    summary.add_argument(
        "--by-shard",
        action="store_true",
        help="also print the per-shard sections of a merged manifest",
    )

    spans = subparsers.add_parser("spans", help="render an exported span tree")
    spans.add_argument("spans", help="path to spans.jsonl")
    spans.add_argument(
        "--limit", type=int, default=None, help="cap the number of printed spans"
    )

    diff = subparsers.add_parser(
        "diff", help="compare two run manifests (exit 1 on drift)"
    )
    diff.add_argument("left", help="path to the first manifest.json")
    diff.add_argument("right", help="path to the second manifest.json")

    flame = subparsers.add_parser(
        "flame", help="render a folded-stack profile as a hotspot table"
    )
    flame.add_argument("folded", help="path to profile.folded")
    flame.add_argument(
        "--top", type=int, default=10, help="how many stacks to show (default 10)"
    )

    slo = subparsers.add_parser("slo", help="render an exported SLO burn-rate report")
    slo.add_argument("report", help="path to slo.json")
    slo.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 when any SLO is at critical burn (default: observe-only)",
    )

    divergence = subparsers.add_parser(
        "divergence",
        help="find the first event at which two flight recordings fork "
        "(exit 1 when diverged)",
    )
    divergence.add_argument(
        "left", help="left recording (flight dir or run dir with flight/ inside)"
    )
    divergence.add_argument("right", help="right recording (same layouts)")
    divergence.add_argument(
        "--context",
        type=int,
        default=5,
        help="matching events to echo before the fork (default 5)",
    )
    divergence.add_argument(
        "--json",
        action="store_true",
        help="emit the alignment as canonical JSON instead of text",
    )
    return parser


def render_flame_table(entries: Sequence[Any], top: int) -> str:
    """Ranked text table of parsed folded-stack ``(stack, value)`` pairs."""
    if not entries:
        return "(empty profile)"
    total = sum(value for _, value in entries)
    ranked = sorted(entries, key=lambda entry: (-entry[1], entry[0]))[:top]
    lines = [f"{'value':>12}  {'share':>6}  stack"]
    for stack, value in ranked:
        share = value / total if total > 0 else 0.0
        lines.append(f"{value:>12d}  {share:>6.1%}  {stack}")
    return "\n".join(lines)


def _render_slo(report: SLOReport, strict: bool) -> int:
    print(f"evaluated at: {report.evaluated_at:g}")
    print(report.render())
    if strict and report.breached:
        print("strict mode: at least one SLO is at critical burn", file=sys.stderr)
        return 1
    return 0


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "summary":
        manifest = _load_artifact(load_manifest, args.manifest)
        print(_render_summary(manifest, top=args.top, by_shard=args.by_shard))
        return 0
    if args.command == "spans":
        spans = _load_artifact(load_spans_jsonl, args.spans)
        print(render_span_tree(spans, limit=args.limit))
        return 0
    if args.command == "diff":
        left = _load_artifact(load_manifest, args.left)
        right = _load_artifact(load_manifest, args.right)
        report = diff_manifests(left, right)
        print(report.render())
        if not report.clean and left.flight and right.flight:
            print(
                "flight recordings available: run "
                "`python -m repro.obs divergence <left-run> <right-run>` "
                "to locate the first divergent event"
            )
        return 0 if report.clean else 1
    if args.command == "flame":
        entries = _load_artifact(
            lambda path: parse_folded(Path(path).read_text()), args.folded
        )
        print(render_flame_table(entries, top=args.top))
        return 0
    if args.command == "slo":
        report = _load_artifact(load_slo_report, args.report)
        return _render_slo(report, strict=args.strict)
    if args.command == "divergence":
        alignment = _load_artifact(
            align_runs, args.left, args.right, context=args.context
        )
        if args.json:
            print(canonical_json(alignment.to_dict()))
        else:
            print(render_alignment(alignment))
        return 0 if alignment.identical else 1
    raise AssertionError(f"unhandled command {args.command!r}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    Usage errors (unknown subcommand, bad flags) and unreadable or
    malformed artifact files exit 2 with a message on stderr — never a
    traceback.
    """
    try:
        args = _build_parser().parse_args(argv)
    except SystemExit as exc:  # argparse exits itself; surface as a code
        code = exc.code
        return code if isinstance(code, int) else 2
    try:
        return _dispatch(args)
    except ArtifactError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
